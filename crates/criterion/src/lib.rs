//! A vendored, dependency-free stand-in for the subset of the
//! `criterion` benchmark-harness API this workspace uses.
//!
//! The build environment cannot fetch crates.io, so the real criterion
//! is unavailable; this shim keeps every `benches/*.rs` file
//! source-compatible and still produces honest wall-clock numbers:
//! each benchmark is warmed up, then timed over enough iterations to
//! fill a small time budget, and the mean ± spread is printed.
//!
//! Environment knobs:
//! - `BENCH_BUDGET_MS` — per-benchmark measurement budget (default 300).
//! - `BENCH_WARMUP_MS` — warm-up budget (default 100).

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    warmup: Duration,
    budget: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    result_ns: f64,
    /// Spread (max − min sample mean) in nanoseconds.
    spread_ns: f64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            warmup: env_ms("BENCH_WARMUP_MS", 100),
            budget: env_ms("BENCH_BUDGET_MS", 300),
            result_ns: 0.0,
            spread_ns: 0.0,
        }
    }

    /// Time the closure: warm up, then sample until the budget is
    /// spent, recording the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: at least one call, until the warm-up budget is used.
        let t0 = Instant::now();
        loop {
            black_box(f());
            if t0.elapsed() >= self.warmup {
                break;
            }
        }
        // Choose a batch size so one batch is ~1/10 of the budget.
        let probe = Instant::now();
        black_box(f());
        let per_call = probe.elapsed().max(Duration::from_nanos(1));
        let batch = ((self.budget.as_nanos() / 10 / per_call.as_nanos()).max(1)) as u64;

        let mut means: Vec<f64> = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget || means.is_empty() {
            let b0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            means.push(b0.elapsed().as_nanos() as f64 / batch as f64);
        }
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = means.iter().cloned().fold(0.0f64, f64::max);
        self.result_ns = mean;
        self.spread_ns = max - min;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, b: &Bencher) {
    println!(
        "{id:<50} time: {:>10}   (± {})",
        human(b.result_ns),
        human(b.spread_ns)
    );
}

/// Identifier for a parameterised benchmark, `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (`from_parameter` in real criterion).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(id, &b);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time
    /// budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Close the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("BENCH_WARMUP_MS", "1");
        std::env::set_var("BENCH_BUDGET_MS", "5");
        let mut b = Bencher::new();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.result_ns > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("scan", 42).to_string(), "scan/42");
    }
}
