//! String interning for element and attribute names.
//!
//! XML documents repeat the same handful of tag names millions of times;
//! the database therefore stores every label as a small integer
//! ([`Symbol`]) and keeps the actual strings once, in an [`Interner`].
//! Comparing labels — the hottest operation in both structural joins and
//! the MLCA computation — becomes an integer comparison.

use std::collections::HashMap;
use std::fmt;

/// An interned string. Two symbols from the same [`Interner`] are equal
/// iff the strings they denote are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// Raw index of this symbol inside its interner. Useful for building
    /// dense per-label side tables (e.g. the label index).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A deduplicating store of strings.
///
/// The interner never forgets a string; symbols stay valid for the life
/// of the interner. Lookup is amortised O(1) in both directions.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), sym);
        sym
    }

    /// Look up an already-interned string without inserting.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// The string a symbol denotes.
    ///
    /// # Panics
    /// Panics if `sym` came from a different interner with more symbols.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("movie");
        let b = i.intern("movie");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("movie");
        let b = i.intern("director");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "movie");
        assert_eq!(i.resolve(b), "director");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("title").is_none());
        i.intern("title");
        assert!(i.get("title").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let collected: Vec<_> = i.iter().map(|(_, s)| s.to_owned()).collect();
        assert_eq!(collected, vec!["a", "b"]);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
