//! Tree navigation: children, descendants, ancestors, subtree tests and
//! lowest common ancestors.
//!
//! These are the structural primitives beneath both the XQuery engine's
//! path steps and the MLCA (meaningful lowest common ancestor) algorithm
//! in crate `xquery`, as well as the Meet operator of the keyword-search
//! baseline. Containment tests use pre/post-order ranks, so they are O(1).
//! On a finalized document LCA queries are answered in O(1) from the
//! Euler-tour index built by [`Document::finalize`], and level-ancestor
//! queries (including [`Document::child_toward`]) in O(log n) via binary
//! lifting; the original parent-pointer walks survive as `*_walk`
//! reference implementations and as fallbacks for unfinalized documents.
//!
//! Since the columnar-arena refactor the bulk axes are linear sweeps:
//! descendants of a finalized node iterate a contiguous slice of the
//! document-order table, and subtree label probes binary-search the
//! label's packed pre-rank column — no per-step node loads.

use crate::arena::NIL;
use crate::document::Document;
use crate::node::{NodeId, NodeKind};

impl Document {
    /// Iterator over the direct children of `id`, in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.arena.first_child[id.index()],
        }
    }

    /// Iterator over the element children of `id` (skipping text and
    /// attribute nodes), in document order.
    pub fn element_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .filter(move |&c| self.arena.kinds[c.index()] == NodeKind::Element)
    }

    /// Iterator over all descendants of `id` in pre-order, excluding `id`
    /// itself.
    ///
    /// On a finalized document this is a linear sweep over the
    /// subtree's contiguous slice of the document-order table; before
    /// finalization it falls back to an explicit-stack link walk.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        if let Some(ix) = &self.struct_index {
            let lo = self.arena.pre[id.index()] as usize;
            let hi = ix.subtree_hi(id) as usize;
            // Skip `id` itself: its pre rank is `lo`.
            return Descendants {
                doc: self,
                sweep: Some(lo + 1..hi + 1),
                stack: Vec::new(),
            };
        }
        let mut stack = Vec::new();
        let mut c = self.arena.first_child[id.index()];
        let mut tmp = Vec::new();
        while c != NIL {
            tmp.push(c);
            c = self.arena.next_sibling[c as usize];
        }
        stack.extend(tmp.into_iter().rev());
        Descendants {
            doc: self,
            sweep: None,
            stack,
        }
    }

    /// Iterator over `id`'s ancestors, nearest first, excluding `id`.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            next: self.arena.parent[id.index()],
        }
    }

    /// True iff `anc` is `desc` or an ancestor of `desc` (O(1), uses
    /// pre/post ranks — document must be finalized).
    #[inline]
    pub fn is_ancestor_or_self(&self, anc: NodeId, desc: NodeId) -> bool {
        let (a, d) = (anc.index(), desc.index());
        debug_assert!(self.arena.pre[a] != NIL && self.arena.pre[d] != NIL);
        self.arena.pre[a] <= self.arena.pre[d] && self.arena.post[a] >= self.arena.post[d]
    }

    /// True iff `anc` is a *proper* ancestor of `desc`.
    #[inline]
    pub fn is_proper_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        anc != desc && self.is_ancestor_or_self(anc, desc)
    }

    /// Lowest common ancestor of two nodes. Total: every pair in one
    /// document has an LCA (at worst the root). O(1) on a finalized
    /// document (Euler-tour RMQ), O(depth) otherwise.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        obs::count_hot(obs::Counter::LcaQueries, 1);
        match &self.struct_index {
            Some(ix) => ix.lca(a, b),
            None => self.lca_walk(a, b),
        }
    }

    /// Parent-pointer reference implementation of [`Document::lca`]:
    /// walk up from the deeper node until depths match, then in
    /// lockstep. O(depth). Kept as the oracle the indexed version is
    /// property-tested against, and as the pre-finalization fallback.
    pub fn lca_walk(&self, a: NodeId, b: NodeId) -> NodeId {
        if self.is_ancestor_or_self(a, b) {
            return a;
        }
        if self.is_ancestor_or_self(b, a) {
            return b;
        }
        // Walk up from the deeper node until depths match, then in
        // lockstep. The root handles both `None` parents below: the
        // ancestor-or-self checks above already dealt with one node
        // being the root, so hitting it here means the walk converged.
        let (mut x, mut y) = (a.index(), b.index());
        while self.arena.depth[x] > self.arena.depth[y] {
            let p = self.arena.parent[x];
            if p == NIL {
                break;
            }
            x = p as usize;
        }
        while self.arena.depth[y] > self.arena.depth[x] {
            let p = self.arena.parent[y];
            if p == NIL {
                break;
            }
            y = p as usize;
        }
        while x != y {
            let (px, py) = (self.arena.parent[x], self.arena.parent[y]);
            if px == NIL || py == NIL {
                return self.root();
            }
            x = px as usize;
            y = py as usize;
        }
        NodeId(x as u32)
    }

    /// LCA of a non-empty set of nodes.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn lca_all(&self, nodes: &[NodeId]) -> NodeId {
        assert!(!nodes.is_empty(), "lca_all of empty set");
        nodes[1..].iter().fold(nodes[0], |acc, &n| self.lca(acc, n))
    }

    /// The child of `anc` that lies on the path from `anc` down to
    /// `desc`; `None` when `anc` is not a proper ancestor of `desc`.
    ///
    /// This is the key step of the MLCA "exclusivity" test: a node `x`
    /// has `lca(x, desc)` strictly below `anc` iff `x` lies in the
    /// subtree of this child. O(log n) on a finalized document (one
    /// level-ancestor query), O(depth) otherwise.
    pub fn child_toward(&self, anc: NodeId, desc: NodeId) -> Option<NodeId> {
        obs::count_hot(obs::Counter::ChildTowardQueries, 1);
        if !self.is_proper_ancestor(anc, desc) {
            return None;
        }
        match &self.struct_index {
            Some(ix) => Some(ix.ancestor_at_depth(desc, ix.depth(anc) + 1)),
            None => self.child_toward_walk(anc, desc),
        }
    }

    /// Parent-pointer reference implementation of
    /// [`Document::child_toward`], kept as the property-test oracle and
    /// the pre-finalization fallback.
    pub fn child_toward_walk(&self, anc: NodeId, desc: NodeId) -> Option<NodeId> {
        if !self.is_proper_ancestor(anc, desc) {
            return None;
        }
        let mut cur = desc;
        loop {
            let p = self.parent(cur)?;
            if p == anc {
                return Some(cur);
            }
            cur = p;
        }
    }

    /// The ancestor of `id` at exactly `depth` (root = 0); `id` itself
    /// when its depth matches, `None` when `id` is shallower than the
    /// requested depth. O(log n) on a finalized document.
    pub fn ancestor_at_depth(&self, id: NodeId, depth: u32) -> Option<NodeId> {
        let own = self.arena.depth[id.index()];
        if depth > own {
            return None;
        }
        match &self.struct_index {
            Some(ix) => Some(ix.ancestor_at_depth(id, depth)),
            None => {
                let mut cur = id;
                for _ in 0..own - depth {
                    cur = self.parent(cur)?;
                }
                Some(cur)
            }
        }
    }

    /// Count of nodes with label `sym` inside the subtree rooted at
    /// `root` (inclusive). Uses binary search over the label's packed
    /// pre-rank column: O(log n).
    pub fn count_label_in_subtree(&self, sym: crate::interner::Symbol, root: NodeId) -> usize {
        self.labeled_in_subtree(sym, root).len()
    }

    /// The nodes with label `sym` inside the subtree rooted at `root`
    /// (inclusive), as a document-ordered slice of the label index.
    /// O(log n) to locate; the slice itself is borrowed, not copied.
    ///
    /// The binary search runs over the postings' contiguous `pres`
    /// column — pure 4-byte loads, no node records touched.
    pub fn labeled_in_subtree(&self, sym: crate::interner::Symbol, root: NodeId) -> &[NodeId] {
        obs::count_hot(obs::Counter::SubtreeProbes, 1);
        let Some(p) = self.postings_for(sym) else {
            return &[];
        };
        let (lo, hi) = self.subtree_pre_range(root);
        let start = p.pres.partition_point(|&pre| pre < lo);
        let end = p.pres.partition_point(|&pre| pre <= hi);
        &p.ids[start..end]
    }

    /// Does any node with label `sym` occur in the subtree rooted at
    /// `root` (inclusive)?
    pub fn label_occurs_in_subtree(&self, sym: crate::interner::Symbol, root: NodeId) -> bool {
        self.count_label_in_subtree(sym, root) > 0
    }

    /// Cursor-accelerated [`Document::labeled_in_subtree`]: identical
    /// result, but the search starts from where the cursor's previous
    /// probe of the *same label* ended, galloping outward. Sweeps that
    /// probe many subtrees in (roughly) document order — the per-anchor
    /// partner enumeration of an `mqf()` join is the motivating one —
    /// pay O(log distance) per probe instead of O(log n), which in
    /// practice means a handful of adjacent cache lines instead of a
    /// cold binary search over a multi-megabyte postings column.
    pub fn labeled_in_subtree_from(
        &self,
        sym: crate::interner::Symbol,
        root: NodeId,
        cursor: &mut SubtreeProbeCursor,
    ) -> &[NodeId] {
        obs::count_hot(obs::Counter::SubtreeProbes, 1);
        let Some(p) = self.postings_for(sym) else {
            return &[];
        };
        let (lo, hi) = self.subtree_pre_range(root);
        let start = gallop_lower_bound(&p.pres, lo, cursor.pos);
        let end = start + gallop_lower_bound(&p.pres[start..], hi + 1, 0);
        cursor.pos = start;
        &p.ids[start..end]
    }

    /// Cursor-accelerated [`Document::count_label_in_subtree`].
    pub fn count_label_in_subtree_from(
        &self,
        sym: crate::interner::Symbol,
        root: NodeId,
        cursor: &mut SubtreeProbeCursor,
    ) -> usize {
        self.labeled_in_subtree_from(sym, root, cursor).len()
    }

    /// The pre-order rank interval `[lo, hi]` covering exactly the
    /// subtree of `root`. O(1) on a finalized document (the extent is
    /// precomputed), O(depth) otherwise.
    fn subtree_pre_range(&self, root: NodeId) -> (u32, u32) {
        let lo = self.arena.pre[root.index()];
        if let Some(ix) = &self.struct_index {
            return (lo, ix.subtree_hi(root));
        }
        // The subtree of root is a contiguous pre-order interval; its end
        // is found from the next node after the subtree. Walk to the next
        // sibling of the nearest ancestor that has one.
        let mut cur = root.index();
        loop {
            let sib = self.arena.next_sibling[cur];
            if sib != NIL {
                return (lo, self.arena.pre[sib as usize] - 1);
            }
            match self.arena.parent[cur] {
                NIL => return (lo, (self.len() - 1) as u32),
                p => cur = p as usize,
            }
        }
    }
}

/// Remembered position inside one label's postings, carried between
/// successive [`Document::labeled_in_subtree_from`] probes.
///
/// A cursor is only a performance hint — any value (including the
/// default) yields correct results — and it is only meaningful for the
/// label it was last used with; keep one cursor per label.
#[derive(Debug, Default, Clone, Copy)]
pub struct SubtreeProbeCursor {
    pos: usize,
}

/// First index `i` of sorted `pres` with `pres[i] >= target`, found by
/// galloping outward from `hint`: O(log |i - hint|) comparisons, and
/// mostly-sequential memory traffic when the hint is near the answer.
/// Equivalent to `pres.partition_point(|&p| p < target)` for any hint.
fn gallop_lower_bound(pres: &[u32], target: u32, hint: usize) -> usize {
    let n = pres.len();
    let h = hint.min(n);
    let (lo, hi) = if h < n && pres[h] < target {
        // Answer lies right of the hint: double the step until we
        // overshoot, keeping `pres[lo] < target`.
        let mut step = 1usize;
        let mut lo = h;
        let mut hi = h + 1;
        while hi < n && pres[hi] < target {
            lo = hi;
            step <<= 1;
            hi = hi.saturating_add(step);
        }
        (lo, hi.min(n))
    } else {
        // Answer lies at or left of the hint, keeping `pres[hi] >=
        // target` (or `hi == n`).
        let mut step = 1usize;
        let mut hi = h;
        let mut lo = hi.saturating_sub(1);
        while lo > 0 && pres[lo] >= target {
            hi = lo;
            step <<= 1;
            lo = lo.saturating_sub(step);
        }
        (lo, hi)
    };
    lo + pres[lo..hi].partition_point(|&p| p < target)
}

/// Iterator over direct children. See [`Document::children`].
pub struct Children<'a> {
    doc: &'a Document,
    next: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        if self.next == NIL {
            return None;
        }
        let cur = self.next;
        self.next = self.doc.arena.next_sibling[cur as usize];
        Some(NodeId(cur))
    }
}

/// Iterator over descendants in pre-order. See [`Document::descendants`].
///
/// Finalized documents use the `sweep` range over the document-order
/// table (contiguous, allocation-free); the `stack` path is the
/// pre-finalization link walk.
pub struct Descendants<'a> {
    doc: &'a Document,
    sweep: Option<std::ops::Range<usize>>,
    stack: Vec<u32>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        if let Some(range) = &mut self.sweep {
            let r = range.next()?;
            return Some(NodeId(self.doc.order[r]));
        }
        let cur = self.stack.pop()?;
        let mut c = self.doc.arena.first_child[cur as usize];
        let mut kids = Vec::new();
        while c != NIL {
            kids.push(c);
            c = self.doc.arena.next_sibling[c as usize];
        }
        self.stack.extend(kids.into_iter().rev());
        Some(NodeId(cur))
    }
}

/// Iterator over ancestors, nearest first. See [`Document::ancestors`].
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: u32,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        if self.next == NIL {
            return None;
        }
        let cur = self.next;
        self.next = self.doc.arena.parent[cur as usize];
        Some(NodeId(cur))
    }
}

#[cfg(test)]
mod tests {
    use crate::document::Document;

    /// movies ─ movie ─ (title, director) ×3, two movies share a year
    /// grouping element, mirroring the paper's Figure 1 shape.
    fn fig1ish() -> Document {
        let mut d = Document::new("movies");
        let root = d.root();
        let y0 = d.add_element(root, "year");
        d.add_text(y0, "2000");
        let m1 = d.add_element(y0, "movie");
        d.add_leaf(m1, "title", "Traffic");
        d.add_leaf(m1, "director", "Steven Soderbergh");
        let m2 = d.add_element(y0, "movie");
        d.add_leaf(m2, "title", "How the Grinch Stole Christmas");
        d.add_leaf(m2, "director", "Ron Howard");
        let y1 = d.add_element(root, "year");
        d.add_text(y1, "2001");
        let m3 = d.add_element(y1, "movie");
        d.add_leaf(m3, "title", "A Beautiful Mind");
        d.add_leaf(m3, "director", "Ron Howard");
        d.finalize();
        d
    }

    #[test]
    fn children_in_document_order() {
        let d = fig1ish();
        let years: Vec<_> = d.element_children(d.root()).collect();
        assert_eq!(years.len(), 2);
        assert_eq!(d.direct_text(years[0]), "2000");
        assert_eq!(d.direct_text(years[1]), "2001");
    }

    #[test]
    fn descendants_preorder() {
        let d = fig1ish();
        let all: Vec<_> = d.descendants(d.root()).collect();
        // every node except the root
        assert_eq!(all.len(), d.len() - 1);
        // pre-order is strictly increasing
        for w in all.windows(2) {
            assert!(d.node(w[0]).pre < d.node(w[1]).pre);
        }
    }

    #[test]
    fn descendants_sweep_matches_link_walk() {
        // Build the same tree twice: one finalized (order-table sweep),
        // one not (link-walk fallback) — identical sequences, for every
        // possible subtree root.
        let fin = fig1ish();
        let mut raw = fig1ish();
        raw.struct_index = None; // forces the stack path
        for i in 0..fin.len() {
            let id = crate::NodeId::from_index(i);
            let a: Vec<_> = fin.descendants(id).collect();
            let b: Vec<_> = raw.descendants(id).collect();
            assert_eq!(a, b, "descendants diverge at node {id}");
        }
    }

    #[test]
    fn ancestors_nearest_first() {
        let d = fig1ish();
        let t = d.nodes_labeled("title")[0];
        let anc: Vec<String> = d.ancestors(t).map(|a| d.label(a).to_owned()).collect();
        assert_eq!(anc, vec!["movie", "year", "movies"]);
    }

    #[test]
    fn ancestor_tests() {
        let d = fig1ish();
        let m = d.nodes_labeled("movie")[0];
        let t = d.nodes_labeled("title")[0];
        assert!(d.is_proper_ancestor(m, t));
        assert!(d.is_ancestor_or_self(m, m));
        assert!(!d.is_proper_ancestor(m, m));
        assert!(!d.is_proper_ancestor(t, m));
    }

    #[test]
    fn lca_within_one_movie() {
        let d = fig1ish();
        let t = d.nodes_labeled("title")[0];
        let dir = d.nodes_labeled("director")[0];
        let lca = d.lca(t, dir);
        assert_eq!(d.label(lca), "movie");
    }

    #[test]
    fn lca_across_years_is_root() {
        let d = fig1ish();
        let t0 = d.nodes_labeled("title")[0]; // year 2000
        let t2 = d.nodes_labeled("title")[2]; // year 2001
        assert_eq!(d.lca(t0, t2), d.root());
    }

    #[test]
    fn lca_with_ancestor_argument() {
        let d = fig1ish();
        let m = d.nodes_labeled("movie")[0];
        let t = d.nodes_labeled("title")[0];
        assert_eq!(d.lca(m, t), m);
        assert_eq!(d.lca(t, m), m);
        assert_eq!(d.lca(t, t), t);
    }

    #[test]
    fn lca_all_of_three() {
        let d = fig1ish();
        let titles = d.nodes_labeled("title");
        let lca = d.lca_all(titles);
        assert_eq!(lca, d.root());
    }

    #[test]
    fn child_toward_walks_path() {
        let d = fig1ish();
        let t = d.nodes_labeled("title")[0];
        let step = d.child_toward(d.root(), t).unwrap();
        assert_eq!(d.label(step), "year");
        let m = d.nodes_labeled("movie")[0];
        assert_eq!(d.child_toward(m, t).unwrap(), t);
        assert!(d.child_toward(t, m).is_none());
        assert!(d.child_toward(t, t).is_none());
    }

    #[test]
    fn count_label_in_subtree() {
        let d = fig1ish();
        let title = d.lookup("title").unwrap();
        let years: Vec<_> = d.element_children(d.root()).collect();
        assert_eq!(d.count_label_in_subtree(title, years[0]), 2);
        assert_eq!(d.count_label_in_subtree(title, years[1]), 1);
        assert_eq!(d.count_label_in_subtree(title, d.root()), 3);
        let m = d.nodes_labeled("movie")[0];
        assert_eq!(d.count_label_in_subtree(title, m), 1);
    }

    #[test]
    fn label_occurs_in_subtree() {
        let d = fig1ish();
        let dir = d.lookup("director").unwrap();
        let t = d.nodes_labeled("title")[0];
        assert!(!d.label_occurs_in_subtree(dir, t));
        assert!(d.label_occurs_in_subtree(dir, d.root()));
    }

    #[test]
    fn cursor_probes_match_plain_probes() {
        // Every (label, subtree) probe, swept forward and backward so
        // both galloping directions run, must agree with the stateless
        // binary search.
        let d = fig1ish();
        for lab in ["title", "director", "movie", "year", "movies"] {
            let sym = d.lookup(lab).unwrap();
            let mut fwd = crate::axes::SubtreeProbeCursor::default();
            let mut bwd = crate::axes::SubtreeProbeCursor::default();
            for i in 0..d.len() {
                let a = crate::NodeId::from_index(i);
                let b = crate::NodeId::from_index(d.len() - 1 - i);
                assert_eq!(
                    d.labeled_in_subtree(sym, a),
                    d.labeled_in_subtree_from(sym, a, &mut fwd),
                    "label {lab}, forward sweep at {a}"
                );
                assert_eq!(
                    d.labeled_in_subtree(sym, b),
                    d.labeled_in_subtree_from(sym, b, &mut bwd),
                    "label {lab}, backward sweep at {b}"
                );
            }
        }
    }

    #[test]
    fn gallop_lower_bound_matches_partition_point_for_all_hints() {
        let pres: Vec<u32> = vec![0, 2, 2, 5, 9, 9, 9, 14, 21];
        for target in 0..=22 {
            let want = pres.partition_point(|&p| p < target);
            for hint in 0..=pres.len() + 2 {
                assert_eq!(
                    super::gallop_lower_bound(&pres, target, hint),
                    want,
                    "target {target}, hint {hint}"
                );
            }
        }
        assert_eq!(super::gallop_lower_bound(&[], 3, 0), 0);
        assert_eq!(super::gallop_lower_bound(&[], 3, 7), 0);
    }

    #[test]
    fn indexed_lca_matches_walk_on_all_pairs() {
        let d = fig1ish();
        for a in 0..d.len() {
            for b in 0..d.len() {
                let (a, b) = (crate::NodeId::from_index(a), crate::NodeId::from_index(b));
                assert_eq!(d.lca(a, b), d.lca_walk(a, b));
            }
        }
    }

    #[test]
    fn indexed_child_toward_matches_walk_on_all_pairs() {
        let d = fig1ish();
        for a in 0..d.len() {
            for b in 0..d.len() {
                let (a, b) = (crate::NodeId::from_index(a), crate::NodeId::from_index(b));
                assert_eq!(d.child_toward(a, b), d.child_toward_walk(a, b));
            }
        }
    }

    #[test]
    fn ancestor_at_depth_walks_to_root() {
        let d = fig1ish();
        let t = d.nodes_labeled("title")[0];
        assert_eq!(d.ancestor_at_depth(t, 0), Some(d.root()));
        assert_eq!(d.ancestor_at_depth(t, 3), Some(t));
        assert_eq!(d.ancestor_at_depth(t, 4), None);
        let m = d.nodes_labeled("movie")[0];
        assert_eq!(d.ancestor_at_depth(t, 2), Some(m));
    }

    #[test]
    fn subtree_range_of_last_node() {
        let d = fig1ish();
        // The very last title/director pair: range must extend to the end.
        let dirs = d.nodes_labeled("director");
        let last = dirs[dirs.len() - 1];
        let sym = d.lookup("director").unwrap();
        assert_eq!(d.count_label_in_subtree(sym, last), 1);
    }
}
