//! Tree navigation: children, descendants, ancestors, subtree tests and
//! lowest common ancestors.
//!
//! These are the structural primitives beneath both the XQuery engine's
//! path steps and the MLCA (meaningful lowest common ancestor) algorithm
//! in crate `xquery`, as well as the Meet operator of the keyword-search
//! baseline. Containment tests use pre/post-order ranks, so they are O(1).
//! On a finalized document LCA queries are answered in O(1) from the
//! Euler-tour index built by [`Document::finalize`], and level-ancestor
//! queries (including [`Document::child_toward`]) in O(log n) via binary
//! lifting; the original parent-pointer walks survive as `*_walk`
//! reference implementations and as fallbacks for unfinalized documents.

use crate::document::Document;
use crate::node::{NodeId, NodeKind};

impl Document {
    /// Iterator over the direct children of `id`, in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.node(id).first_child,
        }
    }

    /// Iterator over the element children of `id` (skipping text and
    /// attribute nodes), in document order.
    pub fn element_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .filter(move |&c| self.node(c).kind == NodeKind::Element)
    }

    /// Iterator over all descendants of `id` in pre-order, excluding `id`
    /// itself.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: {
                let mut v = Vec::new();
                // Children pushed in reverse for pre-order traversal.
                let mut c = self.node(id).first_child;
                let mut tmp = Vec::new();
                while let Some(cid) = c {
                    tmp.push(cid);
                    c = self.node(cid).next_sibling;
                }
                v.extend(tmp.into_iter().rev());
                v
            },
        }
    }

    /// Iterator over `id`'s ancestors, nearest first, excluding `id`.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            next: self.node(id).parent,
        }
    }

    /// True iff `anc` is `desc` or an ancestor of `desc` (O(1), uses
    /// pre/post ranks — document must be finalized).
    #[inline]
    pub fn is_ancestor_or_self(&self, anc: NodeId, desc: NodeId) -> bool {
        let a = self.node(anc);
        let d = self.node(desc);
        debug_assert!(a.pre != u32::MAX && d.pre != u32::MAX);
        a.pre <= d.pre && a.post >= d.post
    }

    /// True iff `anc` is a *proper* ancestor of `desc`.
    #[inline]
    pub fn is_proper_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        anc != desc && self.is_ancestor_or_self(anc, desc)
    }

    /// Lowest common ancestor of two nodes. Total: every pair in one
    /// document has an LCA (at worst the root). O(1) on a finalized
    /// document (Euler-tour RMQ), O(depth) otherwise.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        obs::count_hot(obs::Counter::LcaQueries, 1);
        match &self.struct_index {
            Some(ix) => ix.lca(a, b),
            None => self.lca_walk(a, b),
        }
    }

    /// Parent-pointer reference implementation of [`Document::lca`]:
    /// walk up from the deeper node until depths match, then in
    /// lockstep. O(depth). Kept as the oracle the indexed version is
    /// property-tested against, and as the pre-finalization fallback.
    pub fn lca_walk(&self, a: NodeId, b: NodeId) -> NodeId {
        if self.is_ancestor_or_self(a, b) {
            return a;
        }
        if self.is_ancestor_or_self(b, a) {
            return b;
        }
        // Walk up from the deeper node until depths match, then in
        // lockstep. The root handles both `None` parents below: the
        // ancestor-or-self checks above already dealt with one node
        // being the root, so hitting it here means the walk converged.
        let (mut x, mut y) = (a, b);
        while self.node(x).depth > self.node(y).depth {
            let Some(p) = self.node(x).parent else { break };
            x = p;
        }
        while self.node(y).depth > self.node(x).depth {
            let Some(p) = self.node(y).parent else { break };
            y = p;
        }
        while x != y {
            match (self.node(x).parent, self.node(y).parent) {
                (Some(px), Some(py)) => {
                    x = px;
                    y = py;
                }
                _ => return self.root(),
            }
        }
        x
    }

    /// LCA of a non-empty set of nodes.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn lca_all(&self, nodes: &[NodeId]) -> NodeId {
        assert!(!nodes.is_empty(), "lca_all of empty set");
        nodes[1..].iter().fold(nodes[0], |acc, &n| self.lca(acc, n))
    }

    /// The child of `anc` that lies on the path from `anc` down to
    /// `desc`; `None` when `anc` is not a proper ancestor of `desc`.
    ///
    /// This is the key step of the MLCA "exclusivity" test: a node `x`
    /// has `lca(x, desc)` strictly below `anc` iff `x` lies in the
    /// subtree of this child. O(log n) on a finalized document (one
    /// level-ancestor query), O(depth) otherwise.
    pub fn child_toward(&self, anc: NodeId, desc: NodeId) -> Option<NodeId> {
        obs::count_hot(obs::Counter::ChildTowardQueries, 1);
        if !self.is_proper_ancestor(anc, desc) {
            return None;
        }
        match &self.struct_index {
            Some(ix) => Some(ix.ancestor_at_depth(desc, ix.depth(anc) + 1)),
            None => self.child_toward_walk(anc, desc),
        }
    }

    /// Parent-pointer reference implementation of
    /// [`Document::child_toward`], kept as the property-test oracle and
    /// the pre-finalization fallback.
    pub fn child_toward_walk(&self, anc: NodeId, desc: NodeId) -> Option<NodeId> {
        if !self.is_proper_ancestor(anc, desc) {
            return None;
        }
        let mut cur = desc;
        loop {
            let p = self.node(cur).parent?;
            if p == anc {
                return Some(cur);
            }
            cur = p;
        }
    }

    /// The ancestor of `id` at exactly `depth` (root = 0); `id` itself
    /// when its depth matches, `None` when `id` is shallower than the
    /// requested depth. O(log n) on a finalized document.
    pub fn ancestor_at_depth(&self, id: NodeId, depth: u32) -> Option<NodeId> {
        let own = self.node(id).depth;
        if depth > own {
            return None;
        }
        match &self.struct_index {
            Some(ix) => Some(ix.ancestor_at_depth(id, depth)),
            None => {
                let mut cur = id;
                for _ in 0..own - depth {
                    cur = self.node(cur).parent?;
                }
                Some(cur)
            }
        }
    }

    /// Count of nodes with label `sym` inside the subtree rooted at
    /// `root` (inclusive). Uses binary search over the label index's
    /// document-ordered node list: O(log n).
    pub fn count_label_in_subtree(&self, sym: crate::interner::Symbol, root: NodeId) -> usize {
        self.labeled_in_subtree(sym, root).len()
    }

    /// The nodes with label `sym` inside the subtree rooted at `root`
    /// (inclusive), as a document-ordered slice of the label index.
    /// O(log n) to locate; the slice itself is borrowed, not copied.
    pub fn labeled_in_subtree(&self, sym: crate::interner::Symbol, root: NodeId) -> &[NodeId] {
        obs::count_hot(obs::Counter::SubtreeProbes, 1);
        let list = self.nodes_with_symbol(sym);
        let (lo, hi) = self.subtree_pre_range(root);
        // list is sorted by pre-order rank.
        let start = list.partition_point(|&n| self.node(n).pre < lo);
        let end = list.partition_point(|&n| self.node(n).pre <= hi);
        &list[start..end]
    }

    /// Does any node with label `sym` occur in the subtree rooted at
    /// `root` (inclusive)?
    pub fn label_occurs_in_subtree(&self, sym: crate::interner::Symbol, root: NodeId) -> bool {
        self.count_label_in_subtree(sym, root) > 0
    }

    /// The pre-order rank interval `[lo, hi]` covering exactly the
    /// subtree of `root`. O(1) on a finalized document (the extent is
    /// precomputed), O(depth) otherwise.
    fn subtree_pre_range(&self, root: NodeId) -> (u32, u32) {
        let lo = self.node(root).pre;
        if let Some(ix) = &self.struct_index {
            return (lo, ix.subtree_hi(root));
        }
        // The subtree of root is a contiguous pre-order interval; its end
        // is found from the next node after the subtree. Walk to the next
        // sibling of the nearest ancestor that has one.
        let mut cur = root;
        loop {
            if let Some(sib) = self.node(cur).next_sibling {
                return (lo, self.node(sib).pre - 1);
            }
            match self.node(cur).parent {
                Some(p) => cur = p,
                None => return (lo, (self.len() - 1) as u32),
            }
        }
    }
}

/// Iterator over direct children. See [`Document::children`].
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.node(cur).next_sibling;
        Some(cur)
    }
}

/// Iterator over descendants in pre-order. See [`Document::descendants`].
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.stack.pop()?;
        let mut kids = Vec::new();
        let mut c = self.doc.node(cur).first_child;
        while let Some(cid) = c {
            kids.push(cid);
            c = self.doc.node(cid).next_sibling;
        }
        self.stack.extend(kids.into_iter().rev());
        Some(cur)
    }
}

/// Iterator over ancestors, nearest first. See [`Document::ancestors`].
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.node(cur).parent;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use crate::document::Document;

    /// movies ─ movie ─ (title, director) ×3, two movies share a year
    /// grouping element, mirroring the paper's Figure 1 shape.
    fn fig1ish() -> Document {
        let mut d = Document::new("movies");
        let root = d.root();
        let y0 = d.add_element(root, "year");
        d.add_text(y0, "2000");
        let m1 = d.add_element(y0, "movie");
        d.add_leaf(m1, "title", "Traffic");
        d.add_leaf(m1, "director", "Steven Soderbergh");
        let m2 = d.add_element(y0, "movie");
        d.add_leaf(m2, "title", "How the Grinch Stole Christmas");
        d.add_leaf(m2, "director", "Ron Howard");
        let y1 = d.add_element(root, "year");
        d.add_text(y1, "2001");
        let m3 = d.add_element(y1, "movie");
        d.add_leaf(m3, "title", "A Beautiful Mind");
        d.add_leaf(m3, "director", "Ron Howard");
        d.finalize();
        d
    }

    #[test]
    fn children_in_document_order() {
        let d = fig1ish();
        let years: Vec<_> = d.element_children(d.root()).collect();
        assert_eq!(years.len(), 2);
        assert_eq!(d.direct_text(years[0]), "2000");
        assert_eq!(d.direct_text(years[1]), "2001");
    }

    #[test]
    fn descendants_preorder() {
        let d = fig1ish();
        let all: Vec<_> = d.descendants(d.root()).collect();
        // every node except the root
        assert_eq!(all.len(), d.len() - 1);
        // pre-order is strictly increasing
        for w in all.windows(2) {
            assert!(d.node(w[0]).pre < d.node(w[1]).pre);
        }
    }

    #[test]
    fn ancestors_nearest_first() {
        let d = fig1ish();
        let t = d.nodes_labeled("title")[0];
        let anc: Vec<String> = d.ancestors(t).map(|a| d.label(a).to_owned()).collect();
        assert_eq!(anc, vec!["movie", "year", "movies"]);
    }

    #[test]
    fn ancestor_tests() {
        let d = fig1ish();
        let m = d.nodes_labeled("movie")[0];
        let t = d.nodes_labeled("title")[0];
        assert!(d.is_proper_ancestor(m, t));
        assert!(d.is_ancestor_or_self(m, m));
        assert!(!d.is_proper_ancestor(m, m));
        assert!(!d.is_proper_ancestor(t, m));
    }

    #[test]
    fn lca_within_one_movie() {
        let d = fig1ish();
        let t = d.nodes_labeled("title")[0];
        let dir = d.nodes_labeled("director")[0];
        let lca = d.lca(t, dir);
        assert_eq!(d.label(lca), "movie");
    }

    #[test]
    fn lca_across_years_is_root() {
        let d = fig1ish();
        let t0 = d.nodes_labeled("title")[0]; // year 2000
        let t2 = d.nodes_labeled("title")[2]; // year 2001
        assert_eq!(d.lca(t0, t2), d.root());
    }

    #[test]
    fn lca_with_ancestor_argument() {
        let d = fig1ish();
        let m = d.nodes_labeled("movie")[0];
        let t = d.nodes_labeled("title")[0];
        assert_eq!(d.lca(m, t), m);
        assert_eq!(d.lca(t, m), m);
        assert_eq!(d.lca(t, t), t);
    }

    #[test]
    fn lca_all_of_three() {
        let d = fig1ish();
        let titles = d.nodes_labeled("title");
        let lca = d.lca_all(titles);
        assert_eq!(lca, d.root());
    }

    #[test]
    fn child_toward_walks_path() {
        let d = fig1ish();
        let t = d.nodes_labeled("title")[0];
        let step = d.child_toward(d.root(), t).unwrap();
        assert_eq!(d.label(step), "year");
        let m = d.nodes_labeled("movie")[0];
        assert_eq!(d.child_toward(m, t).unwrap(), t);
        assert!(d.child_toward(t, m).is_none());
        assert!(d.child_toward(t, t).is_none());
    }

    #[test]
    fn count_label_in_subtree() {
        let d = fig1ish();
        let title = d.lookup("title").unwrap();
        let years: Vec<_> = d.element_children(d.root()).collect();
        assert_eq!(d.count_label_in_subtree(title, years[0]), 2);
        assert_eq!(d.count_label_in_subtree(title, years[1]), 1);
        assert_eq!(d.count_label_in_subtree(title, d.root()), 3);
        let m = d.nodes_labeled("movie")[0];
        assert_eq!(d.count_label_in_subtree(title, m), 1);
    }

    #[test]
    fn label_occurs_in_subtree() {
        let d = fig1ish();
        let dir = d.lookup("director").unwrap();
        let t = d.nodes_labeled("title")[0];
        assert!(!d.label_occurs_in_subtree(dir, t));
        assert!(d.label_occurs_in_subtree(dir, d.root()));
    }

    #[test]
    fn indexed_lca_matches_walk_on_all_pairs() {
        let d = fig1ish();
        for a in 0..d.len() {
            for b in 0..d.len() {
                let (a, b) = (crate::NodeId::from_index(a), crate::NodeId::from_index(b));
                assert_eq!(d.lca(a, b), d.lca_walk(a, b));
            }
        }
    }

    #[test]
    fn indexed_child_toward_matches_walk_on_all_pairs() {
        let d = fig1ish();
        for a in 0..d.len() {
            for b in 0..d.len() {
                let (a, b) = (crate::NodeId::from_index(a), crate::NodeId::from_index(b));
                assert_eq!(d.child_toward(a, b), d.child_toward_walk(a, b));
            }
        }
    }

    #[test]
    fn ancestor_at_depth_walks_to_root() {
        let d = fig1ish();
        let t = d.nodes_labeled("title")[0];
        assert_eq!(d.ancestor_at_depth(t, 0), Some(d.root()));
        assert_eq!(d.ancestor_at_depth(t, 3), Some(t));
        assert_eq!(d.ancestor_at_depth(t, 4), None);
        let m = d.nodes_labeled("movie")[0];
        assert_eq!(d.ancestor_at_depth(t, 2), Some(m));
    }

    #[test]
    fn subtree_range_of_last_node() {
        let d = fig1ish();
        // The very last title/director pair: range must extend to the end.
        let dirs = d.nodes_labeled("director");
        let last = dirs[dirs.len() - 1];
        let sym = d.lookup("director").unwrap();
        assert_eq!(d.count_label_in_subtree(sym, last), 1);
    }
}
