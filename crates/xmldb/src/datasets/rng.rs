//! A minimal deterministic PRNG for the dataset generators.
//!
//! `splitmix64` is small, fast, passes BigCrush when used as a stream,
//! and — unlike pulling in `rand` — keeps the library dependency-free.
//! The user-study crate, which needs richer distributions, uses `rand`
//! instead; this one exists only so `xmldb` can generate corpora
//! reproducibly.

/// Splitmix64 stream generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded construction: equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SplitMix64::new(42);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SplitMix64::new(5);
        let xs = ["a", "b", "c"];
        for _ in 0..50 {
            assert!(xs.contains(r.pick(&xs)));
        }
    }
}
