//! Evaluation datasets.
//!
//! - [`movies`] — the movies database of the paper's **Figure 1**, plus a
//!   variant extended with a `books` branch so that Query 3 ("movie whose
//!   title is the same as the title of a book") has a non-empty answer.
//! - [`dblp`] — a seeded generator producing a DBLP-shaped bibliography
//!   (book + article elements) matching the paper's experimental corpus:
//!   "a sub-collection of DBLP, which included all the elements on books
//!   in DBLP and twice as many elements on articles … 73142 nodes".
//! - [`bib`] — the W3C XMP `bib.xml` sample from the XQuery Use Cases,
//!   which the paper's nine search tasks were adapted from.
//! - [`rng`] — a tiny deterministic PRNG (splitmix64) so the generators
//!   are reproducible without pulling `rand` into the library's
//!   dependency set.

pub mod bib;
pub mod dblp;
pub mod movies;
pub mod rng;
