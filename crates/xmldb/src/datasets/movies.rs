//! The movies database of the paper's **Figure 1**.
//!
//! Reconstructed node-for-node from the figure:
//!
//! ```text
//! movies(1)
//! ├── year(2) "2000"
//! │   ├── movie(3)  { title(4)  "How the Grinch Stole Christmas",
//! │   │               director(5)  "Ron Howard" }
//! │   └── movie(6)  { title(7)  "Traffic",
//! │                   director(8)  "Steven Soderbergh" }
//! └── year(9) "2001"
//!     ├── movie(10) { title(11) "A Beautiful Mind",
//!     │               director(12) "Ron Howard" }
//!     ├── movie(13) { title(14) "Tribute",
//!     │               director(15) "Steven Soderbergh" }
//!     └── movie(16) { title(17) "The Lord of the Rings",
//!                     director(18) "Peter Jackson" }
//! ```
//!
//! Against this data the paper's example queries behave as follows:
//!
//! - *Query 2* ("Return every director, where the number of movies
//!   directed by the director is the same as the number of movies
//!   directed by Ron Howard") → Ron Howard (2 movies) and Steven
//!   Soderbergh (2 movies).
//! - *Query 3* ("Return the directors of movies, where the title of each
//!   movie is the same as the title of a book") needs a `books` branch;
//!   [`movies_and_books`] adds one whose only title shared with a movie
//!   is "Traffic", so the answer is Steven Soderbergh.

use crate::document::Document;

/// Title/director pairs per year, mirroring Figure 1.
pub const FILMS_2000: [(&str, &str); 2] = [
    ("How the Grinch Stole Christmas", "Ron Howard"),
    ("Traffic", "Steven Soderbergh"),
];

/// Films under the 2001 year element of Figure 1.
pub const FILMS_2001: [(&str, &str); 3] = [
    ("A Beautiful Mind", "Ron Howard"),
    ("Tribute", "Steven Soderbergh"),
    ("The Lord of the Rings", "Peter Jackson"),
];

/// Build exactly the Figure 1 document.
pub fn movies() -> Document {
    let mut d = Document::new("movies");
    let root = d.root();
    for (year, films) in [("2000", &FILMS_2000[..]), ("2001", &FILMS_2001[..])] {
        let y = d.add_element(root, "year");
        d.add_text(y, year);
        for (title, director) in films {
            let m = d.add_element(y, "movie");
            d.add_leaf(m, "title", title);
            d.add_leaf(m, "director", director);
        }
    }
    d.finalize();
    d
}

/// Titles of the books branch added by [`movies_and_books`]. Only
/// "Traffic" collides with a movie title.
pub const BOOK_TITLES: [&str; 3] = [
    "Traffic",
    "Database Management Systems",
    "The Art of Computer Programming",
];

/// Figure 1 plus a `books` branch (book/title/author), so that value
/// joins between movie titles and book titles are exercised.
pub fn movies_and_books() -> Document {
    let mut d = Document::new("collection");
    let root = d.root();

    let movies = d.add_element(root, "movies");
    for (year, films) in [("2000", &FILMS_2000[..]), ("2001", &FILMS_2001[..])] {
        let y = d.add_element(movies, "year");
        d.add_text(y, year);
        for (title, director) in films {
            let m = d.add_element(y, "movie");
            d.add_leaf(m, "title", title);
            d.add_leaf(m, "director", director);
        }
    }

    let books = d.add_element(root, "books");
    let authors = ["Unknown", "Ramakrishnan", "Knuth"];
    for (title, author) in BOOK_TITLES.iter().zip(authors) {
        let b = d.add_element(books, "book");
        d.add_leaf(b, "title", title);
        d.add_leaf(b, "author", author);
    }

    d.finalize();
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_five_movies() {
        let d = movies();
        assert_eq!(d.nodes_labeled("movie").len(), 5);
        assert_eq!(d.nodes_labeled("title").len(), 5);
        assert_eq!(d.nodes_labeled("director").len(), 5);
        assert_eq!(d.nodes_labeled("year").len(), 2);
    }

    #[test]
    fn figure1_node_count_matches_paper_numbering() {
        // The figure numbers 18 element nodes; our arena additionally
        // holds the text nodes carrying the values.
        let d = movies();
        assert_eq!(d.stats().elements, 18);
    }

    #[test]
    fn ron_howard_directed_two() {
        let d = movies();
        let n = d
            .nodes_labeled("director")
            .iter()
            .filter(|&&id| d.string_value(id) == "Ron Howard")
            .count();
        assert_eq!(n, 2);
    }

    #[test]
    fn year_values_via_direct_text() {
        let d = movies();
        let years = d.nodes_labeled("year");
        assert_eq!(d.direct_text(years[0]), "2000");
        assert_eq!(d.direct_text(years[1]), "2001");
    }

    #[test]
    fn books_branch_shares_one_title() {
        let d = movies_and_books();
        let movie_titles: Vec<String> = d
            .nodes_labeled("title")
            .iter()
            .filter(|&&t| d.ancestors(t).any(|a| d.label(a) == "movie"))
            .map(|&t| d.string_value(t))
            .collect();
        let book_titles: Vec<String> = d
            .nodes_labeled("title")
            .iter()
            .filter(|&&t| d.ancestors(t).any(|a| d.label(a) == "book"))
            .map(|&t| d.string_value(t))
            .collect();
        let shared: Vec<_> = movie_titles
            .iter()
            .filter(|t| book_titles.contains(t))
            .collect();
        assert_eq!(shared, vec!["Traffic"]);
    }
}
