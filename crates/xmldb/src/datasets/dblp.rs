//! A seeded DBLP-shaped bibliography generator.
//!
//! The paper's corpus was "a sub-collection of DBLP, which included all
//! the elements on books in DBLP and twice as many elements on articles.
//! The total size of the data set is 1.44MB, with 73142 nodes" (Sec. 5.1).
//! We reproduce the *shape*: a `dblp` root with `book` and `article`
//! entries (articles ≈ 2 × books), authors, editors with affiliations,
//! titles, publishers and years; the default configuration lands within a
//! few percent of the paper's node count.
//!
//! The generator plants deterministic **anchor entries** so every one of
//! the nine XMP-derived search tasks has a non-trivial, stable gold
//! answer (Addison-Wesley books straddling 1991, an author "Dan Suciu",
//! titles containing "XML", repeated-title editions for the min-year
//! aggregation, and editor affiliations), then fills the remainder with
//! seeded random entries.

use crate::datasets::rng::SplitMix64;
use crate::document::Document;
use crate::node::NodeId;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of `book` entries (anchors included).
    pub books: usize,
    /// Number of `article` entries.
    pub articles: usize,
    /// PRNG seed; equal configs generate identical documents.
    pub seed: u64,
}

impl Default for DblpConfig {
    /// Paper-scale corpus: ≈73k nodes.
    fn default() -> Self {
        DblpConfig {
            books: 2400,
            articles: 4800,
            seed: 0xDB1F,
        }
    }
}

impl DblpConfig {
    /// A small corpus for unit tests (a few hundred nodes).
    pub fn small() -> Self {
        DblpConfig {
            books: 40,
            articles: 80,
            seed: 7,
        }
    }
}

/// A book record, used both by the generator and by tests that want to
/// assert on what was planted.
#[derive(Debug, Clone)]
pub struct BookSpec {
    /// Title text.
    pub title: String,
    /// Author names (may be empty when the book has only editors).
    pub authors: Vec<String>,
    /// `(name, affiliation)` of the editor, if any.
    pub editor: Option<(String, String)>,
    /// Publisher name.
    pub publisher: String,
    /// Publication year.
    pub year: u32,
}

const PUBLISHERS: [&str; 7] = [
    "Addison-Wesley",
    "Morgan Kaufmann",
    "Springer",
    "Prentice Hall",
    "McGraw-Hill",
    "O'Reilly",
    "MIT Press",
];

const FIRST_NAMES: [&str; 16] = [
    "Alice", "Bob", "Carol", "David", "Erika", "Frank", "Grace", "Hector", "Irene", "Jack",
    "Karen", "Luis", "Maria", "Ning", "Olga", "Pavel",
];

const LAST_NAMES: [&str; 16] = [
    "Smith", "Garcia", "Chen", "Mueller", "Tanaka", "Kowalski", "Okafor", "Silva", "Ivanov",
    "Dubois", "Rossi", "Yamamoto", "Novak", "Patel", "Kim", "Larsen",
];

const TITLE_HEADS: [&str; 12] = [
    "Foundations of",
    "Principles of",
    "Advanced",
    "Introduction to",
    "A Survey of",
    "Modern",
    "Practical",
    "The Theory of",
    "Efficient",
    "Scalable",
    "Distributed",
    "Adaptive",
];

const TITLE_TOPICS: [&str; 14] = [
    "Database Systems",
    "Query Processing",
    "Information Retrieval",
    "Data Mining",
    "Transaction Management",
    "Semistructured Data",
    "Index Structures",
    "Stream Processing",
    "Data Integration",
    "Knowledge Representation",
    "Storage Engines",
    "Concurrency Control",
    "Query Optimization",
    "Web Services",
];

const JOURNALS: [&str; 5] = [
    "ACM TODS",
    "VLDB Journal",
    "IEEE TKDE",
    "Information Systems",
    "SIGMOD Record",
];

/// Anchor books that make every evaluation task answerable. Public so
/// the user-study crate can cross-check gold answers.
pub fn anchor_books() -> Vec<BookSpec> {
    let b = |title: &str,
             authors: &[&str],
             editor: Option<(&str, &str)>,
             publisher: &str,
             year: u32| BookSpec {
        title: title.to_owned(),
        authors: authors.iter().map(|s| (*s).to_owned()).collect(),
        editor: editor.map(|(n, a)| (n.to_owned(), a.to_owned())),
        publisher: publisher.to_owned(),
        year,
    };
    vec![
        // Addison-Wesley after 1991 (tasks Q1/Q7): five books.
        b(
            "TCP/IP Illustrated",
            &["W. Richard Stevens"],
            None,
            "Addison-Wesley",
            1994,
        ),
        b(
            "Advanced Programming in the Unix Environment",
            &["W. Richard Stevens"],
            None,
            "Addison-Wesley",
            1992,
        ),
        b(
            "Compilers: Principles and Techniques",
            &["Alfred Aho", "Jeffrey D. Ullman"],
            None,
            "Addison-Wesley",
            2006,
        ),
        b(
            "Database System Implementation",
            &["Hector Garcia-Molina", "Jeffrey D. Ullman"],
            None,
            "Addison-Wesley",
            1999,
        ),
        b(
            "Mythical Man-Month",
            &["Frederick Brooks"],
            None,
            "Addison-Wesley",
            1995,
        ),
        // Addison-Wesley NOT after 1991 (negative fixtures for Q1/Q7).
        b(
            "The C Programming Environment",
            &["Brian Kernighan"],
            None,
            "Addison-Wesley",
            1984,
        ),
        b(
            "Structured Systems Analysis",
            &["Tom DeMarco"],
            None,
            "Addison-Wesley",
            1979,
        ),
        b(
            "Smalltalk-80: The Language",
            &["Adele Goldberg"],
            None,
            "Addison-Wesley",
            1989,
        ),
        // "Suciu" author fixtures (task Q8).
        b(
            "Data on the Web",
            &["Serge Abiteboul", "Peter Buneman", "Dan Suciu"],
            None,
            "Morgan Kaufmann",
            1999,
        ),
        b(
            "XML Data Management",
            &["Dan Suciu"],
            None,
            "Springer",
            2003,
        ),
        // Titles containing "XML" (task Q9) — one overlaps with Suciu above.
        b(
            "XML Query Languages",
            &["Mary Fernandez"],
            None,
            "Springer",
            2001,
        ),
        b("Learning XML", &["Erik Ray"], None, "O'Reilly", 2003),
        b(
            "Professional XML Databases",
            &["Kevin Williams"],
            None,
            "McGraw-Hill",
            2000,
        ),
        // Repeated-title editions (task Q10: minimum year per title).
        b(
            "Principles of Database Systems",
            &["Jeffrey D. Ullman"],
            None,
            "Prentice Hall",
            1980,
        ),
        b(
            "Principles of Database Systems",
            &["Jeffrey D. Ullman"],
            None,
            "Prentice Hall",
            1982,
        ),
        b(
            "Principles of Database Systems",
            &["Jeffrey D. Ullman"],
            None,
            "Prentice Hall",
            1988,
        ),
        b(
            "Operating System Concepts",
            &["Abraham Silberschatz"],
            None,
            "MIT Press",
            1991,
        ),
        b(
            "Operating System Concepts",
            &["Abraham Silberschatz"],
            None,
            "MIT Press",
            1998,
        ),
        // Editor + affiliation fixtures (task Q11).
        b(
            "Readings in Database Systems",
            &[],
            Some(("Michael Stonebraker", "UC Berkeley")),
            "Morgan Kaufmann",
            1998,
        ),
        b(
            "The Handbook of Data Management",
            &[],
            Some(("Barbara von Halle", "Knowledge Partners")),
            "Springer",
            1993,
        ),
        b(
            "Advances in Knowledge Discovery",
            &[],
            Some(("Usama Fayyad", "Microsoft Research")),
            "MIT Press",
            1996,
        ),
        b(
            "Readings in Information Retrieval",
            &[],
            Some(("Karen Sparck Jones", "University of Cambridge")),
            "Morgan Kaufmann",
            1997,
        ),
        b(
            "Temporal Databases: Theory and Practice",
            &[],
            Some(("Opher Etzion", "IBM Research")),
            "Springer",
            1998,
        ),
    ]
}

fn random_name(rng: &mut SplitMix64) -> String {
    format!("{} {}", rng.pick(&FIRST_NAMES), rng.pick(&LAST_NAMES))
}

fn random_title(rng: &mut SplitMix64) -> String {
    format!("{} {}", rng.pick(&TITLE_HEADS), rng.pick(&TITLE_TOPICS))
}

fn write_book(doc: &mut Document, parent: NodeId, spec: &BookSpec) {
    let bk = doc.add_element(parent, "book");
    doc.add_leaf(bk, "title", &spec.title);
    for a in &spec.authors {
        doc.add_leaf(bk, "author", a);
    }
    if let Some((name, affiliation)) = &spec.editor {
        let ed = doc.add_element(bk, "editor");
        doc.add_leaf(ed, "name", name);
        doc.add_leaf(ed, "affiliation", affiliation);
    }
    doc.add_leaf(bk, "publisher", &spec.publisher);
    doc.add_leaf(bk, "year", &spec.year.to_string());
}

/// Generate the corpus described by `cfg`.
pub fn generate(cfg: &DblpConfig) -> Document {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut doc = Document::new("dblp");
    let root = doc.root();

    let anchors = anchor_books();
    let n_anchor = anchors.len().min(cfg.books);
    for spec in anchors.iter().take(n_anchor) {
        write_book(&mut doc, root, spec);
    }

    // Random filler books. A pool of previously used titles feeds the
    // "edition" mechanism (~8% of filler books reuse a title with a new
    // year) so min-year aggregation has plenty of groups.
    let mut titles_so_far: Vec<String> = Vec::new();
    // A pool of recurring authors so that "books by the same author"
    // (task Q4) groups have size > 1.
    let recurring: Vec<String> = (0..24).map(|_| random_name(&mut rng)).collect();

    for _ in n_anchor..cfg.books {
        let title = if !titles_so_far.is_empty() && rng.chance(0.08) {
            rng.pick(&titles_so_far).clone()
        } else {
            let t = random_title(&mut rng);
            titles_so_far.push(t.clone());
            t
        };
        let n_authors = rng.range(1, 3);
        let authors: Vec<String> = (0..n_authors)
            .map(|_| {
                if rng.chance(0.5) {
                    rng.pick(&recurring).clone()
                } else {
                    random_name(&mut rng)
                }
            })
            .collect();
        let editor = if rng.chance(0.05) {
            Some((
                random_name(&mut rng),
                format!("{} University", rng.pick(&LAST_NAMES)),
            ))
        } else {
            None
        };
        let spec = BookSpec {
            title,
            authors,
            editor,
            publisher: (*rng.pick(&PUBLISHERS)).to_owned(),
            year: rng.range(1970, 2005) as u32,
        };
        write_book(&mut doc, root, &spec);
    }

    // Articles: author+, title, journal, year (twice as many as books in
    // the default configuration, matching the paper).
    for _ in 0..cfg.articles {
        let art = doc.add_element(root, "article");
        let n_authors = rng.range(1, 3);
        doc.add_leaf(art, "title", &random_title(&mut rng));
        for _ in 0..n_authors {
            let name = if rng.chance(0.4) {
                rng.pick(&recurring).clone()
            } else {
                random_name(&mut rng)
            };
            doc.add_leaf(art, "author", &name);
        }
        let journal = *rng.pick(&JOURNALS);
        doc.add_leaf(art, "journal", journal);
        doc.add_leaf(art, "year", &rng.range(1975, 2005).to_string());
    }

    doc.finalize();
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = generate(&DblpConfig::small());
        let b = generate(&DblpConfig::small());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.to_xml(a.root()), b.to_xml(b.root()));
    }

    #[test]
    fn different_seed_changes_corpus() {
        let a = generate(&DblpConfig::small());
        let b = generate(&DblpConfig {
            seed: 8,
            ..DblpConfig::small()
        });
        assert_ne!(a.to_xml(a.root()), b.to_xml(b.root()));
    }

    #[test]
    fn counts_match_config() {
        let cfg = DblpConfig::small();
        let d = generate(&cfg);
        assert_eq!(d.nodes_labeled("book").len(), cfg.books);
        assert_eq!(d.nodes_labeled("article").len(), cfg.articles);
    }

    #[test]
    fn anchors_are_present() {
        let d = generate(&DblpConfig::small());
        let titles: Vec<String> = d
            .nodes_labeled("title")
            .iter()
            .map(|&t| d.string_value(t))
            .collect();
        assert!(titles.iter().any(|t| t == "TCP/IP Illustrated"));
        assert!(titles.iter().any(|t| t.contains("XML")));
        let authors: Vec<String> = d
            .nodes_labeled("author")
            .iter()
            .map(|&a| d.string_value(a))
            .collect();
        assert!(authors.iter().any(|a| a.contains("Suciu")));
        assert!(!d.nodes_labeled("affiliation").is_empty());
    }

    #[test]
    fn addison_wesley_straddles_1991() {
        let d = generate(&DblpConfig::small());
        let mut after = 0;
        let mut not_after = 0;
        for &b in d.nodes_labeled("book") {
            let publisher = d
                .element_children(b)
                .find(|&c| d.label(c) == "publisher")
                .map(|c| d.string_value(c));
            if publisher.as_deref() != Some("Addison-Wesley") {
                continue;
            }
            let year: u32 = d
                .element_children(b)
                .find(|&c| d.label(c) == "year")
                .map(|c| d.string_value(c).parse().unwrap())
                .unwrap();
            if year > 1991 {
                after += 1;
            } else {
                not_after += 1;
            }
        }
        assert!(after >= 5, "after={after}");
        assert!(not_after >= 3, "not_after={not_after}");
    }

    #[test]
    fn repeated_titles_exist_for_min_year_task() {
        let d = generate(&DblpConfig::small());
        let mut per_title = std::collections::HashMap::<String, usize>::new();
        for &b in d.nodes_labeled("book") {
            if let Some(t) = d.element_children(b).find(|&c| d.label(c) == "title") {
                *per_title.entry(d.string_value(t)).or_default() += 1;
            }
        }
        assert!(per_title.values().any(|&c| c >= 2));
    }

    #[test]
    fn default_config_is_paper_scale() {
        let d = generate(&DblpConfig::default());
        let n = d.stats().total_nodes();
        // Paper: 73,142 nodes. Accept ±15%.
        assert!(
            (62_000..=84_000).contains(&n),
            "node count {n} outside paper-scale window"
        );
        assert_eq!(
            d.nodes_labeled("article").len(),
            2 * d.nodes_labeled("book").len()
        );
    }
}
