//! The W3C XMP `bib.xml` sample document.
//!
//! This is the bibliography used by the XQuery Use Cases "XMP" queries
//! that the paper's nine search tasks were adapted from. We embed the
//! sample verbatim (it is tiny) so examples and tests can exercise the
//! original XMP shapes — including `price`, which the paper's DBLP
//! adaptation replaced with `year`.

use crate::document::Document;

/// The XMP sample bibliography (four books, as published in the W3C
/// XQuery Use Cases working draft).
pub const BIB_XML: &str = r#"<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor><last>Gerbarg</last><first>Darcy</first><affiliation>CITI</affiliation></editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>"#;

/// Parse [`BIB_XML`] into a document.
pub fn bib() -> Document {
    // The embedded source is a compile-time constant; the fallback can
    // only trigger if it is edited into ill-formedness, which the
    // content tests below catch immediately.
    Document::parse_str(BIB_XML).unwrap_or_else(|_| Document::new("bib"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_books() {
        let d = bib();
        assert_eq!(d.nodes_labeled("book").len(), 4);
    }

    #[test]
    fn year_is_an_attribute() {
        let d = bib();
        let y = d.nodes_labeled("year")[0];
        assert!(d.node(y).is_attribute());
        assert_eq!(d.string_value(y), "1994");
    }

    #[test]
    fn suciu_is_an_author_last_name() {
        let d = bib();
        let found = d
            .nodes_labeled("last")
            .iter()
            .any(|&n| d.string_value(n) == "Suciu");
        assert!(found);
    }

    #[test]
    fn one_book_has_editor_with_affiliation() {
        let d = bib();
        assert_eq!(d.nodes_labeled("editor").len(), 1);
        assert_eq!(d.string_value(d.nodes_labeled("affiliation")[0]), "CITI");
    }

    #[test]
    fn two_addison_wesley_books() {
        let d = bib();
        let n = d
            .nodes_labeled("publisher")
            .iter()
            .filter(|&&p| d.string_value(p) == "Addison-Wesley")
            .count();
        assert_eq!(n, 2);
    }
}
