//! Node identity and the per-node *view* assembled from the columnar
//! arena.
//!
//! Since the struct-of-arrays refactor the store no longer keeps one
//! heap record per node: every field lives in its own contiguous column
//! (see the crate-private `arena` module). [`Node`] survives as a cheap
//! `Copy` façade —
//! [`crate::Document::node`] gathers the columns for one id into this
//! struct so existing call sites keep reading `n.kind`, `n.parent`,
//! `n.pre` … unchanged.

use crate::interner::Symbol;
use std::fmt;

/// Index of a node inside its [`crate::Document`] arena.
///
/// `NodeId`s are dense, allocated in construction order, and remain valid
/// for the life of the document (there is no node deletion — the store is
/// load-then-query, as in the paper's evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Error for a node index that does not fit the `u32` arena id space.
///
/// The arena addresses nodes with `u32`, which caps a document at
/// `u32::MAX - 1` nodes (the top value is reserved as the column nil
/// sentinel). The 100×-scale benchmark corpora reach several million
/// nodes — close enough to care that an overflow surfaces as a typed
/// error instead of a silently wrapped id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeIdOverflow {
    /// The index that did not fit.
    pub index: usize,
}

impl fmt::Display for NodeIdOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node index {} exceeds the u32 arena limit ({})",
            self.index,
            u32::MAX - 1
        )
    }
}

impl std::error::Error for NodeIdOverflow {}

impl NodeId {
    /// Raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw arena index. Intended for tests and for the
    /// datasets that mirror the paper's node numbering.
    ///
    /// # Panics
    /// Panics when `i` does not fit the `u32` id space — use
    /// [`NodeId::try_from_index`] to handle that case as a value.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        assert!(
            i < u32::MAX as usize,
            "node index {i} exceeds the u32 arena limit"
        );
        NodeId(i as u32)
    }

    /// Checked version of [`NodeId::from_index`]: a typed error instead
    /// of a truncated id when `i` does not fit.
    #[inline]
    pub fn try_from_index(i: usize) -> Result<Self, NodeIdOverflow> {
        if i < u32::MAX as usize {
            Ok(NodeId(i as u32))
        } else {
            Err(NodeIdOverflow { index: i })
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The three node kinds the store distinguishes.
///
/// Attributes are stored as children of their owning element (before any
/// element children), which lets the query engine treat elements and
/// attributes uniformly — exactly what Schema-Free XQuery's `mqf()`
/// needs ("we considered each element and attribute value as an
/// independent value", Sec. 5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An element node, e.g. `<movie>…</movie>`.
    Element,
    /// An attribute node, e.g. `year="2001"`.
    Attribute,
    /// A text node. Its label is the reserved `#text` symbol.
    Text,
}

/// A by-value view of one node, assembled from the arena columns.
///
/// Navigation pointers use the first-child/next-sibling representation;
/// `pre`, `post` and `depth` are filled in by [`crate::Document::finalize`]
/// and are `u32::MAX` before that. The view is `Copy` and borrows only
/// the text content (`value` points into the document's shared string
/// heap), so materialising one costs a handful of loads and no
/// allocation.
#[derive(Debug, Clone, Copy)]
pub struct Node<'a> {
    /// Element/attribute name, or the reserved `#text` symbol.
    pub label: Symbol,
    /// Node kind.
    pub kind: NodeKind,
    /// Text content for [`NodeKind::Text`] and [`NodeKind::Attribute`]
    /// nodes; `None` for elements (element values are derived — see
    /// [`crate::Document::string_value`]).
    pub value: Option<&'a str>,
    /// Parent node; `None` only for the root.
    pub parent: Option<NodeId>,
    /// First child in document order.
    pub first_child: Option<NodeId>,
    /// Last child in document order (makes appends O(1)).
    pub last_child: Option<NodeId>,
    /// Next sibling in document order.
    pub next_sibling: Option<NodeId>,
    /// Previous sibling in document order.
    pub prev_sibling: Option<NodeId>,
    /// Pre-order rank (document order). Set by `finalize`.
    pub pre: u32,
    /// Post-order rank. Set by `finalize`.
    pub post: u32,
    /// Distance from the root (root is 0). Set by `finalize`.
    pub depth: u32,
}

impl Node<'_> {
    /// True for element nodes.
    #[inline]
    pub fn is_element(&self) -> bool {
        self.kind == NodeKind::Element
    }

    /// True for attribute nodes.
    #[inline]
    pub fn is_attribute(&self) -> bool {
        self.kind == NodeKind::Attribute
    }

    /// True for text nodes.
    #[inline]
    pub fn is_text(&self) -> bool {
        self.kind == NodeKind::Text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
    }

    #[test]
    fn try_from_index_accepts_in_range() {
        assert_eq!(NodeId::try_from_index(7), Ok(NodeId::from_index(7)));
        // The largest admissible index: one below the nil sentinel.
        let top = (u32::MAX - 1) as usize;
        assert_eq!(NodeId::try_from_index(top), Ok(NodeId(u32::MAX - 1)));
    }

    #[test]
    fn try_from_index_rejects_overflow() {
        let too_big = u32::MAX as usize;
        let err = NodeId::try_from_index(too_big).unwrap_err();
        assert_eq!(err, NodeIdOverflow { index: too_big });
        assert!(err.to_string().contains("exceeds the u32 arena limit"));
        assert!(NodeId::try_from_index(usize::MAX).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 arena limit")]
    fn from_index_panics_on_overflow() {
        let _ = NodeId::from_index(u32::MAX as usize);
    }

    #[test]
    fn view_kind_predicates() {
        let mut i = crate::Interner::new();
        let n = Node {
            label: i.intern("movie"),
            kind: NodeKind::Element,
            value: None,
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
            pre: u32::MAX,
            post: u32::MAX,
            depth: u32::MAX,
        };
        assert!(n.is_element());
        assert!(!n.is_text());
        assert!(!n.is_attribute());
    }
}
