//! Node storage: the per-node record kept in the document arena.

use crate::interner::Symbol;
use std::fmt;

/// Index of a node inside its [`crate::Document`] arena.
///
/// `NodeId`s are dense, allocated in construction order, and remain valid
/// for the life of the document (there is no node deletion — the store is
/// load-then-query, as in the paper's evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw arena index. Intended for tests and for the
    /// datasets that mirror the paper's node numbering.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The three node kinds the store distinguishes.
///
/// Attributes are stored as children of their owning element (before any
/// element children), which lets the query engine treat elements and
/// attributes uniformly — exactly what Schema-Free XQuery's `mqf()`
/// needs ("we considered each element and attribute value as an
/// independent value", Sec. 5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An element node, e.g. `<movie>…</movie>`.
    Element,
    /// An attribute node, e.g. `year="2001"`.
    Attribute,
    /// A text node. Its label is the reserved `#text` symbol.
    Text,
}

/// One node of the document tree.
///
/// Navigation pointers use the first-child/next-sibling representation;
/// `pre`, `post` and `depth` are filled in by [`crate::Document::finalize`]
/// and are `u32::MAX` before that.
#[derive(Debug, Clone)]
pub struct Node {
    /// Element/attribute name, or the reserved `#text` symbol.
    pub label: Symbol,
    /// Node kind.
    pub kind: NodeKind,
    /// Text content for [`NodeKind::Text`] and [`NodeKind::Attribute`]
    /// nodes; `None` for elements (element values are derived — see
    /// [`crate::Document::string_value`]).
    pub value: Option<String>,
    /// Parent node; `None` only for the root.
    pub parent: Option<NodeId>,
    /// First child in document order.
    pub first_child: Option<NodeId>,
    /// Last child in document order (makes appends O(1)).
    pub last_child: Option<NodeId>,
    /// Next sibling in document order.
    pub next_sibling: Option<NodeId>,
    /// Previous sibling in document order.
    pub prev_sibling: Option<NodeId>,
    /// Pre-order rank (document order). Set by `finalize`.
    pub pre: u32,
    /// Post-order rank. Set by `finalize`.
    pub post: u32,
    /// Distance from the root (root is 0). Set by `finalize`.
    pub depth: u32,
}

impl Node {
    pub(crate) fn new(label: Symbol, kind: NodeKind, value: Option<String>) -> Self {
        Node {
            label,
            kind,
            value,
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
            pre: u32::MAX,
            post: u32::MAX,
            depth: u32::MAX,
        }
    }

    /// True for element nodes.
    #[inline]
    pub fn is_element(&self) -> bool {
        self.kind == NodeKind::Element
    }

    /// True for attribute nodes.
    #[inline]
    pub fn is_attribute(&self) -> bool {
        self.kind == NodeKind::Attribute
    }

    /// True for text nodes.
    #[inline]
    pub fn is_text(&self) -> bool {
        self.kind == NodeKind::Text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    #[test]
    fn new_node_has_unset_orders() {
        let mut i = Interner::new();
        let n = Node::new(i.intern("movie"), NodeKind::Element, None);
        assert_eq!(n.pre, u32::MAX);
        assert_eq!(n.post, u32::MAX);
        assert_eq!(n.depth, u32::MAX);
        assert!(n.is_element());
        assert!(!n.is_text());
        assert!(!n.is_attribute());
    }

    #[test]
    fn node_id_round_trips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
    }
}
