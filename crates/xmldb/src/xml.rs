//! XML text parsing and serialisation.
//!
//! A deliberately small but correct subset of XML 1.0: elements,
//! attributes, character data, the five predefined entities, CDATA
//! sections, comments and processing instructions (the latter two are
//! skipped). No DTDs, no namespaces — the evaluation corpora (DBLP
//! subset, XMP `bib.xml`, the movies example) need none of these.

use crate::document::Document;
use crate::node::{NodeId, NodeKind};
use std::fmt;

/// An error produced while parsing XML text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XmlError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError {
            offset: self.pos,
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Skip to the matching '>' (no internal subset support).
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        while self.pos < self.input.len() {
            if self.eat(end) {
                return Ok(());
            }
            self.pos += 1;
        }
        self.err(format!("unterminated construct, expected `{end}`"))
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ch = c as char;
            if ch.is_ascii_alphanumeric() || matches!(ch, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn decode_entities(&self, raw: &str, at: usize) -> Result<String, XmlError> {
        if !raw.contains('&') {
            return Ok(raw.to_owned());
        }
        let mut out = String::with_capacity(raw.len());
        let mut chars = raw.char_indices().peekable();
        while let Some((i, c)) = chars.next() {
            if c != '&' {
                out.push(c);
                continue;
            }
            let rest = &raw[i + 1..];
            let semi = rest.find(';').ok_or_else(|| XmlError {
                offset: at + i,
                message: "unterminated entity reference".into(),
            })?;
            let ent = &rest[..semi];
            let decoded = match ent {
                "amp" => '&',
                "lt" => '<',
                "gt" => '>',
                "quot" => '"',
                "apos" => '\'',
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let code = u32::from_str_radix(&ent[2..], 16).map_err(|_| XmlError {
                        offset: at + i,
                        message: format!("bad character reference `&{ent};`"),
                    })?;
                    char::from_u32(code).ok_or_else(|| XmlError {
                        offset: at + i,
                        message: format!("invalid code point in `&{ent};`"),
                    })?
                }
                _ if ent.starts_with('#') => {
                    let code: u32 = ent[1..].parse().map_err(|_| XmlError {
                        offset: at + i,
                        message: format!("bad character reference `&{ent};`"),
                    })?;
                    char::from_u32(code).ok_or_else(|| XmlError {
                        offset: at + i,
                        message: format!("invalid code point in `&{ent};`"),
                    })?
                }
                _ => {
                    return Err(XmlError {
                        offset: at + i,
                        message: format!("unknown entity `&{ent};`"),
                    })
                }
            };
            out.push(decoded);
            // Skip the entity body and the semicolon.
            for _ in 0..=semi {
                chars.next();
            }
        }
        Ok(out)
    }

    fn attribute_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected quoted attribute value"),
        };
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                return self.decode_entities(&raw, start);
            }
            if c == b'<' {
                return self.err("`<` not allowed in attribute value");
            }
            self.pos += 1;
        }
        self.err("unterminated attribute value")
    }

    /// Parse one element (cursor must sit on `<`). Appends under `parent`.
    fn element(&mut self, doc: &mut Document, parent: Option<NodeId>) -> Result<NodeId, XmlError> {
        if !self.eat("<") {
            return self.err("expected `<`");
        }
        let tag = self.name()?;
        let el = match parent {
            Some(p) => doc.add_element(p, &tag),
            None => {
                // The document was constructed with this root label by
                // the caller; just return the root.
                doc.root()
            }
        };
        // Attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    if self.eat("/>") {
                        return Ok(el);
                    }
                    return self.err("expected `/>`");
                }
                Some(_) => {
                    let aname = self.name()?;
                    self.skip_ws();
                    if !self.eat("=") {
                        return self.err("expected `=` after attribute name");
                    }
                    self.skip_ws();
                    let aval = self.attribute_value()?;
                    doc.add_attribute(el, &aname, &aval);
                }
                None => return self.err("unexpected end of input in tag"),
            }
        }
        // Content
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != tag {
                    return self.err(format!(
                        "mismatched close tag `</{close}>`, expected `</{tag}>`"
                    ));
                }
                self.skip_ws();
                if !self.eat(">") {
                    return self.err("expected `>` after close tag name");
                }
                return Ok(el);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                loop {
                    if self.starts_with("]]>") {
                        let text =
                            String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                        if !text.is_empty() {
                            doc.add_text(el, &text);
                        }
                        self.pos += 3;
                        break;
                    }
                    if self.pos >= self.input.len() {
                        return self.err("unterminated CDATA section");
                    }
                    self.pos += 1;
                }
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<") {
                self.element(doc, Some(el))?;
            } else if self.peek().is_none() {
                return self.err(format!("unexpected end of input inside `<{tag}>`"));
            } else {
                // character data
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                // Whitespace-only runs between elements are formatting
                // noise — but only when the author wrote *literal*
                // whitespace. A numeric character reference (`&#10;`,
                // `&#x9;`) is explicit content, so trim the raw run
                // before decoding: decoded whitespace at the edges
                // survives, literal indentation does not.
                let trimmed = raw.trim();
                if !trimmed.is_empty() {
                    let at = start + (raw.len() - raw.trim_start().len());
                    let text = self.decode_entities(trimmed, at)?;
                    doc.add_text(el, &text);
                }
            }
        }
    }
}

impl Document {
    /// Parse an XML document from text.
    pub fn parse_str(input: &str) -> Result<Document, XmlError> {
        let mut p = Parser::new(input);
        p.skip_misc()?;
        if p.peek() != Some(b'<') {
            return p.err("expected root element");
        }
        // Peek the root tag name to construct the document.
        let save = p.pos;
        p.pos += 1;
        let root_name = p.name()?;
        p.pos = save;
        let mut doc = Document::new(&root_name);
        p.element(&mut doc, None)?;
        p.skip_misc()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return p.err("trailing content after root element");
        }
        doc.finalize();
        Ok(doc)
    }

    /// Serialise the document (or the subtree under `id`) back to XML
    /// text with 2-space indentation.
    pub fn to_xml(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.write_node(id, 0, &mut out);
        out
    }

    fn write_node(&self, id: NodeId, indent: usize, out: &mut String) {
        let n = self.node(id);
        match n.kind {
            NodeKind::Text => {
                push_indent(out, indent);
                out.push_str(&escape_text(n.value.unwrap_or("")));
                out.push('\n');
            }
            NodeKind::Attribute => { /* written by the owning element */ }
            NodeKind::Element => {
                push_indent(out, indent);
                out.push('<');
                out.push_str(self.label(id));
                let mut kids = Vec::new();
                for c in self.children(id) {
                    match self.node(c).kind {
                        NodeKind::Attribute => {
                            out.push(' ');
                            out.push_str(self.label(c));
                            out.push_str("=\"");
                            out.push_str(&escape(self.node(c).value.unwrap_or("")));
                            out.push('"');
                        }
                        _ => kids.push(c),
                    }
                }
                if kids.is_empty() {
                    out.push_str("/>\n");
                    return;
                }
                // Single text child renders inline: <title>Traffic</title>
                if kids.len() == 1 && self.node(kids[0]).kind == NodeKind::Text {
                    out.push('>');
                    out.push_str(&escape_text(self.node(kids[0]).value.unwrap_or("")));
                    out.push_str("</");
                    out.push_str(self.label(id));
                    out.push_str(">\n");
                    return;
                }
                out.push_str(">\n");
                for k in kids {
                    self.write_node(k, indent + 1, out);
                }
                push_indent(out, indent);
                out.push_str("</");
                out.push_str(self.label(id));
                out.push_str(">\n");
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Escape the five predefined entities, plus control characters as
/// numeric character references (`\n` → `&#10;`) so text that begins
/// or ends with explicit whitespace survives a parse → serialise →
/// parse round trip (the parser treats *literal* edge whitespace as
/// formatting noise, but keeps referenced whitespace).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c if c.is_ascii_control() => {
                out.push_str("&#");
                out.push_str(&(c as u32).to_string());
                out.push(';');
            }
            _ => out.push(c),
        }
    }
    out
}

/// Escape *text-node* content: [`escape`], plus every leading and
/// trailing whitespace character as a numeric reference (`" padded "`
/// → `&#32;padded&#32;`). The parser treats literal edge whitespace of
/// a character-data run as formatting noise (it trims with
/// [`str::trim`], i.e. `char::is_whitespace`), so writer-produced edge
/// whitespace must travel as explicit references to survive the round
/// trip. Attribute values are quoted and never trimmed, so they keep
/// the plain escape.
fn escape_text(s: &str) -> String {
    let lead = s.len() - s.trim_start().len();
    let rest = &s[lead..];
    let trail = rest.len() - rest.trim_end().len();
    let mid = &rest[..rest.len() - trail];
    if lead == 0 && trail == 0 {
        return escape(s);
    }
    let mut out = String::with_capacity(s.len() + 4 * (lead + trail));
    for c in s[..lead].chars() {
        out.push_str("&#");
        out.push_str(&(c as u32).to_string());
        out.push(';');
    }
    out.push_str(&escape(mid));
    for c in rest[rest.len() - trail..].chars() {
        out.push_str("&#");
        out.push_str(&(c as u32).to_string());
        out.push(';');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let d = Document::parse_str("<a><b>hi</b></a>").unwrap();
        assert_eq!(d.label(d.root()), "a");
        assert_eq!(d.nodes_labeled("b").len(), 1);
        assert_eq!(d.string_value(d.nodes_labeled("b")[0]), "hi");
    }

    #[test]
    fn parses_attributes() {
        let d =
            Document::parse_str(r#"<bib><book year="1994"><title>T</title></book></bib>"#).unwrap();
        let y = d.nodes_labeled("year")[0];
        assert!(d.node(y).is_attribute());
        assert_eq!(d.string_value(y), "1994");
    }

    #[test]
    fn parses_self_closing() {
        let d = Document::parse_str(r#"<a><b x="1"/><c/></a>"#).unwrap();
        assert_eq!(d.nodes_labeled("b").len(), 1);
        assert_eq!(d.nodes_labeled("c").len(), 1);
        assert_eq!(d.string_value(d.nodes_labeled("x")[0]), "1");
    }

    #[test]
    fn decodes_entities() {
        let d = Document::parse_str("<a>Tom &amp; Jerry &lt;3 &#65;&#x42;</a>").unwrap();
        assert_eq!(d.string_value(d.root()), "Tom & Jerry <3 AB");
    }

    #[test]
    fn numeric_whitespace_references_survive() {
        // Decoded whitespace is content; only literal edge whitespace
        // is formatting noise.
        let d = Document::parse_str("<a>line&#10;break</a>").unwrap();
        assert_eq!(d.string_value(d.root()), "line\nbreak");

        let d = Document::parse_str("<a>&#10;indented</a>").unwrap();
        assert_eq!(d.string_value(d.root()), "\nindented");

        let d = Document::parse_str("<a>  &#9;tabbed  </a>").unwrap();
        assert_eq!(d.string_value(d.root()), "\ttabbed");

        // A reference that decodes to *only* whitespace is still kept.
        let d = Document::parse_str("<a>&#32;</a>").unwrap();
        assert_eq!(d.string_value(d.root()), " ");

        // ... but literal whitespace-only runs are still dropped.
        let d = Document::parse_str("<a>\n  <b>x</b>\n</a>").unwrap();
        assert_eq!(d.stats().text_nodes, 1);
    }

    #[test]
    fn hex_references_decode_beyond_ascii() {
        let d = Document::parse_str("<a>it&#x2019;s &#X2014; fine</a>").unwrap();
        assert_eq!(d.string_value(d.root()), "it\u{2019}s \u{2014} fine");
    }

    #[test]
    fn control_chars_round_trip_as_numeric_references() {
        let mut d = Document::new("a");
        let root = d.root();
        d.add_text(root, "first\nsecond\tend");
        d.finalize();
        let xml = d.to_xml(d.root());
        assert!(xml.contains("&#10;"), "{xml}");
        assert!(xml.contains("&#9;"), "{xml}");
        let d2 = Document::parse_str(&xml).unwrap();
        assert_eq!(d2.string_value(d2.root()), "first\nsecond\tend");
    }

    #[test]
    fn skips_prolog_comments_pis() {
        let d = Document::parse_str(
            "<?xml version=\"1.0\"?>\n<!-- c --><!DOCTYPE a>\n<a><!-- inner --><?pi x?><b/></a>",
        )
        .unwrap();
        assert_eq!(d.nodes_labeled("b").len(), 1);
    }

    #[test]
    fn cdata_is_literal() {
        let d = Document::parse_str("<a><![CDATA[x < y & z]]></a>").unwrap();
        assert_eq!(d.string_value(d.root()), "x < y & z");
    }

    #[test]
    fn rejects_mismatched_tags() {
        let e = Document::parse_str("<a><b></a></b>").unwrap_err();
        assert!(e.message.contains("mismatched"), "{e}");
    }

    #[test]
    fn rejects_trailing_content() {
        let e = Document::parse_str("<a/><b/>").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn rejects_unterminated() {
        assert!(Document::parse_str("<a><b>").is_err());
        assert!(Document::parse_str("<a b=>").is_err());
        assert!(Document::parse_str("<a b='x>").is_err());
    }

    #[test]
    fn rejects_unknown_entity() {
        let e = Document::parse_str("<a>&nope;</a>").unwrap_err();
        assert!(e.message.contains("unknown entity"), "{e}");
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let d = Document::parse_str("<a>\n  <b>x</b>\n  <c>y</c>\n</a>").unwrap();
        // only 2 text nodes (inside b and c)
        assert_eq!(d.stats().text_nodes, 2);
    }

    #[test]
    fn round_trip_through_serializer() {
        let src = r#"<bib><book year="1994"><title>TCP/IP &amp; more</title><author><last>Stevens</last></author></book></bib>"#;
        let d = Document::parse_str(src).unwrap();
        let xml = d.to_xml(d.root());
        let d2 = Document::parse_str(&xml).unwrap();
        assert_eq!(d.len(), d2.len());
        assert_eq!(
            d.string_value(d.nodes_labeled("title")[0]),
            d2.string_value(d2.nodes_labeled("title")[0])
        );
        assert_eq!(d2.string_value(d2.nodes_labeled("year")[0]), "1994");
    }

    #[test]
    fn escape_covers_all_five() {
        assert_eq!(escape(r#"<&>"'"#), "&lt;&amp;&gt;&quot;&apos;");
    }

    #[test]
    fn edge_spaces_round_trip_as_references() {
        let mut d = Document::new("a");
        let root = d.root();
        d.add_text(root, "  padded  ");
        d.finalize();
        let xml = d.to_xml(d.root());
        assert!(xml.contains("&#32;&#32;padded&#32;&#32;"), "{xml}");
        let d2 = Document::parse_str(&xml).unwrap();
        assert_eq!(d2.string_value(d2.root()), "  padded  ");
        // Interior spaces stay literal.
        let mut d = Document::new("a");
        let root = d.root();
        d.add_text(root, "no padding here");
        d.finalize();
        let xml = d.to_xml(d.root());
        assert!(xml.contains(">no padding here<"), "{xml}");
        // A whitespace-only value is entirely references.
        let mut d = Document::new("a");
        let root = d.root();
        d.add_text(root, "   ");
        d.finalize();
        let d2 = Document::parse_str(&d.to_xml(d.root())).unwrap();
        assert_eq!(d2.string_value(d2.root()), "   ");
    }

    #[test]
    fn writer_produced_nodes_escape_and_round_trip() {
        // Satellite regression: text inserted through the edit API —
        // never seen by the parser — must serialize with correct
        // escaping for `&`, `<`, control chars and edge whitespace.
        let d = Document::parse_str("<r><keep>x</keep></r>").unwrap();
        let mut up = d.begin_update().unwrap();
        let root = d.root();
        up.apply(&crate::Edit::InsertChild {
            parent: root,
            node: crate::NewNode::Leaf {
                label: "amp".into(),
                text: "Tom & Jerry <3".into(),
            },
        })
        .unwrap();
        up.apply(&crate::Edit::InsertChild {
            parent: root,
            node: crate::NewNode::Leaf {
                label: "ctrl".into(),
                text: "line\nbreak\ttab".into(),
            },
        })
        .unwrap();
        up.apply(&crate::Edit::InsertChild {
            parent: root,
            node: crate::NewNode::Leaf {
                label: "pad".into(),
                text: " spaced out ".into(),
            },
        })
        .unwrap();
        up.apply(&crate::Edit::InsertChild {
            parent: root,
            node: crate::NewNode::Attribute {
                name: "q".into(),
                value: "say \"hi\" & '<bye>'".into(),
            },
        })
        .unwrap();
        let (next, _) = up.commit();
        let xml = next.to_xml(next.root());
        assert!(xml.contains("Tom &amp; Jerry &lt;3"), "{xml}");
        assert!(xml.contains("line&#10;break&#9;tab"), "{xml}");
        assert!(xml.contains("&#32;spaced out&#32;"), "{xml}");
        assert!(
            xml.contains("q=\"say &quot;hi&quot; &amp; &apos;&lt;bye&gt;&apos;\""),
            "{xml}"
        );
        let oracle = Document::parse_str(&xml).unwrap();
        assert_eq!(
            oracle.string_value(oracle.nodes_labeled("amp")[0]),
            "Tom & Jerry <3"
        );
        assert_eq!(
            oracle.string_value(oracle.nodes_labeled("ctrl")[0]),
            "line\nbreak\ttab"
        );
        assert_eq!(
            oracle.string_value(oracle.nodes_labeled("pad")[0]),
            " spaced out "
        );
        assert_eq!(
            oracle.string_value(oracle.nodes_labeled("q")[0]),
            "say \"hi\" & '<bye>'"
        );
        assert_eq!(oracle.len(), next.stats().total_nodes());
    }

    #[test]
    fn mixed_content_preserved() {
        let d = Document::parse_str("<year>2000<movie><title>T</title></movie></year>").unwrap();
        assert_eq!(d.direct_text(d.root()), "2000");
        assert_eq!(d.nodes_labeled("movie").len(), 1);
    }
}
