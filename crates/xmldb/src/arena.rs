//! The columnar (struct-of-arrays) node store.
//!
//! Every per-node field lives in its own contiguous `Vec`, indexed by
//! the raw arena index of [`crate::NodeId`]:
//!
//! ```text
//!               idx:   0      1      2      3      …
//! labels            [ bib ][ book][title][#text]
//! kinds             [ Elem][ Elem][ Elem][ Text]
//! parent            [ nil ][  0  ][  1  ][  2  ]
//! first_child       [  1  ][  2  ][  3  ][ nil ]
//! last_child        [  1  ][  2  ][  3  ][ nil ]
//! next_sibling      [ nil ][ nil ][ nil ][ nil ]
//! prev_sibling      [ nil ][ nil ][ nil ][ nil ]
//! pre / post / depth  … assigned by finalize …
//! text_start/len    [ nil ][ nil ][ nil ][ 0,15] ──▶ heap "TCP/IP Illu…"
//! ```
//!
//! Why SoA instead of a `Vec<Node>` of ~90-byte records: the evaluation
//! hot loops — axis walks, value-index builds, `mqf()` candidate
//! probes — each touch *one or two* fields of *many* nodes. With
//! per-node structs every probe drags a whole cache line of unrelated
//! fields (and an `Option<String>` pointer chase for values); with
//! columns the same sweep reads 4-byte entries back to back, so the
//! prefetcher streams them and a cache line serves 16 nodes instead of
//! fewer than one. Text content is packed into one shared string heap
//! (`text_start`/`text_len` point into it), so values are `&str` slices
//! borrowed from the document instead of per-node allocations.
//!
//! Link columns use [`NIL`] (`u32::MAX`) as the *none* sentinel rather
//! than `Option<u32>`, keeping entries 4 bytes and branch-lean. The
//! [`crate::Node`] view re-wraps them as `Option<NodeId>` at the edge.

use crate::interner::Symbol;
use crate::node::{NodeId, NodeKind};

/// Column sentinel for "no node" / "no value".
pub(crate) const NIL: u32 = u32::MAX;

/// Wrap a raw column entry back into the `Option<NodeId>` the public
/// view exposes.
#[inline]
pub(crate) fn link(raw: u32) -> Option<NodeId> {
    if raw == NIL {
        None
    } else {
        Some(NodeId(raw))
    }
}

/// The struct-of-arrays node store behind [`crate::Document`].
///
/// All columns are always the same length (one entry per node); `push`
/// is the only way entries are created. Rank columns hold [`NIL`] until
/// [`crate::Document::finalize`] assigns them.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeArena {
    pub(crate) labels: Vec<Symbol>,
    pub(crate) kinds: Vec<NodeKind>,
    pub(crate) parent: Vec<u32>,
    pub(crate) first_child: Vec<u32>,
    pub(crate) last_child: Vec<u32>,
    pub(crate) next_sibling: Vec<u32>,
    pub(crate) prev_sibling: Vec<u32>,
    pub(crate) pre: Vec<u32>,
    pub(crate) post: Vec<u32>,
    pub(crate) depth: Vec<u32>,
    /// Byte offset of this node's text in `heap`; [`NIL`] for "no value"
    /// (all elements, and only elements — text and attribute nodes
    /// always carry a value, possibly empty).
    text_start: Vec<u32>,
    text_len: Vec<u32>,
    /// All text and attribute values, concatenated in push order.
    heap: String,
}

impl NodeArena {
    /// Number of nodes.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.labels.len()
    }

    /// Append a node; links unset, ranks unassigned.
    ///
    /// # Panics
    /// Panics when the arena or the string heap outgrows the u32 offset
    /// space (≈4 billion nodes / 4 GiB of text).
    pub(crate) fn push(&mut self, label: Symbol, kind: NodeKind, value: Option<&str>) -> NodeId {
        let id = NodeId::from_index(self.len());
        self.labels.push(label);
        self.kinds.push(kind);
        self.parent.push(NIL);
        self.first_child.push(NIL);
        self.last_child.push(NIL);
        self.next_sibling.push(NIL);
        self.prev_sibling.push(NIL);
        self.pre.push(NIL);
        self.post.push(NIL);
        self.depth.push(NIL);
        match value {
            Some(v) => {
                assert!(
                    self.heap.len() + v.len() < NIL as usize,
                    "string heap exceeds the u32 offset limit"
                );
                self.text_start.push(self.heap.len() as u32);
                self.text_len.push(v.len() as u32);
                self.heap.push_str(v);
            }
            None => {
                self.text_start.push(NIL);
                self.text_len.push(0);
            }
        }
        id
    }

    /// Link `child` as the last child of `parent`.
    pub(crate) fn attach(&mut self, parent: NodeId, child: NodeId) {
        let (p, c) = (parent.index(), child.index());
        self.parent[c] = parent.0;
        let last = self.last_child[p];
        if last == NIL {
            self.first_child[p] = child.0;
        } else {
            self.next_sibling[last as usize] = child.0;
            self.prev_sibling[c] = last;
        }
        self.last_child[p] = child.0;
    }

    /// Unlink `child` from its parent and sibling chain. The node (and
    /// its subtree, which stays internally linked) becomes unreachable
    /// from the root; its arena slot is not reclaimed.
    pub(crate) fn detach(&mut self, child: NodeId) {
        let c = child.index();
        let p = self.parent[c];
        let prev = self.prev_sibling[c];
        let next = self.next_sibling[c];
        if prev != NIL {
            self.next_sibling[prev as usize] = next;
        } else if p != NIL {
            self.first_child[p as usize] = next;
        }
        if next != NIL {
            self.prev_sibling[next as usize] = prev;
        } else if p != NIL {
            self.last_child[p as usize] = prev;
        }
        self.parent[c] = NIL;
        self.prev_sibling[c] = NIL;
        self.next_sibling[c] = NIL;
    }

    /// Link `node` as the sibling immediately following `after`.
    pub(crate) fn insert_after(&mut self, after: NodeId, node: NodeId) {
        let (a, c) = (after.index(), node.index());
        let p = self.parent[a];
        let next = self.next_sibling[a];
        self.parent[c] = p;
        self.prev_sibling[c] = after.0;
        self.next_sibling[c] = next;
        self.next_sibling[a] = node.0;
        if next != NIL {
            self.prev_sibling[next as usize] = node.0;
        } else if p != NIL {
            self.last_child[p as usize] = node.0;
        }
    }

    /// Link `node` as the first child of `parent`.
    pub(crate) fn insert_first_child(&mut self, parent: NodeId, node: NodeId) {
        let (p, c) = (parent.index(), node.index());
        let first = self.first_child[p];
        self.parent[c] = parent.0;
        self.next_sibling[c] = first;
        if first != NIL {
            self.prev_sibling[first as usize] = node.0;
        } else {
            self.last_child[p] = node.0;
        }
        self.first_child[p] = node.0;
    }

    /// Replace the stored text of node `i`. The new value is appended to
    /// the shared heap; the old bytes become unreferenced garbage (an
    /// acceptable cost for point edits — a full rebuild repacks the heap).
    ///
    /// # Panics
    /// Panics when the string heap outgrows the u32 offset space.
    pub(crate) fn set_value(&mut self, i: usize, value: &str) {
        assert!(
            self.heap.len() + value.len() < NIL as usize,
            "string heap exceeds the u32 offset limit"
        );
        self.text_start[i] = self.heap.len() as u32;
        self.text_len[i] = value.len() as u32;
        self.heap.push_str(value);
    }

    /// Overwrite the label of node `i`.
    #[inline]
    pub(crate) fn set_label(&mut self, i: usize, label: Symbol) {
        self.labels[i] = label;
    }

    /// The stored text of node `i`: `Some` for text and attribute
    /// nodes, `None` for elements. Borrowed from the shared heap.
    #[inline]
    pub(crate) fn value(&self, i: usize) -> Option<&str> {
        let start = self.text_start[i];
        if start == NIL {
            None
        } else {
            let s = start as usize;
            Some(&self.heap[s..s + self.text_len[i] as usize])
        }
    }

    /// Exact heap bytes held by the node columns (excluding the string
    /// heap; `Vec` over-allocation is not counted — this is the
    /// steady-state footprint a budget should reason about).
    pub(crate) fn column_bytes(&self) -> usize {
        let n = self.len();
        n * (std::mem::size_of::<Symbol>()
            + std::mem::size_of::<NodeKind>()
            + 10 * std::mem::size_of::<u32>())
    }

    /// Bytes of packed text content.
    #[inline]
    pub(crate) fn heap_bytes(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interner;

    #[test]
    fn push_and_value_round_trip() {
        let mut i = Interner::new();
        let mut a = NodeArena::default();
        let root = a.push(i.intern("r"), NodeKind::Element, None);
        let t1 = a.push(i.intern("#text"), NodeKind::Text, Some("hello"));
        let t2 = a.push(i.intern("#text"), NodeKind::Text, Some("world"));
        let empty = a.push(i.intern("#text"), NodeKind::Text, Some(""));
        assert_eq!(a.len(), 4);
        assert_eq!(a.value(root.index()), None);
        assert_eq!(a.value(t1.index()), Some("hello"));
        assert_eq!(a.value(t2.index()), Some("world"));
        assert_eq!(a.value(empty.index()), Some(""));
        assert_eq!(a.heap_bytes(), "helloworld".len());
    }

    #[test]
    fn attach_builds_sibling_chain() {
        let mut i = Interner::new();
        let mut a = NodeArena::default();
        let r = a.push(i.intern("r"), NodeKind::Element, None);
        let c1 = a.push(i.intern("a"), NodeKind::Element, None);
        let c2 = a.push(i.intern("b"), NodeKind::Element, None);
        a.attach(r, c1);
        a.attach(r, c2);
        assert_eq!(link(a.first_child[r.index()]), Some(c1));
        assert_eq!(link(a.last_child[r.index()]), Some(c2));
        assert_eq!(link(a.next_sibling[c1.index()]), Some(c2));
        assert_eq!(link(a.prev_sibling[c2.index()]), Some(c1));
        assert_eq!(link(a.parent[c2.index()]), Some(r));
        assert_eq!(link(a.next_sibling[c2.index()]), None);
    }

    #[test]
    fn detach_and_insert_relink_the_chain() {
        let mut i = Interner::new();
        let mut a = NodeArena::default();
        let r = a.push(i.intern("r"), NodeKind::Element, None);
        let c1 = a.push(i.intern("a"), NodeKind::Element, None);
        let c2 = a.push(i.intern("b"), NodeKind::Element, None);
        let c3 = a.push(i.intern("c"), NodeKind::Element, None);
        a.attach(r, c1);
        a.attach(r, c2);
        a.attach(r, c3);
        // Drop the middle child: a <-> c.
        a.detach(c2);
        assert_eq!(link(a.next_sibling[c1.index()]), Some(c3));
        assert_eq!(link(a.prev_sibling[c3.index()]), Some(c1));
        assert_eq!(link(a.parent[c2.index()]), None);
        assert_eq!(link(a.next_sibling[c2.index()]), None);
        // Re-insert after the first: a <-> b <-> c.
        a.insert_after(c1, c2);
        assert_eq!(link(a.next_sibling[c1.index()]), Some(c2));
        assert_eq!(link(a.next_sibling[c2.index()]), Some(c3));
        assert_eq!(link(a.parent[c2.index()]), Some(r));
        // Detach the head and tail; the chain shrinks to [b].
        a.detach(c1);
        a.detach(c3);
        assert_eq!(link(a.first_child[r.index()]), Some(c2));
        assert_eq!(link(a.last_child[r.index()]), Some(c2));
        // First-child insertion puts a back in front.
        a.insert_first_child(r, c1);
        assert_eq!(link(a.first_child[r.index()]), Some(c1));
        assert_eq!(link(a.next_sibling[c1.index()]), Some(c2));
        assert_eq!(link(a.prev_sibling[c2.index()]), Some(c1));
    }

    #[test]
    fn insert_first_child_into_empty_parent() {
        let mut i = Interner::new();
        let mut a = NodeArena::default();
        let r = a.push(i.intern("r"), NodeKind::Element, None);
        let c = a.push(i.intern("a"), NodeKind::Element, None);
        a.insert_first_child(r, c);
        assert_eq!(link(a.first_child[r.index()]), Some(c));
        assert_eq!(link(a.last_child[r.index()]), Some(c));
        assert_eq!(link(a.parent[c.index()]), Some(r));
    }

    #[test]
    fn set_value_appends_to_heap() {
        let mut i = Interner::new();
        let mut a = NodeArena::default();
        let t = a.push(i.intern("#text"), NodeKind::Text, Some("old"));
        a.set_value(t.index(), "brand new");
        assert_eq!(a.value(t.index()), Some("brand new"));
        // Old bytes remain in the heap (garbage until a rebuild repacks).
        assert_eq!(a.heap_bytes(), "old".len() + "brand new".len());
    }

    #[test]
    fn column_bytes_grow_linearly() {
        let mut i = Interner::new();
        let mut a = NodeArena::default();
        let per_node = {
            a.push(i.intern("x"), NodeKind::Element, None);
            a.column_bytes()
        };
        a.push(i.intern("x"), NodeKind::Element, None);
        assert_eq!(a.column_bytes(), 2 * per_node);
    }
}
