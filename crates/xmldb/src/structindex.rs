//! Precomputed structural index: constant-time LCA and logarithmic
//! level-ancestor queries over a finalized document.
//!
//! The MLCA predicate (crate `xquery`) asks two questions per candidate
//! pair: *what is the lowest common ancestor of `a` and `b`?* and *which
//! child of that LCA leads down to each node?* With parent-pointer walks
//! both are O(depth); on the bushy-but-deep documents the generators
//! produce that is the dominant cost of query evaluation. This module
//! trades O(n log n) space, built once in [`crate::Document::finalize`],
//! for:
//!
//! - **LCA in O(1)** — the classic Euler-tour reduction to range-minimum:
//!   record every node each time the tour enters or returns to it (2n−1
//!   entries), then the LCA of `a` and `b` is the minimum-depth entry
//!   between their first occurrences, answered by a sparse table.
//! - **Level ancestor in O(log n)** — binary lifting: `up[k][v]` is the
//!   2^k-th ancestor of `v`, so the ancestor of `v` at any target depth
//!   is reached by jumping along the binary expansion of the depth
//!   difference. This gives `child_toward(anc, desc)` — the child of
//!   `anc` on the path to `desc` — as a single level-ancestor query.
//! - **Subtree extent in O(1)** — the largest pre-order rank inside each
//!   node's subtree, replacing the walk-to-next-sibling scan behind the
//!   label-count primitives.
//!
//! The index holds only plain `Vec<u32>` tables, so it is `Send + Sync`
//! for free and clones with the document.

use crate::node::{Node, NodeId};

/// Euler-tour + sparse-table RMQ + binary-lifting tables for one
/// finalized document. Node identity is the arena index (`NodeId.0`).
#[derive(Debug, Clone)]
pub(crate) struct StructIndex {
    /// Euler tour: arena index of the node at each tour step (2n−1 long).
    euler: Vec<u32>,
    /// Depth of `euler[i]` — the array the RMQ minimises over.
    euler_depth: Vec<u32>,
    /// First tour position of each node; `u32::MAX` for unattached nodes.
    first: Vec<u32>,
    /// `sparse[k][i]`: tour position of the minimum-depth entry in the
    /// window `[i, i + 2^k)`.
    sparse: Vec<Vec<u32>>,
    /// `up[k][v]`: arena index of the 2^k-th ancestor of `v` (saturates
    /// at the root).
    up: Vec<Vec<u32>>,
    /// Depth of each node, copied so queries need not consult the arena.
    depth: Vec<u32>,
    /// Largest pre-order rank inside each node's subtree (inclusive).
    subtree_hi: Vec<u32>,
}

impl StructIndex {
    /// Build the index. `nodes` must already carry pre ranks and depths
    /// (i.e. the rank-assignment phase of `finalize` has run).
    pub(crate) fn build(nodes: &[Node], root: NodeId) -> StructIndex {
        let n = nodes.len();
        let mut euler = Vec::with_capacity(2 * n);
        let mut euler_depth = Vec::with_capacity(2 * n);
        let mut first = vec![u32::MAX; n];
        let mut depth = vec![0u32; n];
        for (i, node) in nodes.iter().enumerate() {
            depth[i] = node.depth;
        }

        // Euler tour: record a node on entry and again after each child's
        // subtree. Iterative, so arbitrarily deep documents are fine.
        enum Step {
            Enter(u32),
            Revisit(u32),
        }
        let mut stack = vec![Step::Enter(root.index() as u32)];
        while let Some(step) = stack.pop() {
            let v = match step {
                Step::Enter(v) => {
                    first[v as usize] = euler.len() as u32;
                    // Schedule children interleaved with revisits of `v`:
                    // tour(v) = v, tour(c1), v, tour(c2), v, …
                    let mut kids = Vec::new();
                    let mut c = nodes[v as usize].first_child;
                    while let Some(cid) = c {
                        kids.push(cid.index() as u32);
                        c = nodes[cid.index()].next_sibling;
                    }
                    for &k in kids.iter().rev() {
                        stack.push(Step::Revisit(v));
                        stack.push(Step::Enter(k));
                    }
                    v
                }
                Step::Revisit(v) => v,
            };
            euler.push(v);
            euler_depth.push(depth[v as usize]);
        }

        // Sparse table over the tour depths.
        let m = euler.len();
        let levels = usize::BITS as usize - m.leading_zeros() as usize; // floor(log2 m)+1
        let mut sparse: Vec<Vec<u32>> = Vec::with_capacity(levels);
        sparse.push((0..m as u32).collect());
        let mut k = 1;
        while (1usize << k) <= m {
            let half = 1usize << (k - 1);
            let prev = &sparse[k - 1];
            let row: Vec<u32> = (0..=m - (1 << k))
                .map(|i| {
                    let a = prev[i];
                    let b = prev[i + half];
                    if euler_depth[a as usize] <= euler_depth[b as usize] {
                        a
                    } else {
                        b
                    }
                })
                .collect();
            sparse.push(row);
            k += 1;
        }

        // Binary-lifting ancestor table. The root points at itself, so
        // over-long jumps saturate instead of needing bounds checks.
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let lift_levels = (u32::BITS - max_depth.leading_zeros()).max(1) as usize;
        let mut up: Vec<Vec<u32>> = Vec::with_capacity(lift_levels);
        let base: Vec<u32> = (0..n)
            .map(|i| match nodes[i].parent {
                Some(p) => p.index() as u32,
                None => i as u32,
            })
            .collect();
        up.push(base);
        for k in 1..lift_levels {
            let prev = &up[k - 1];
            let row: Vec<u32> = (0..n).map(|i| prev[prev[i] as usize]).collect();
            up.push(row);
        }

        // Subtree extents: processing nodes by descending pre-order rank
        // handles children before parents, and a node's subtree ends
        // where its last child's does.
        let mut by_pre: Vec<u32> = (0..n as u32)
            .filter(|&i| nodes[i as usize].pre != u32::MAX)
            .collect();
        by_pre.sort_unstable_by_key(|&i| std::cmp::Reverse(nodes[i as usize].pre));
        let mut subtree_hi = vec![u32::MAX; n];
        for &i in &by_pre {
            subtree_hi[i as usize] = match nodes[i as usize].last_child {
                Some(c) => subtree_hi[c.index()],
                None => nodes[i as usize].pre,
            };
        }

        StructIndex {
            euler,
            euler_depth,
            first,
            sparse,
            up,
            depth,
            subtree_hi,
        }
    }

    /// Tour position of the minimum-depth entry in `[l, r]` (inclusive).
    #[inline]
    fn rmq(&self, l: usize, r: usize) -> usize {
        debug_assert!(l <= r && r < self.euler.len());
        let k = (usize::BITS - 1 - (r - l + 1).leading_zeros()) as usize;
        let a = self.sparse[k][l];
        let b = self.sparse[k][r + 1 - (1 << k)];
        if self.euler_depth[a as usize] <= self.euler_depth[b as usize] {
            a as usize
        } else {
            b as usize
        }
    }

    /// Lowest common ancestor of two (attached) nodes, O(1).
    #[inline]
    pub(crate) fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut l, mut r) = (
            self.first[a.index()] as usize,
            self.first[b.index()] as usize,
        );
        debug_assert!(
            l != u32::MAX as usize && r != u32::MAX as usize,
            "lca of unattached node"
        );
        if l > r {
            std::mem::swap(&mut l, &mut r);
        }
        NodeId(self.euler[self.rmq(l, r)])
    }

    /// The ancestor of `v` at depth `target` (which must not exceed the
    /// depth of `v`); `v` itself when the depths match. O(log depth).
    #[inline]
    pub(crate) fn ancestor_at_depth(&self, v: NodeId, target: u32) -> NodeId {
        let mut cur = v.index() as u32;
        debug_assert!(target <= self.depth[cur as usize]);
        let mut steps = self.depth[cur as usize] - target;
        let mut k = 0;
        while steps != 0 {
            if steps & 1 == 1 {
                cur = self.up[k][cur as usize];
            }
            steps >>= 1;
            k += 1;
        }
        NodeId(cur)
    }

    /// Largest pre-order rank inside the subtree of `v`, O(1).
    #[inline]
    pub(crate) fn subtree_hi(&self, v: NodeId) -> u32 {
        self.subtree_hi[v.index()]
    }

    /// Depth of `v` as recorded at build time.
    #[inline]
    pub(crate) fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }
}
