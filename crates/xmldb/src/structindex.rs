//! Precomputed structural index: constant-time LCA and logarithmic
//! level-ancestor queries over a finalized document.
//!
//! The MLCA predicate (crate `xquery`) asks two questions per candidate
//! pair: *what is the lowest common ancestor of `a` and `b`?* and *which
//! child of that LCA leads down to each node?* With parent-pointer walks
//! both are O(depth); on the bushy-but-deep documents the generators
//! produce that is the dominant cost of query evaluation. This module
//! trades O(n) space, built once in [`crate::Document::finalize`],
//! for:
//!
//! - **LCA in O(1)** — the classic Euler-tour reduction to range-minimum:
//!   record every node each time the tour enters or returns to it (2n−1
//!   entries), then the LCA of `a` and `b` is the minimum-depth entry
//!   between their first occurrences. The RMQ is block-decomposed: the
//!   tour is cut into fixed-size blocks, a sparse table answers the
//!   block-interior span, and the two boundary blocks are scanned
//!   directly (≤ 2·`BLOCK` sequential `u32` reads — cache-resident).
//!   That keeps the table at O(n/B · log(n/B)) words instead of the
//!   O(n log n) of a full sparse table, which at the 100×-scale corpus
//!   is the difference between ~45 MB and ~1.5 GB of index.
//! - **Level ancestor in O(log n)** — binary lifting: `up[k][v]` is the
//!   2^k-th ancestor of `v`, so the ancestor of `v` at any target depth
//!   is reached by jumping along the binary expansion of the depth
//!   difference. This gives `child_toward(anc, desc)` — the child of
//!   `anc` on the path to `desc` — as a single level-ancestor query.
//! - **Subtree extent in O(1)** — the largest pre-order rank inside each
//!   node's subtree, replacing the walk-to-next-sibling scan behind the
//!   label-count primitives.
//!
//! The index holds only plain `Vec<u32>` tables, so it is `Send + Sync`
//! for free and clones with the document.

use crate::arena::{NodeArena, NIL};
use crate::node::NodeId;

/// Euler-tour RMQ block size: boundary scans touch at most `2 * BLOCK`
/// consecutive depth words (4 cache lines each) while the sparse table
/// shrinks by a factor of `BLOCK`.
const BLOCK: usize = 32;

/// Euler-tour + sparse-table RMQ + binary-lifting tables for one
/// finalized document. Node identity is the arena index (`NodeId.0`).
#[derive(Debug, Clone)]
pub(crate) struct StructIndex {
    /// Euler tour: arena index of the node at each tour step (2n−1 long).
    euler: Vec<u32>,
    /// Depth of `euler[i]` — the array the RMQ minimises over.
    euler_depth: Vec<u32>,
    /// First tour position of each node; `u32::MAX` for unattached nodes.
    first: Vec<u32>,
    /// Tour position of the minimum-depth entry inside each block of
    /// `BLOCK` consecutive tour steps.
    block_min: Vec<u32>,
    /// `sparse[k][j]`: tour position of the minimum-depth entry across
    /// the block window `[j, j + 2^k)`.
    sparse: Vec<Vec<u32>>,
    /// `up[k][v]`: arena index of the 2^k-th ancestor of `v` (saturates
    /// at the root).
    up: Vec<Vec<u32>>,
    /// Depth of each node, copied so queries need not consult the arena.
    depth: Vec<u32>,
    /// Largest pre-order rank inside each node's subtree (inclusive).
    subtree_hi: Vec<u32>,
}

/// Block minima and the block-level sparse table over one Euler-tour
/// depth array. Shared by the from-scratch build and the patch path.
fn rmq_tables(euler_depth: &[u32]) -> (Vec<u32>, Vec<Vec<u32>>) {
    let m = euler_depth.len();
    let nb = m.div_ceil(BLOCK);
    let block_min: Vec<u32> = (0..nb)
        .map(|j| {
            let lo = j * BLOCK;
            let hi = (lo + BLOCK).min(m);
            let mut best = lo;
            for i in lo + 1..hi {
                if euler_depth[i] < euler_depth[best] {
                    best = i;
                }
            }
            best as u32
        })
        .collect();
    let levels = (usize::BITS as usize - nb.leading_zeros() as usize).max(1);
    let mut sparse: Vec<Vec<u32>> = Vec::with_capacity(levels);
    sparse.push(block_min.clone());
    let mut k = 1;
    while (1usize << k) <= nb {
        let half = 1usize << (k - 1);
        let prev = &sparse[k - 1];
        let row: Vec<u32> = (0..=nb - (1 << k))
            .map(|j| {
                let a = prev[j];
                let b = prev[j + half];
                if euler_depth[a as usize] <= euler_depth[b as usize] {
                    a
                } else {
                    b
                }
            })
            .collect();
        sparse.push(row);
        k += 1;
    }
    (block_min, sparse)
}

impl StructIndex {
    /// Build the index. The arena must already carry pre ranks and depths
    /// (i.e. the rank-assignment phase of `finalize` has run).
    pub(crate) fn build(arena: &NodeArena, root: NodeId) -> StructIndex {
        let n = arena.len();
        let mut euler = Vec::with_capacity(2 * n);
        let mut euler_depth = Vec::with_capacity(2 * n);
        let mut first = vec![u32::MAX; n];
        let depth = arena.depth.clone();

        // Euler tour: record a node on entry and again after each child's
        // subtree. Iterative, so arbitrarily deep documents are fine.
        enum Step {
            Enter(u32),
            Revisit(u32),
        }
        let mut stack = vec![Step::Enter(root.index() as u32)];
        while let Some(step) = stack.pop() {
            let v = match step {
                Step::Enter(v) => {
                    first[v as usize] = euler.len() as u32;
                    // Schedule children interleaved with revisits of `v`:
                    // tour(v) = v, tour(c1), v, tour(c2), v, …
                    let mut kids = Vec::new();
                    let mut c = arena.first_child[v as usize];
                    while c != NIL {
                        kids.push(c);
                        c = arena.next_sibling[c as usize];
                    }
                    for &k in kids.iter().rev() {
                        stack.push(Step::Revisit(v));
                        stack.push(Step::Enter(k));
                    }
                    v
                }
                Step::Revisit(v) => v,
            };
            euler.push(v);
            euler_depth.push(depth[v as usize]);
        }

        // Block minima over the tour depths, then a sparse table over
        // the blocks — linear space, with boundary blocks scanned at
        // query time.
        let (block_min, sparse) = rmq_tables(&euler_depth);

        // Binary-lifting ancestor table. The root points at itself, so
        // over-long jumps saturate instead of needing bounds checks.
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let lift_levels = (u32::BITS - max_depth.leading_zeros()).max(1) as usize;
        let mut up: Vec<Vec<u32>> = Vec::with_capacity(lift_levels);
        let base: Vec<u32> = (0..n)
            .map(|i| match arena.parent[i] {
                NIL => i as u32,
                p => p,
            })
            .collect();
        up.push(base);
        for k in 1..lift_levels {
            let prev = &up[k - 1];
            let row: Vec<u32> = (0..n).map(|i| prev[prev[i] as usize]).collect();
            up.push(row);
        }

        // Subtree extents: processing nodes by descending pre-order rank
        // handles children before parents, and a node's subtree ends
        // where its last child's does.
        let mut by_pre: Vec<u32> = (0..n as u32)
            .filter(|&i| arena.pre[i as usize] != u32::MAX)
            .collect();
        by_pre.sort_unstable_by_key(|&i| std::cmp::Reverse(arena.pre[i as usize]));
        let mut subtree_hi = vec![u32::MAX; n];
        for &i in &by_pre {
            subtree_hi[i as usize] = match arena.last_child[i as usize] {
                NIL => arena.pre[i as usize],
                c => subtree_hi[c as usize],
            };
        }

        StructIndex {
            euler,
            euler_depth,
            first,
            block_min,
            sparse,
            up,
            depth,
            subtree_hi,
        }
    }

    /// Patch path: rebuild the index from an already-computed document
    /// order, reusing the survivor rows of the prior index instead of
    /// walking child links.
    ///
    /// Requirements: `arena.pre` matches `order` (`pre[order[r]] == r`),
    /// `arena.depth` is correct for every node in `order`, and every
    /// arena index `>= prior.up[0].len()` is a newly appended node.
    /// Because the edit API never *moves* a node, the parent of every
    /// survivor is unchanged, so the prior binary-lifting rows stay
    /// valid verbatim and only rows for appended nodes are computed.
    /// A single stack pass over the order/depth pair derives the Euler
    /// tour, first occurrences, subtree extents, and post-order ranks
    /// (written back into `arena.post`) in one sweep — no per-node
    /// child-list allocation, no pre-rank sort.
    pub(crate) fn from_order(arena: &mut NodeArena, order: &[u32], prior: &StructIndex) -> Self {
        let n = arena.len();
        let live = order.len();
        let mut euler = Vec::with_capacity(2 * live);
        let mut euler_depth: Vec<u32> = Vec::with_capacity(2 * live);
        let mut first = vec![u32::MAX; n];
        let mut subtree_hi = vec![u32::MAX; n];
        // Pre-order with depths is a complete tree encoding: a node's
        // subtree ends right before the next node at its depth or
        // shallower. Closing a node appends a revisit of its parent to
        // the tour and assigns its post rank (pops cascade bottom-up,
        // which is exactly post order).
        let mut stack: Vec<u32> = Vec::new();
        let mut post = 0u32;
        for (rank, &v) in order.iter().enumerate() {
            let dv = arena.depth[v as usize];
            while let Some(&top) = stack.last() {
                let tu = top as usize;
                if arena.depth[tu] < dv {
                    break;
                }
                stack.pop();
                arena.post[tu] = post;
                post += 1;
                subtree_hi[tu] = (rank - 1) as u32;
                if let Some(&p) = stack.last() {
                    euler.push(p);
                    euler_depth.push(arena.depth[p as usize]);
                }
            }
            first[v as usize] = euler.len() as u32;
            euler.push(v);
            euler_depth.push(dv);
            stack.push(v);
        }
        while let Some(top) = stack.pop() {
            let tu = top as usize;
            arena.post[tu] = post;
            post += 1;
            subtree_hi[tu] = (live - 1) as u32;
            if let Some(&p) = stack.last() {
                euler.push(p);
                euler_depth.push(arena.depth[p as usize]);
            }
        }
        debug_assert_eq!(euler.len(), 2 * live - 1);

        let (block_min, sparse) = rmq_tables(&euler_depth);

        // Extend the lifting table: survivor entries are reused, rows
        // grow only over the appended tail, and new levels are added
        // only if an insertion deepened the tree past the old maximum.
        let mut up = prior.up.clone();
        let old_n = up.first().map_or(0, Vec::len);
        for k in 0..up.len() {
            if k == 0 {
                let row = &mut up[0];
                for i in old_n..n {
                    row.push(match arena.parent[i] {
                        NIL => i as u32,
                        p => p,
                    });
                }
            } else {
                let (head, tail) = up.split_at_mut(k);
                let prev = &head[k - 1];
                let row = &mut tail[0];
                for i in old_n..n {
                    row.push(prev[prev[i] as usize]);
                }
            }
        }
        let max_new_depth = (old_n..n).map(|i| arena.depth[i]).max().unwrap_or(0);
        let needed = ((u32::BITS - max_new_depth.leading_zeros()).max(1) as usize).max(up.len());
        while up.len() < needed {
            let prev = &up[up.len() - 1];
            let row: Vec<u32> = (0..n).map(|i| prev[prev[i] as usize]).collect();
            up.push(row);
        }

        StructIndex {
            euler,
            euler_depth,
            first,
            block_min,
            sparse,
            up,
            depth: arena.depth.clone(),
            subtree_hi,
        }
    }

    /// Position of the minimum-depth tour entry in `[l, r]`, both
    /// inside one block — a short sequential scan.
    #[inline]
    fn scan_min(&self, l: usize, r: usize) -> usize {
        let mut best = l;
        for i in l + 1..=r {
            if self.euler_depth[i] < self.euler_depth[best] {
                best = i;
            }
        }
        best
    }

    /// Tour position of the minimum-depth entry in `[l, r]` (inclusive):
    /// boundary blocks by scan, the interior by the block sparse table.
    /// Any minimum-depth position is equally valid for LCA — every
    /// entry at that depth between two first occurrences is the same
    /// node.
    #[inline]
    fn rmq(&self, l: usize, r: usize) -> usize {
        debug_assert!(l <= r && r < self.euler.len());
        let (bl, br) = (l / BLOCK, r / BLOCK);
        if bl == br {
            return self.scan_min(l, r);
        }
        let left = self.scan_min(l, (bl + 1) * BLOCK - 1);
        let right = self.scan_min(br * BLOCK, r);
        let mut best = if self.euler_depth[left] <= self.euler_depth[right] {
            left
        } else {
            right
        };
        let (lo, hi) = (bl + 1, br); // interior block window [lo, hi)
        if lo < hi {
            let k = (usize::BITS - 1 - (hi - lo).leading_zeros()) as usize;
            let a = self.sparse[k][lo] as usize;
            let b = self.sparse[k][hi - (1 << k)] as usize;
            for cand in [a, b] {
                if self.euler_depth[cand] < self.euler_depth[best] {
                    best = cand;
                }
            }
        }
        best
    }

    /// Lowest common ancestor of two (attached) nodes, O(1).
    #[inline]
    pub(crate) fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut l, mut r) = (
            self.first[a.index()] as usize,
            self.first[b.index()] as usize,
        );
        debug_assert!(
            l != u32::MAX as usize && r != u32::MAX as usize,
            "lca of unattached node"
        );
        if l > r {
            std::mem::swap(&mut l, &mut r);
        }
        NodeId(self.euler[self.rmq(l, r)])
    }

    /// The ancestor of `v` at depth `target` (which must not exceed the
    /// depth of `v`); `v` itself when the depths match. O(log depth).
    #[inline]
    pub(crate) fn ancestor_at_depth(&self, v: NodeId, target: u32) -> NodeId {
        let mut cur = v.index() as u32;
        debug_assert!(target <= self.depth[cur as usize]);
        let mut steps = self.depth[cur as usize] - target;
        let mut k = 0;
        while steps != 0 {
            if steps & 1 == 1 {
                cur = self.up[k][cur as usize];
            }
            steps >>= 1;
            k += 1;
        }
        NodeId(cur)
    }

    /// Largest pre-order rank inside the subtree of `v`, O(1).
    #[inline]
    pub(crate) fn subtree_hi(&self, v: NodeId) -> u32 {
        self.subtree_hi[v.index()]
    }

    /// Depth of `v` as recorded at build time.
    #[inline]
    pub(crate) fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// Bytes held by the index tables (for memory accounting).
    pub(crate) fn bytes(&self) -> usize {
        let u = std::mem::size_of::<u32>();
        (self.euler.len()
            + self.euler_depth.len()
            + self.first.len()
            + self.block_min.len()
            + self.sparse.iter().map(Vec::len).sum::<usize>()
            + self.up.iter().map(Vec::len).sum::<usize>()
            + self.depth.len()
            + self.subtree_hi.len())
            * u
    }
}
