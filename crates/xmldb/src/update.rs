//! Node-level updates with epoch-batched incremental index maintenance.
//!
//! The write path of the database. Every document in the system is an
//! immutable snapshot that readers pin (`Arc<Document>`); writes never
//! touch a published snapshot. Instead, [`Document::begin_update`]
//! clones the document — a column-level memcpy of the arena, cheap
//! relative to a re-parse — into a [`PendingUpdate`] *overlay*, edits
//! accumulate against the clone, and [`PendingUpdate::commit`] folds
//! the overlay into a successor snapshot in one step. The store swaps
//! the successor in and bumps the generation counter, exactly the hot
//! reload lifecycle, so in-flight readers keep snapshot isolation for
//! free.
//!
//! ## The edit algebra
//!
//! [`Edit`] offers five operations: [`Edit::InsertChild`],
//! [`Edit::InsertSibling`], [`Edit::DeleteSubtree`],
//! [`Edit::ReplaceValue`] and [`Edit::RenameLabel`]. Deliberately
//! absent: *move*. Because no node ever changes its position relative
//! to other surviving nodes, three invariants hold that the whole
//! incremental path is built on:
//!
//! 1. survivors keep their relative document order, so the new order
//!    table is a *splice* of the old one (copy, skip deleted ranges,
//!    emit inserted subtrees at their anchors) — no re-traversal;
//! 2. a deleted subtree is a contiguous range of *old* pre ranks, so
//!    deletions are range skips;
//! 3. survivors keep their parents and depths, so the binary-lifting
//!    ancestor table of the prior index stays valid row-for-row and
//!    only grows a tail for appended nodes.
//!
//! ## Commit strategies
//!
//! [`PendingUpdate::commit`] picks between two strategies, visible to
//! callers through [`UpdateStats::strategy`] (the store reports them
//! as distinct `index_patch` / `index_rebuild` spans):
//!
//! - [`CommitStrategy::Patch`] — the incremental path: splice the
//!   order table, then derive the Euler tour, first occurrences,
//!   subtree extents *and* post ranks in a single stack pass over the
//!   spliced order (pre-order plus depths is a complete tree
//!   encoding), rebuild only the linear RMQ block tables, extend the
//!   lifting table, and refill the label postings in one pass. No
//!   re-parse, no link-chasing DFS, and the catalog/value-index layers
//!   above receive a [`ValueOp`] delta plus a dirty-label set instead
//!   of rebuilding from scratch.
//! - [`CommitStrategy::Rebuild`] — when an edit batch touches more
//!   than a quarter of the live nodes the bookkeeping outweighs the
//!   saving; commit falls back to re-running finalization over the
//!   mutated links (still no re-parse).
//!
//! Arena slots of deleted nodes are *not* reclaimed — they are
//! unreachable, rank-cleared, and excluded from every index; the next
//! full rebuild (or reload) repacks. This is the classic
//! space-for-incrementality trade.
//!
//! ## Correctness contract
//!
//! After `commit`, the successor document must be *behaviorally
//! identical* to a from-scratch build of the mutated XML: every query,
//! axis walk, LCA probe and index lookup agrees. The differential
//! property test (`tests/update_differential.rs` at the workspace
//! root) enforces this against the serialize→reparse oracle.

use std::collections::HashSet;
use std::fmt;

use crate::arena::NIL;
use crate::document::{Document, TEXT_LABEL};
use crate::interner::Symbol;
use crate::node::{NodeId, NodeKind};

/// One node-level edit against a pending update's overlay.
///
/// Node identifiers refer to the snapshot the update was begun from
/// (they are stable across edits — slots are never reused) or to nodes
/// returned by earlier [`PendingUpdate::apply`] calls in the same
/// batch, which is how nested structures are built up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Append `node` as the last child of `parent` (attribute nodes are
    /// placed after the last existing attribute instead, keeping the
    /// attributes-first invariant the parser establishes).
    InsertChild {
        /// The element to insert under.
        parent: NodeId,
        /// What to insert.
        node: NewNode,
    },
    /// Insert `node` as the sibling immediately following `after`.
    InsertSibling {
        /// The reference sibling (must not be the root).
        after: NodeId,
        /// What to insert.
        node: NewNode,
    },
    /// Detach the subtree rooted at `target` (must not be the root).
    DeleteSubtree {
        /// Root of the subtree to delete.
        target: NodeId,
    },
    /// Replace the text of a text node or the value of an attribute.
    ReplaceValue {
        /// The text or attribute node to rewrite.
        target: NodeId,
        /// The new content.
        value: String,
    },
    /// Rename an element tag or an attribute name.
    RenameLabel {
        /// The element or attribute to rename.
        target: NodeId,
        /// The new name.
        label: String,
    },
}

/// The node payload of an insertion edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NewNode {
    /// An empty element; build its content with follow-up inserts
    /// against the returned id.
    Element {
        /// Tag name.
        label: String,
    },
    /// The common `<label>text</label>` shape in one step.
    Leaf {
        /// Tag name.
        label: String,
        /// Text content (must be non-empty).
        text: String,
    },
    /// A bare text node (must be non-empty).
    Text {
        /// Text content.
        text: String,
    },
    /// An attribute `name="value"`.
    Attribute {
        /// Attribute name (unique among the parent's attributes).
        name: String,
        /// Attribute value (may be empty).
        value: String,
    },
}

/// Why an edit was rejected. Every variant is a caller error; the
/// overlay is left exactly as before the failing [`PendingUpdate::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The node id does not exist in the document.
    UnknownNode(u32),
    /// The node was detached by an earlier edit in this batch.
    DetachedNode(u32),
    /// The operation requires an element but the node is not one.
    NotAnElement(u32),
    /// The root cannot be deleted and has no siblings.
    RootImmutable,
    /// The operation does not apply to this node kind (e.g. replacing
    /// the value of an element, or renaming a text node).
    KindMismatch(u32),
    /// The element/attribute name is not a valid XML name.
    InvalidName(String),
    /// Empty text nodes cannot round-trip through serialization and
    /// are rejected.
    EmptyText,
    /// The parent already carries an attribute with this name.
    DuplicateAttribute(String),
    /// The insertion would break the attributes-before-content order
    /// the parser establishes.
    AttributeOrder,
    /// Updates require a finalized document.
    NotFinalized,
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnknownNode(i) => write!(f, "unknown node id {i}"),
            UpdateError::DetachedNode(i) => {
                write!(f, "node {i} was detached by an earlier edit in this batch")
            }
            UpdateError::NotAnElement(i) => write!(f, "node {i} is not an element"),
            UpdateError::RootImmutable => {
                write!(f, "the root element cannot be deleted or given siblings")
            }
            UpdateError::KindMismatch(i) => {
                write!(f, "operation does not apply to the kind of node {i}")
            }
            UpdateError::InvalidName(n) => write!(f, "invalid XML name: {n:?}"),
            UpdateError::EmptyText => write!(f, "empty text nodes cannot round-trip; rejected"),
            UpdateError::DuplicateAttribute(n) => {
                write!(f, "parent already has an attribute named {n:?}")
            }
            UpdateError::AttributeOrder => {
                write!(
                    f,
                    "insertion would break the attributes-before-content order"
                )
            }
            UpdateError::NotFinalized => write!(f, "updates require a finalized document"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// How a commit folded the overlay into the successor snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitStrategy {
    /// Incremental index maintenance: order splice + single-pass
    /// derivation; upper layers receive a value delta.
    Patch,
    /// The batch was too large relative to the document; finalization
    /// re-ran over the mutated links (no re-parse).
    Rebuild,
}

/// One value-bearing node entering or leaving the document, reported to
/// the catalog/value-index layers so they can patch instead of rebuild.
/// `label` is the label the value is indexed under: the owning element
/// for text nodes, the attribute's own name for attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueOp {
    /// Label the value is indexed under.
    pub label: Symbol,
    /// The raw (un-normalised) value.
    pub value: String,
    /// `true` for a value entering the document, `false` for leaving.
    pub added: bool,
}

/// What a commit did, for observability and for the index layers above.
#[derive(Debug, Clone)]
pub struct UpdateStats {
    /// Which commit path ran.
    pub strategy: CommitStrategy,
    /// Number of edits folded.
    pub edits: usize,
    /// Nodes created by the batch (including nodes of inserted
    /// subtrees that were deleted again before commit).
    pub inserted: usize,
    /// Nodes detached by the batch (whole subtrees counted).
    pub deleted: usize,
    /// Labels whose derived per-label state (value indexes, catalog
    /// entries) may have changed — includes every edit site's ancestor
    /// chain, because element atomization concatenates descendant
    /// text. Empty on the rebuild path (everything is dirty).
    pub dirty_labels: Vec<Symbol>,
    /// Balanced add/remove delta of value-bearing nodes. Empty on the
    /// rebuild path.
    pub value_ops: Vec<ValueOp>,
}

/// An in-flight edit batch: a private successor document plus the
/// bookkeeping needed to commit it incrementally. Created by
/// [`Document::begin_update`]; the snapshot it was begun from is never
/// touched.
#[derive(Debug)]
pub struct PendingUpdate {
    doc: Document,
    /// Arena length at `begin_update`: ids `>= old_len` are new.
    old_len: usize,
    /// Live (ordered) node count at `begin_update`.
    old_live: usize,
    /// Topmost inserted roots (parent is an old node), in apply order.
    inserts: Vec<u32>,
    /// Old-pre ranges of deleted old subtrees (unmerged).
    deleted_ranges: Vec<(u32, u32)>,
    /// Node-weight of the batch (created + detached + rewritten), the
    /// input to the strategy choice.
    touched: usize,
    edits: usize,
    inserted: usize,
    deleted: usize,
    value_ops: Vec<ValueOp>,
    dirty: HashSet<Symbol>,
}

impl Document {
    /// Open an edit batch against this snapshot. The snapshot itself is
    /// never mutated; edits go to a cloned successor inside the
    /// returned overlay.
    pub fn begin_update(&self) -> Result<PendingUpdate, UpdateError> {
        if !self.is_finalized() {
            return Err(UpdateError::NotFinalized);
        }
        Ok(PendingUpdate {
            doc: self.clone(),
            old_len: self.len(),
            old_live: self.order.len(),
            inserts: Vec::new(),
            deleted_ranges: Vec::new(),
            touched: 0,
            edits: 0,
            inserted: 0,
            deleted: 0,
            value_ops: Vec::new(),
            dirty: HashSet::new(),
        })
    }
}

/// `true` when `s` is acceptable as an element/attribute name: a
/// conservative XML-Name subset that the serializer can emit verbatim.
fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || matches!(c, '-' | '.' | '_' | ':'))
}

impl PendingUpdate {
    /// Number of edits pending in the overlay (the high-water input for
    /// the `update_overlay_max` gauge).
    #[inline]
    pub fn overlay_len(&self) -> usize {
        self.edits
    }

    /// The strategy [`PendingUpdate::commit`] will use *right now*:
    /// [`CommitStrategy::Patch`] until the batch has touched more than
    /// a quarter of the live nodes. Callers that report spans should
    /// consult this immediately before committing.
    pub fn strategy(&self) -> CommitStrategy {
        if self.touched * 4 > self.old_live {
            CommitStrategy::Rebuild
        } else {
            CommitStrategy::Patch
        }
    }

    /// Apply one edit to the overlay. On success returns the id of the
    /// node the edit created (insertions; the element for
    /// [`NewNode::Leaf`]) or the edited node otherwise. On error the
    /// overlay is unchanged.
    pub fn apply(&mut self, edit: &Edit) -> Result<NodeId, UpdateError> {
        let out = match edit {
            Edit::InsertChild { parent, node } => self.insert_child(*parent, node),
            Edit::InsertSibling { after, node } => self.insert_sibling(*after, node),
            Edit::DeleteSubtree { target } => self.delete_subtree(*target),
            Edit::ReplaceValue { target, value } => self.replace_value(*target, value),
            Edit::RenameLabel { target, label } => self.rename_label(*target, label),
        }?;
        self.edits += 1;
        Ok(out)
    }

    /// Fold the overlay into the successor document. Picks
    /// [`PendingUpdate::strategy`] and returns the successor (a fully
    /// finalized, queryable snapshot) together with what was done.
    pub fn commit(mut self) -> (Document, UpdateStats) {
        let strategy = self.strategy();
        let mut stats = UpdateStats {
            strategy,
            edits: self.edits,
            inserted: self.inserted,
            deleted: self.deleted,
            dirty_labels: Vec::new(),
            value_ops: Vec::new(),
        };
        match strategy {
            CommitStrategy::Rebuild => self.doc.refinalize(),
            CommitStrategy::Patch => {
                self.commit_patch();
                let mut dirty: Vec<Symbol> = self.dirty.iter().copied().collect();
                dirty.sort_unstable();
                stats.dirty_labels = dirty;
                stats.value_ops = std::mem::take(&mut self.value_ops);
            }
        }
        (self.doc, stats)
    }

    // ------------------------------------------------------------------
    // Edit application
    // ------------------------------------------------------------------

    /// Bounds-check `id` and verify it is still attached to the root.
    fn check_alive(&self, id: NodeId) -> Result<usize, UpdateError> {
        let i = id.index();
        if i >= self.doc.len() {
            return Err(UpdateError::UnknownNode(id.0));
        }
        let mut v = i;
        loop {
            let p = self.doc.arena.parent[v];
            if p == NIL {
                if v == self.doc.root().index() {
                    return Ok(i);
                }
                return Err(UpdateError::DetachedNode(id.0));
            }
            v = p as usize;
        }
    }

    /// Mark the labels of `i` and every ancestor dirty: element
    /// atomization concatenates descendant text, so any structural or
    /// textual change below a node can change the values its label is
    /// indexed under.
    fn mark_dirty_up(&mut self, mut i: usize) {
        loop {
            self.dirty.insert(self.doc.arena.labels[i]);
            let p = self.doc.arena.parent[i];
            if p == NIL {
                break;
            }
            i = p as usize;
        }
    }

    fn record_value(&mut self, label: Symbol, value: &str, added: bool) {
        self.value_ops.push(ValueOp {
            label,
            value: value.to_owned(),
            added,
        });
    }

    /// Push the nodes of `spec` into the arena (internally linked for
    /// [`NewNode::Leaf`], unattached otherwise) and return the topmost.
    fn create(&mut self, spec: &NewNode) -> Result<NodeId, UpdateError> {
        match spec {
            NewNode::Element { label } => {
                if !valid_name(label) {
                    return Err(UpdateError::InvalidName(label.clone()));
                }
                let sym = self.doc.interner.intern(label);
                self.inserted += 1;
                Ok(self.doc.arena.push(sym, NodeKind::Element, None))
            }
            NewNode::Leaf { label, text } => {
                if !valid_name(label) {
                    return Err(UpdateError::InvalidName(label.clone()));
                }
                if text.is_empty() {
                    return Err(UpdateError::EmptyText);
                }
                let sym = self.doc.interner.intern(label);
                let tsym = self.doc.interner.intern(TEXT_LABEL);
                let el = self.doc.arena.push(sym, NodeKind::Element, None);
                let t = self.doc.arena.push(tsym, NodeKind::Text, Some(text));
                self.doc.arena.attach(el, t);
                self.inserted += 2;
                Ok(el)
            }
            NewNode::Text { text } => {
                if text.is_empty() {
                    return Err(UpdateError::EmptyText);
                }
                let tsym = self.doc.interner.intern(TEXT_LABEL);
                self.inserted += 1;
                Ok(self.doc.arena.push(tsym, NodeKind::Text, Some(text)))
            }
            NewNode::Attribute { name, value } => {
                if !valid_name(name) {
                    return Err(UpdateError::InvalidName(name.clone()));
                }
                let sym = self.doc.interner.intern(name);
                self.inserted += 1;
                Ok(self.doc.arena.push(sym, NodeKind::Attribute, Some(value)))
            }
        }
    }

    /// Assign depths through the (small) subtree of a freshly attached
    /// node from its parent's depth.
    fn assign_depths(&mut self, root_i: usize) {
        let mut stack = vec![root_i as u32];
        while let Some(i) = stack.pop() {
            let iu = i as usize;
            self.doc.arena.depth[iu] = match self.doc.arena.parent[iu] {
                NIL => 0,
                p => self.doc.arena.depth[p as usize] + 1,
            };
            let mut c = self.doc.arena.first_child[iu];
            while c != NIL {
                stack.push(c);
                c = self.doc.arena.next_sibling[c as usize];
            }
        }
    }

    /// Record catalog/value bookkeeping for a freshly attached `spec`
    /// rooted at `id`, and remember it as a topmost insert when its
    /// parent is an old node.
    fn note_inserted(&mut self, id: NodeId, spec: &NewNode) {
        let i = id.index();
        match spec {
            NewNode::Element { .. } => {
                self.dirty.insert(self.doc.arena.labels[i]);
            }
            NewNode::Leaf { text, .. } => {
                let sym = self.doc.arena.labels[i];
                self.dirty.insert(sym);
                let tsym = match self.doc.arena.first_child[i] {
                    NIL => sym,
                    c => self.doc.arena.labels[c as usize],
                };
                self.dirty.insert(tsym);
                self.record_value(sym, text, true);
            }
            NewNode::Text { text } => {
                self.dirty.insert(self.doc.arena.labels[i]);
                let owner = self.doc.arena.parent[i];
                if owner != NIL {
                    let osym = self.doc.arena.labels[owner as usize];
                    self.record_value(osym, text, true);
                }
            }
            NewNode::Attribute { value, .. } => {
                let sym = self.doc.arena.labels[i];
                self.dirty.insert(sym);
                self.record_value(sym, value, true);
            }
        }
        let parent = self.doc.arena.parent[i];
        if parent != NIL {
            self.mark_dirty_up(parent as usize);
        }
        if (parent as usize) < self.old_len {
            self.inserts.push(id.0);
        }
        self.touched += match spec {
            NewNode::Leaf { .. } => 2,
            _ => 1,
        };
    }

    /// Scan the attribute prefix of element `p` for an attribute named
    /// `sym`; returns the last attribute seen.
    fn attr_prefix(&self, p: usize, sym: Symbol) -> Result<Option<u32>, UpdateError> {
        let mut last_attr = None;
        let mut c = self.doc.arena.first_child[p];
        while c != NIL {
            let cu = c as usize;
            if self.doc.arena.kinds[cu] != NodeKind::Attribute {
                break;
            }
            if self.doc.arena.labels[cu] == sym {
                return Err(UpdateError::DuplicateAttribute(
                    self.doc.interner.resolve(sym).to_owned(),
                ));
            }
            last_attr = Some(c);
            c = self.doc.arena.next_sibling[cu];
        }
        Ok(last_attr)
    }

    fn insert_child(&mut self, parent: NodeId, spec: &NewNode) -> Result<NodeId, UpdateError> {
        let p = self.check_alive(parent)?;
        if self.doc.arena.kinds[p] != NodeKind::Element {
            return Err(UpdateError::NotAnElement(parent.0));
        }
        if let NewNode::Attribute { name, .. } = spec {
            // Attributes join the attribute prefix, not the tail, so
            // serialize→reparse keeps the node order identical.
            if !valid_name(name) {
                return Err(UpdateError::InvalidName(name.clone()));
            }
            let sym = self.doc.interner.intern(name);
            let last_attr = self.attr_prefix(p, sym)?;
            let id = self.create(spec)?;
            match last_attr {
                Some(a) => self.doc.arena.insert_after(NodeId(a), id),
                None => self.doc.arena.insert_first_child(parent, id),
            }
            self.assign_depths(id.index());
            self.note_inserted(id, spec);
            return Ok(id);
        }
        let id = self.create(spec)?;
        self.doc.arena.attach(parent, id);
        self.assign_depths(id.index());
        self.note_inserted(id, spec);
        Ok(id)
    }

    fn insert_sibling(&mut self, after: NodeId, spec: &NewNode) -> Result<NodeId, UpdateError> {
        let a = self.check_alive(after)?;
        let p = self.doc.arena.parent[a];
        if p == NIL {
            return Err(UpdateError::RootImmutable);
        }
        let after_is_attr = self.doc.arena.kinds[a] == NodeKind::Attribute;
        if let NewNode::Attribute { name, .. } = spec {
            if !after_is_attr {
                return Err(UpdateError::AttributeOrder);
            }
            if !valid_name(name) {
                return Err(UpdateError::InvalidName(name.clone()));
            }
            let sym = self.doc.interner.intern(name);
            self.attr_prefix(p as usize, sym)?;
        } else if after_is_attr {
            let next = self.doc.arena.next_sibling[a];
            if next != NIL && self.doc.arena.kinds[next as usize] == NodeKind::Attribute {
                return Err(UpdateError::AttributeOrder);
            }
        }
        let id = self.create(spec)?;
        self.doc.arena.insert_after(after, id);
        self.assign_depths(id.index());
        self.note_inserted(id, spec);
        Ok(id)
    }

    fn delete_subtree(&mut self, target: NodeId) -> Result<NodeId, UpdateError> {
        let t = self.check_alive(target)?;
        if target == self.doc.root() {
            return Err(UpdateError::RootImmutable);
        }
        // Catalog/value bookkeeping over the *current* subtree (it may
        // contain nodes inserted earlier in this batch).
        let mut count = 0usize;
        let mut stack = vec![target.0];
        while let Some(i) = stack.pop() {
            let iu = i as usize;
            count += 1;
            let sym = self.doc.arena.labels[iu];
            self.dirty.insert(sym);
            match self.doc.arena.kinds[iu] {
                NodeKind::Text => {
                    let owner = self.doc.arena.parent[iu];
                    if owner != NIL {
                        let osym = self.doc.arena.labels[owner as usize];
                        let v = self.doc.arena.value(iu).unwrap_or_default().to_owned();
                        self.value_ops.push(ValueOp {
                            label: osym,
                            value: v,
                            added: false,
                        });
                    }
                }
                NodeKind::Attribute => {
                    let v = self.doc.arena.value(iu).unwrap_or_default().to_owned();
                    self.value_ops.push(ValueOp {
                        label: sym,
                        value: v,
                        added: false,
                    });
                }
                NodeKind::Element => {}
            }
            let mut c = self.doc.arena.first_child[iu];
            while c != NIL {
                stack.push(c);
                c = self.doc.arena.next_sibling[c as usize];
            }
        }
        self.mark_dirty_up(t);
        // Old subtrees are contiguous old-pre ranges; the commit splice
        // skips them wholesale. New (this-batch) subtrees have no old
        // ranks — detaching is enough, the aliveness filter at commit
        // drops their insert records.
        if t < self.old_len {
            let Some(ix) = &self.doc.struct_index else {
                return Err(UpdateError::NotFinalized);
            };
            let lo = self.doc.arena.pre[t];
            let hi = ix.subtree_hi(target);
            self.deleted_ranges.push((lo, hi));
        }
        self.doc.arena.detach(target);
        self.touched += count;
        self.deleted += count;
        Ok(target)
    }

    fn replace_value(&mut self, target: NodeId, value: &str) -> Result<NodeId, UpdateError> {
        let t = self.check_alive(target)?;
        let kind = self.doc.arena.kinds[t];
        let owner_sym = match kind {
            NodeKind::Text => {
                if value.is_empty() {
                    return Err(UpdateError::EmptyText);
                }
                match self.doc.arena.parent[t] {
                    NIL => self.doc.arena.labels[t],
                    p => self.doc.arena.labels[p as usize],
                }
            }
            NodeKind::Attribute => self.doc.arena.labels[t],
            NodeKind::Element => return Err(UpdateError::KindMismatch(target.0)),
        };
        let old = self.doc.arena.value(t).unwrap_or_default().to_owned();
        self.record_value(owner_sym, &old, false);
        self.record_value(owner_sym, value, true);
        self.doc.arena.set_value(t, value);
        self.mark_dirty_up(t);
        self.touched += 1;
        Ok(target)
    }

    fn rename_label(&mut self, target: NodeId, label: &str) -> Result<NodeId, UpdateError> {
        let t = self.check_alive(target)?;
        let kind = self.doc.arena.kinds[t];
        if kind == NodeKind::Text {
            return Err(UpdateError::KindMismatch(target.0));
        }
        if !valid_name(label) {
            return Err(UpdateError::InvalidName(label.to_owned()));
        }
        let old_sym = self.doc.arena.labels[t];
        let new_sym = self.doc.interner.intern(label);
        if old_sym == new_sym {
            return Ok(target);
        }
        if kind == NodeKind::Attribute {
            let p = self.doc.arena.parent[t];
            if p != NIL {
                // Reject a rename that collides with a sibling attribute.
                let mut c = self.doc.arena.first_child[p as usize];
                while c != NIL {
                    let cu = c as usize;
                    if self.doc.arena.kinds[cu] != NodeKind::Attribute {
                        break;
                    }
                    if cu != t && self.doc.arena.labels[cu] == new_sym {
                        return Err(UpdateError::DuplicateAttribute(label.to_owned()));
                    }
                    c = self.doc.arena.next_sibling[cu];
                }
            }
            let v = self.doc.arena.value(t).unwrap_or_default().to_owned();
            self.record_value(old_sym, &v, false);
            self.record_value(new_sym, &v, true);
        } else {
            // Element rename moves its direct-text values between the
            // two labels' catalog entries.
            let mut c = self.doc.arena.first_child[t];
            while c != NIL {
                let cu = c as usize;
                if self.doc.arena.kinds[cu] == NodeKind::Text {
                    let v = self.doc.arena.value(cu).unwrap_or_default().to_owned();
                    self.record_value(old_sym, &v, false);
                    self.record_value(new_sym, &v, true);
                }
                c = self.doc.arena.next_sibling[cu];
            }
        }
        self.doc.arena.set_label(t, new_sym);
        // Both labels' postings change: the node leaves one and joins
        // the other, so neither side's derived indexes may be carried.
        self.dirty.insert(old_sym);
        self.dirty.insert(new_sym);
        self.mark_dirty_up(t);
        self.touched += 1;
        Ok(target)
    }

    // ------------------------------------------------------------------
    // Patch commit
    // ------------------------------------------------------------------

    /// Splice the document order and patch every derived structure.
    fn commit_patch(&mut self) {
        // Merge the deleted old-pre ranges (overlaps arise when a batch
        // deletes both a subtree and, earlier, something inside it).
        let mut ranges = std::mem::take(&mut self.deleted_ranges);
        ranges.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            match merged.last_mut() {
                Some((_, mhi)) if lo <= *mhi => *mhi = (*mhi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }

        // Anchor each surviving topmost insert: emit after old rank
        // `q`, where `q` is the old subtree end of the nearest *old*
        // preceding sibling, or the parent's own old rank when none.
        // Sorting by (q, depth desc, sibling position) interleaves
        // groups that share an anchor correctly: a deeper parent's
        // children close before a shallower node follows.
        struct Anchor {
            q: u32,
            depth: u32,
            seq: u32,
            id: u32,
        }
        let mut anchors: Vec<Anchor> = Vec::with_capacity(self.inserts.len());
        let inserts = std::mem::take(&mut self.inserts);
        for id in inserts {
            if self.check_alive(NodeId(id)).is_err() {
                continue; // inserted, then deleted in the same batch
            }
            let i = id as usize;
            let mut seq = 0u32;
            let mut s = self.doc.arena.prev_sibling[i];
            while s != NIL && (s as usize) >= self.old_len {
                seq += 1;
                s = self.doc.arena.prev_sibling[s as usize];
            }
            let q = if s != NIL {
                match &self.doc.struct_index {
                    Some(ix) => ix.subtree_hi(NodeId(s)),
                    None => self.doc.arena.pre[s as usize],
                }
            } else {
                let p = self.doc.arena.parent[i];
                self.doc.arena.pre[p as usize]
            };
            anchors.push(Anchor {
                q,
                depth: self.doc.arena.depth[i],
                seq,
                id,
            });
        }
        anchors.sort_unstable_by(|a, b| {
            (a.q, std::cmp::Reverse(a.depth), a.seq).cmp(&(b.q, std::cmp::Reverse(b.depth), b.seq))
        });

        // Splice: copy the old order, skip deleted ranges (clearing the
        // orphans' ranks), and emit each inserted subtree — a DFS over
        // its links; it contains only new nodes — right after its
        // anchor rank.
        let old_order = std::mem::take(&mut self.doc.order);
        let mut new_order: Vec<u32> = Vec::with_capacity(old_order.len() + self.inserted);
        let mut scratch: Vec<u32> = Vec::new();
        let mut ai = 0usize;
        let mut di = 0usize;
        for (r, &node) in old_order.iter().enumerate() {
            let r32 = r as u32;
            while di < merged.len() && merged[di].1 < r32 {
                di += 1;
            }
            if di < merged.len() && merged[di].0 <= r32 {
                let nu = node as usize;
                self.doc.arena.pre[nu] = NIL;
                self.doc.arena.post[nu] = NIL;
            } else {
                new_order.push(node);
            }
            while ai < anchors.len() && anchors[ai].q == r32 {
                // Pre-order DFS of the inserted subtree.
                scratch.clear();
                scratch.push(anchors[ai].id);
                while let Some(i) = scratch.pop() {
                    new_order.push(i);
                    let iu = i as usize;
                    let mut kids: Vec<u32> = Vec::new();
                    let mut c = self.doc.arena.first_child[iu];
                    while c != NIL {
                        kids.push(c);
                        c = self.doc.arena.next_sibling[c as usize];
                    }
                    for &k in kids.iter().rev() {
                        scratch.push(k);
                    }
                }
                ai += 1;
            }
        }

        self.doc.apply_patch(new_order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::bib::bib;

    /// Full structural equivalence against a serialize→reparse oracle:
    /// same labels/kinds/values/depths in document order, same pre/post
    /// ranks, and agreeing index probes.
    fn assert_matches_oracle(doc: &Document) {
        let xml = doc.to_xml(doc.root());
        let oracle = Document::parse_str(&xml).unwrap_or_else(|e| {
            panic!("mutated document does not re-parse: {e}\n{xml}");
        });
        assert_eq!(doc.stats().total_nodes(), oracle.len(), "node counts");
        for pre in 0..oracle.len() as u32 {
            let a = doc.node_at_pre(pre).unwrap();
            let b = oracle.node_at_pre(pre).unwrap();
            assert_eq!(doc.label(a), oracle.label(b), "label at pre {pre}");
            assert_eq!(doc.kind(a), oracle.kind(b), "kind at pre {pre}");
            assert_eq!(doc.value(a), oracle.value(b), "value at pre {pre}");
            assert_eq!(doc.depth(a), oracle.depth(b), "depth at pre {pre}");
            assert_eq!(doc.post(a), oracle.post(b), "post at pre {pre}");
        }
        // Index probes: postings and subtree extents agree everywhere.
        for l in oracle.labels() {
            let a: Vec<u32> = doc.nodes_labeled(l).iter().map(|&n| doc.pre(n)).collect();
            let b: Vec<u32> = oracle
                .nodes_labeled(l)
                .iter()
                .map(|&n| oracle.pre(n))
                .collect();
            assert_eq!(a, b, "postings for {l}");
        }
        for pre in 0..oracle.len() as u32 {
            let a = doc.node_at_pre(pre).unwrap();
            let b = oracle.node_at_pre(pre).unwrap();
            assert_eq!(
                doc.descendants(a).count(),
                oracle.descendants(b).count(),
                "descendant count at pre {pre}"
            );
        }
        // LCA probes through the patched Euler-tour RMQ agree with the
        // rebuilt index for every pair of label heads.
        let heads: Vec<u32> = oracle
            .labels()
            .iter()
            .filter_map(|l| doc.nodes_labeled(l).first().map(|&n| doc.pre(n)))
            .collect();
        for &x in &heads {
            for &y in &heads {
                let (a1, b1) = (doc.node_at_pre(x).unwrap(), doc.node_at_pre(y).unwrap());
                let (a2, b2) = (
                    oracle.node_at_pre(x).unwrap(),
                    oracle.node_at_pre(y).unwrap(),
                );
                assert_eq!(
                    doc.pre(doc.lca(a1, b1)),
                    oracle.pre(oracle.lca(a2, b2)),
                    "lca of pres {x},{y}"
                );
            }
        }
    }

    #[test]
    fn insert_leaf_patches_order_and_index() {
        let doc = bib();
        let book = doc.nodes_labeled("book")[0];
        let mut up = doc.begin_update().unwrap();
        up.apply(&Edit::InsertChild {
            parent: book,
            node: NewNode::Leaf {
                label: "isbn".into(),
                text: "0-201-63346-9".into(),
            },
        })
        .unwrap();
        assert_eq!(up.strategy(), CommitStrategy::Patch);
        let (next, stats) = up.commit();
        assert_eq!(stats.strategy, CommitStrategy::Patch);
        assert_eq!(stats.inserted, 2);
        assert_eq!(next.nodes_labeled("isbn").len(), 1);
        assert_eq!(next.len(), doc.len() + 2);
        assert_matches_oracle(&next);
        // The original snapshot is untouched.
        assert!(doc.nodes_labeled("isbn").is_empty());
        assert_eq!(doc.stats().total_nodes(), next.stats().total_nodes() - 2);
    }

    #[test]
    fn delete_subtree_patches_ranges() {
        let doc = bib();
        let book = doc.nodes_labeled("book")[1];
        let mut up = doc.begin_update().unwrap();
        up.apply(&Edit::DeleteSubtree { target: book }).unwrap();
        let (next, stats) = up.commit();
        assert!(stats.deleted > 0);
        assert_eq!(
            next.nodes_labeled("book").len(),
            doc.nodes_labeled("book").len() - 1
        );
        assert_matches_oracle(&next);
    }

    #[test]
    fn replace_and_rename_patch_values() {
        let doc = bib();
        let title = doc.nodes_labeled("title")[0];
        let text = doc.first_child(title).unwrap();
        let mut up = doc.begin_update().unwrap();
        up.apply(&Edit::ReplaceValue {
            target: text,
            value: "Rewritten Title".into(),
        })
        .unwrap();
        up.apply(&Edit::RenameLabel {
            target: title,
            label: "headline".into(),
        })
        .unwrap();
        let (next, stats) = up.commit();
        assert_eq!(stats.strategy, CommitStrategy::Patch);
        let h = next.nodes_labeled("headline")[0];
        assert_eq!(next.string_value(h), "Rewritten Title");
        // Balanced delta: one value replaced (2 ops) + rename moving
        // the (replaced) direct text between labels (2 ops).
        assert_eq!(stats.value_ops.len(), 4);
        assert_matches_oracle(&next);
    }

    #[test]
    fn mixed_batch_with_nested_insertions() {
        let doc = bib();
        let bib_root = doc.root();
        let first_book = doc.nodes_labeled("book")[0];
        let mut up = doc.begin_update().unwrap();
        // A new book built up over several edits, inserted mid-document.
        let nb = up
            .apply(&Edit::InsertSibling {
                after: first_book,
                node: NewNode::Element {
                    label: "book".into(),
                },
            })
            .unwrap();
        up.apply(&Edit::InsertChild {
            parent: nb,
            node: NewNode::Attribute {
                name: "year".into(),
                value: "2025".into(),
            },
        })
        .unwrap();
        up.apply(&Edit::InsertChild {
            parent: nb,
            node: NewNode::Leaf {
                label: "title".into(),
                text: "Incremental Indexing".into(),
            },
        })
        .unwrap();
        // Plus an appended sibling at the end of the root.
        up.apply(&Edit::InsertChild {
            parent: bib_root,
            node: NewNode::Leaf {
                label: "note".into(),
                text: "appended last".into(),
            },
        })
        .unwrap();
        let (next, stats) = up.commit();
        assert_eq!(stats.strategy, CommitStrategy::Patch);
        assert_eq!(
            next.nodes_labeled("book").len(),
            doc.nodes_labeled("book").len() + 1
        );
        // The new book sits right after the first one in document order.
        let books = next.nodes_labeled("book");
        assert_eq!(next.pre(books[1]), next.pre(nb));
        assert_matches_oracle(&next);
    }

    #[test]
    fn insert_then_delete_in_same_batch_is_a_noop() {
        let doc = bib();
        let root = doc.root();
        let mut up = doc.begin_update().unwrap();
        let e = up
            .apply(&Edit::InsertChild {
                parent: root,
                node: NewNode::Leaf {
                    label: "ghost".into(),
                    text: "gone".into(),
                },
            })
            .unwrap();
        up.apply(&Edit::DeleteSubtree { target: e }).unwrap();
        let (next, _) = up.commit();
        assert!(next.nodes_labeled("ghost").is_empty());
        assert_eq!(next.stats().total_nodes(), doc.stats().total_nodes());
        assert_matches_oracle(&next);
    }

    #[test]
    fn large_batch_falls_back_to_rebuild() {
        let doc = bib();
        let mut up = doc.begin_update().unwrap();
        for book in doc.nodes_labeled("book") {
            up.apply(&Edit::DeleteSubtree { target: *book }).unwrap();
        }
        assert_eq!(up.strategy(), CommitStrategy::Rebuild);
        let (next, stats) = up.commit();
        assert_eq!(stats.strategy, CommitStrategy::Rebuild);
        assert!(stats.value_ops.is_empty());
        assert!(next.nodes_labeled("book").is_empty());
        assert_matches_oracle(&next);
    }

    #[test]
    fn edit_validation_rejects_bad_targets() {
        let doc = bib();
        let root = doc.root();
        let title = doc.nodes_labeled("title")[0];
        let year = doc.nodes_labeled("year")[0]; // attribute
        let mut up = doc.begin_update().unwrap();
        assert_eq!(
            up.apply(&Edit::DeleteSubtree { target: root }),
            Err(UpdateError::RootImmutable)
        );
        assert_eq!(
            up.apply(&Edit::InsertSibling {
                after: root,
                node: NewNode::Element { label: "x".into() },
            }),
            Err(UpdateError::RootImmutable)
        );
        assert_eq!(
            up.apply(&Edit::ReplaceValue {
                target: title,
                value: "x".into(),
            }),
            Err(UpdateError::KindMismatch(title.0))
        );
        assert_eq!(
            up.apply(&Edit::InsertChild {
                parent: root,
                node: NewNode::Element {
                    label: "<bad".into()
                },
            }),
            Err(UpdateError::InvalidName("<bad".into()))
        );
        assert_eq!(
            up.apply(&Edit::InsertChild {
                parent: root,
                node: NewNode::Text { text: "".into() },
            }),
            Err(UpdateError::EmptyText)
        );
        assert_eq!(
            up.apply(&Edit::DeleteSubtree {
                target: NodeId(9_999_999),
            }),
            Err(UpdateError::UnknownNode(9_999_999))
        );
        // Duplicate attribute on the same parent.
        let book = doc.nodes_labeled("book")[0];
        assert_eq!(
            up.apply(&Edit::InsertChild {
                parent: book,
                node: NewNode::Attribute {
                    name: "year".into(),
                    value: "1999".into(),
                },
            }),
            Err(UpdateError::DuplicateAttribute("year".into()))
        );
        // Appending another attribute after the last one is legal.
        assert_eq!(
            up.apply(&Edit::InsertSibling {
                after: year,
                node: NewNode::Attribute {
                    name: "month".into(),
                    value: "5".into(),
                },
            })
            .map(|_| ()),
            Ok(()),
            "appending after the last attribute is fine"
        );
        // Deleting a node, then touching it again, is a DetachedNode error.
        let b2 = doc.nodes_labeled("book")[1];
        up.apply(&Edit::DeleteSubtree { target: b2 }).unwrap();
        assert_eq!(
            up.apply(&Edit::RenameLabel {
                target: b2,
                label: "tome".into(),
            }),
            Err(UpdateError::DetachedNode(b2.0))
        );
        // Failed edits did not advance the overlay beyond the two
        // successful ones.
        assert_eq!(up.overlay_len(), 2);
    }

    #[test]
    fn attribute_insert_joins_the_prefix() {
        let doc = Document::parse_str("<r><e a=\"1\">t</e></r>").unwrap();
        let e = doc.nodes_labeled("e")[0];
        let mut up = doc.begin_update().unwrap();
        up.apply(&Edit::InsertChild {
            parent: e,
            node: NewNode::Attribute {
                name: "b".into(),
                value: "2".into(),
            },
        })
        .unwrap();
        let (next, _) = up.commit();
        // The new attribute lands after `a`, before the text.
        let b = next.nodes_labeled("b")[0];
        let a = next.nodes_labeled("a")[0];
        assert_eq!(next.pre(b), next.pre(a) + 1);
        assert_matches_oracle(&next);
    }

    #[test]
    fn dirty_labels_cover_ancestors() {
        let doc = bib();
        let title = doc.nodes_labeled("title")[0];
        let text = doc.first_child(title).unwrap();
        let mut up = doc.begin_update().unwrap();
        up.apply(&Edit::ReplaceValue {
            target: text,
            value: "New".into(),
        })
        .unwrap();
        let (next, stats) = up.commit();
        let dirty: Vec<&str> = stats
            .dirty_labels
            .iter()
            .map(|&s| next.interner().resolve(s))
            .collect();
        // The edited text's owner and every ancestor: atomization of
        // `book` and `bib` sees the changed text too.
        assert!(dirty.contains(&"title"), "{dirty:?}");
        assert!(dirty.contains(&"book"), "{dirty:?}");
        assert!(dirty.contains(&"bib"), "{dirty:?}");
        assert!(!dirty.contains(&"author"), "{dirty:?}");
    }

    #[test]
    fn unfinalized_documents_refuse_updates() {
        let d = Document::new("r");
        assert!(matches!(d.begin_update(), Err(UpdateError::NotFinalized)));
    }
}
