//! The document store, construction API, and label index.
//!
//! Nodes live in a columnar node arena (`arena::NodeArena`); this module
//! owns the construction API (which keeps ids dense and every node
//! attached), finalization (rank assignment, document-order table,
//! label postings, structural index) and the lookup surface the query
//! layers consume.

use crate::arena::{link, NodeArena, NIL};
use crate::interner::{Interner, Symbol};
use crate::node::{Node, NodeId, NodeKind};
use crate::structindex::StructIndex;

/// Reserved label for text nodes.
pub const TEXT_LABEL: &str = "#text";

/// Per-label postings: all nodes carrying one label, in document order,
/// with a parallel column of their pre-order ranks.
///
/// The `pres` column is what makes subtree probes branch-lean: locating
/// the labelled nodes inside a subtree is two `partition_point` calls
/// over a contiguous `u32` slice — no per-probe node loads at all.
#[derive(Debug, Clone, Default)]
pub(crate) struct Postings {
    pub(crate) ids: Vec<NodeId>,
    pub(crate) pres: Vec<u32>,
}

/// An in-memory XML document.
///
/// Construct one either by parsing text ([`Document::parse_str`]), through
/// the streaming [`DocumentBuilder`], or imperatively with
/// [`Document::new`] / [`Document::add_element`] / [`Document::add_text`]
/// followed by [`Document::finalize`].
///
/// Queries must only run against a *finalized* document: finalization
/// assigns pre/post-order ranks and depths and builds the label index.
#[derive(Debug, Clone)]
pub struct Document {
    pub(crate) interner: Interner,
    pub(crate) arena: NodeArena,
    root: NodeId,
    /// Dense per-symbol postings (indexed by `Symbol::index()`).
    postings: Vec<Postings>,
    /// Document-order table: `order[r]` is the arena index of the node
    /// with pre-order rank `r`. Subtree iteration is a slice of this.
    pub(crate) order: Vec<u32>,
    /// Euler-tour/depth structural index (O(1) LCA, O(log n) level
    /// ancestors); built by [`Document::finalize`].
    pub(crate) struct_index: Option<StructIndex>,
    finalized: bool,
}

impl Document {
    /// Create a document with a single root element named `root_label`.
    pub fn new(root_label: &str) -> Self {
        let mut interner = Interner::new();
        let sym = interner.intern(root_label);
        let mut arena = NodeArena::default();
        let root = arena.push(sym, NodeKind::Element, None);
        Document {
            interner,
            arena,
            root,
            postings: Vec::new(),
            order: Vec::new(),
            struct_index: None,
            finalized: false,
        }
    }

    /// The root element.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (elements + attributes + text).
    #[inline]
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True if the document somehow has no nodes (cannot happen through
    /// the public API, which always creates a root).
    pub fn is_empty(&self) -> bool {
        self.arena.len() == 0
    }

    /// Assemble the full per-node view. Cheap (a handful of column
    /// loads, no allocation), but when a hot loop needs only one field,
    /// prefer the single-column accessors ([`Document::pre`],
    /// [`Document::kind`], [`Document::parent`], …) — they touch one
    /// cache line instead of twelve.
    #[inline]
    pub fn node(&self, id: NodeId) -> Node<'_> {
        let i = id.index();
        Node {
            label: self.arena.labels[i],
            kind: self.arena.kinds[i],
            value: self.arena.value(i),
            parent: link(self.arena.parent[i]),
            first_child: link(self.arena.first_child[i]),
            last_child: link(self.arena.last_child[i]),
            next_sibling: link(self.arena.next_sibling[i]),
            prev_sibling: link(self.arena.prev_sibling[i]),
            pre: self.arena.pre[i],
            post: self.arena.post[i],
            depth: self.arena.depth[i],
        }
    }

    // ------------------------------------------------------------------
    // Single-column accessors (the hot-path API)
    // ------------------------------------------------------------------

    /// Pre-order rank of `id` (document order). One column load.
    #[inline]
    pub fn pre(&self, id: NodeId) -> u32 {
        self.arena.pre[id.index()]
    }

    /// Post-order rank of `id`. One column load.
    #[inline]
    pub fn post(&self, id: NodeId) -> u32 {
        self.arena.post[id.index()]
    }

    /// Depth of `id` (root = 0). One column load.
    #[inline]
    pub fn depth(&self, id: NodeId) -> u32 {
        self.arena.depth[id.index()]
    }

    /// Kind of `id`. One column load.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.arena.kinds[id.index()]
    }

    /// Parent of `id`; `None` only for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        link(self.arena.parent[id.index()])
    }

    /// First child of `id` in document order.
    #[inline]
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        link(self.arena.first_child[id.index()])
    }

    /// Next sibling of `id` in document order.
    #[inline]
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        link(self.arena.next_sibling[id.index()])
    }

    /// The stored text of `id`, borrowed from the shared string heap:
    /// `Some` for text and attribute nodes, `None` for elements.
    #[inline]
    pub fn value(&self, id: NodeId) -> Option<&str> {
        self.arena.value(id.index())
    }

    /// The document's interner (read-only).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The label (tag/attribute name) of `id` as a string.
    #[inline]
    pub fn label(&self, id: NodeId) -> &str {
        self.interner.resolve(self.arena.labels[id.index()])
    }

    /// The label symbol of `id`.
    #[inline]
    pub fn label_sym(&self, id: NodeId) -> Symbol {
        self.arena.labels[id.index()]
    }

    /// Intern a label in this document's interner.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// Look up a label without interning.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.interner.get(name)
    }

    /// The string a symbol of this document's interner stands for (the
    /// inverse of [`Document::lookup`]). Update deltas
    /// ([`crate::UpdateStats`]) carry labels as symbols; downstream
    /// catalogs resolve them through here.
    pub fn resolve_label(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn attach(&mut self, parent: NodeId, child: NodeId) {
        debug_assert!(!self.finalized, "cannot mutate a finalized document");
        self.arena.attach(parent, child);
    }

    /// Append a child element labelled `label` under `parent`.
    pub fn add_element(&mut self, parent: NodeId, label: &str) -> NodeId {
        let sym = self.interner.intern(label);
        let id = self.arena.push(sym, NodeKind::Element, None);
        self.attach(parent, id);
        id
    }

    /// Append a text node with content `text` under `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        let sym = self.interner.intern(TEXT_LABEL);
        let id = self.arena.push(sym, NodeKind::Text, Some(text));
        self.attach(parent, id);
        id
    }

    /// Append an attribute node `name="value"` under `parent`.
    pub fn add_attribute(&mut self, parent: NodeId, name: &str, value: &str) -> NodeId {
        let sym = self.interner.intern(name);
        let id = self.arena.push(sym, NodeKind::Attribute, Some(value));
        self.attach(parent, id);
        id
    }

    /// Convenience: `add_element` followed by `add_text`, returning the
    /// element. This is the common "leaf element with a value" pattern
    /// (`<title>Traffic</title>`).
    pub fn add_leaf(&mut self, parent: NodeId, label: &str, text: &str) -> NodeId {
        let el = self.add_element(parent, label);
        self.add_text(el, text);
        el
    }

    /// Assign pre/post-order ranks and depths, build the document-order
    /// table, the label postings and the structural index.
    ///
    /// Idempotent; must be called before querying. All the navigation in
    /// [`crate::axes`] that relies on ranks will panic (in debug builds)
    /// on an unfinalized document.
    pub fn finalize(&mut self) {
        // Iterative DFS assigning pre on entry and post on exit, and
        // recording the entry sequence as the document-order table.
        let n = self.arena.len();
        let mut pre = 0u32;
        let mut post = 0u32;
        let mut order: Vec<u32> = Vec::with_capacity(n);
        // Stack entries: (arena index, entered?).
        let mut stack: Vec<(u32, bool)> = vec![(self.root.0, false)];
        let mut scratch: Vec<u32> = Vec::new();
        while let Some((i, entered)) = stack.pop() {
            let iu = i as usize;
            if entered {
                self.arena.post[iu] = post;
                post += 1;
                continue;
            }
            self.arena.pre[iu] = pre;
            // Parents are entered before their children, so the parent's
            // depth is already assigned.
            self.arena.depth[iu] = match self.arena.parent[iu] {
                NIL => 0,
                p => self.arena.depth[p as usize] + 1,
            };
            order.push(i);
            pre += 1;
            stack.push((i, true));
            // Push children in reverse so the first child is processed
            // first (one reusable scratch buffer, not one per node).
            scratch.clear();
            let mut c = self.arena.first_child[iu];
            while c != NIL {
                scratch.push(c);
                c = self.arena.next_sibling[c as usize];
            }
            for &cid in scratch.iter().rev() {
                stack.push((cid, false));
            }
        }
        self.order = order;
        self.rebuild_postings();

        // Structural index over the rank-annotated tree: O(1) LCA via
        // Euler-tour RMQ, O(log n) level ancestors via binary lifting.
        self.struct_index = Some(StructIndex::build(&self.arena, self.root));
        self.finalized = true;
    }

    /// Label postings in document (pre) order — one pass over the
    /// order table fills every label's ids and pres columns sorted.
    pub(crate) fn rebuild_postings(&mut self) {
        let mut postings: Vec<Postings> = vec![Postings::default(); self.interner.len()];
        for &i in &self.order {
            let p = &mut postings[self.arena.labels[i as usize].index()];
            p.ids.push(NodeId(i));
            p.pres.push(self.arena.pre[i as usize]);
        }
        self.postings = postings;
    }

    /// Re-run finalization after link-level mutation: the rebuild path
    /// of the update subsystem. Ranks of every arena slot are cleared
    /// first so nodes detached by edits keep no stale pre/post and are
    /// excluded from every rank-driven structure.
    pub(crate) fn refinalize(&mut self) {
        for i in 0..self.arena.len() {
            self.arena.pre[i] = NIL;
            self.arena.post[i] = NIL;
        }
        self.finalized = false;
        self.finalize();
    }

    /// Patch path of the update subsystem: adopt an already-spliced
    /// document order. Assigns pre ranks from the order, derives
    /// post ranks and the structural index in one pass over it
    /// ([`StructIndex::from_order`]), and refills the label postings.
    /// Falls back to full refinalization if no prior index exists.
    pub(crate) fn apply_patch(&mut self, order: Vec<u32>) {
        let Some(prior) = self.struct_index.take() else {
            self.refinalize();
            return;
        };
        for (rank, &i) in order.iter().enumerate() {
            self.arena.pre[i as usize] = rank as u32;
        }
        let ix = StructIndex::from_order(&mut self.arena, &order, &prior);
        self.struct_index = Some(ix);
        self.order = order;
        self.rebuild_postings();
        self.finalized = true;
    }

    /// Arena index of the node at pre-order rank `pre`; `None` when the
    /// rank is out of range or the document is not finalized.
    #[inline]
    pub fn node_at_pre(&self, pre: u32) -> Option<NodeId> {
        self.order.get(pre as usize).map(|&i| NodeId(i))
    }

    /// Whether [`Document::finalize`] has run.
    #[inline]
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// All nodes labelled `label`, in document order. Empty if the label
    /// does not occur.
    pub fn nodes_labeled(&self, label: &str) -> &[NodeId] {
        debug_assert!(self.finalized, "query against unfinalized document");
        self.interner
            .get(label)
            .and_then(|sym| self.postings.get(sym.index()))
            .map(|p| p.ids.as_slice())
            .unwrap_or(&[])
    }

    /// All nodes with label symbol `sym`, in document order.
    pub fn nodes_with_symbol(&self, sym: Symbol) -> &[NodeId] {
        debug_assert!(self.finalized, "query against unfinalized document");
        self.postings
            .get(sym.index())
            .map(|p| p.ids.as_slice())
            .unwrap_or(&[])
    }

    /// The postings entry for `sym`, when the label occurs.
    #[inline]
    pub(crate) fn postings_for(&self, sym: Symbol) -> Option<&Postings> {
        self.postings.get(sym.index())
    }

    /// Distinct element/attribute labels present in the document
    /// (excludes the reserved `#text` label), in interning order.
    pub fn labels(&self) -> Vec<&str> {
        self.interner
            .iter()
            .filter(|(_, s)| *s != TEXT_LABEL)
            .map(|(_, s)| s)
            .collect()
    }

    /// The string value of a node, XPath style: for text and attribute
    /// nodes their own content; for elements the concatenation of all
    /// descendant text, in document order.
    ///
    /// On a finalized document the element case is a linear sweep over
    /// the subtree's slice of the document-order table — no recursion,
    /// no link chasing.
    pub fn string_value(&self, id: NodeId) -> String {
        let i = id.index();
        match self.arena.kinds[i] {
            NodeKind::Text | NodeKind::Attribute => {
                self.arena.value(i).unwrap_or_default().to_owned()
            }
            NodeKind::Element => {
                if self.struct_index.is_none() {
                    // Unfinalized: no order table yet, walk the links.
                    let mut out = String::new();
                    self.collect_text_walk(id, &mut out);
                    return out;
                }
                if let Some(one) = self.sole_subtree_text(id) {
                    return one.to_owned();
                }
                let mut out = String::new();
                for t in self.subtree_texts(id) {
                    out.push_str(t);
                }
                out
            }
        }
    }

    /// The *atomized* value of a node, borrowing from the string heap
    /// whenever possible — the comparison-side counterpart of
    /// [`Document::string_value`].
    ///
    /// Semantics (shared with the XQuery engine's atomization): text and
    /// attribute nodes yield their own content; an element with
    /// non-whitespace *direct* text yields that text trimmed (mixed
    /// content like `<year>2000 <movie>…</movie></year>` atomizes to
    /// "2000", not the concatenation of every nested title); any other
    /// element yields its whole-subtree string value.
    ///
    /// For the dominant leaf shape (`<title>…</title>`) this is a
    /// borrowed slice: no allocation per comparison, which is what makes
    /// a predicate scan over millions of nodes a linear sweep rather
    /// than a malloc benchmark.
    pub fn atom_value(&self, id: NodeId) -> std::borrow::Cow<'_, str> {
        use std::borrow::Cow;
        let i = id.index();
        match self.arena.kinds[i] {
            NodeKind::Text | NodeKind::Attribute => {
                Cow::Borrowed(self.arena.value(i).unwrap_or_default())
            }
            NodeKind::Element => {
                // One pass over the children: the direct text, borrowed
                // while it is carried by a single text child.
                let mut direct: Option<Cow<'_, str>> = None;
                let mut c = self.arena.first_child[i];
                while c != NIL {
                    let cu = c as usize;
                    if self.arena.kinds[cu] == NodeKind::Text {
                        let v = self.arena.value(cu).unwrap_or_default();
                        direct = Some(match direct {
                            None => Cow::Borrowed(v),
                            Some(prev) => {
                                let mut s = prev.into_owned();
                                s.push_str(v);
                                Cow::Owned(s)
                            }
                        });
                    }
                    c = self.arena.next_sibling[cu];
                }
                if let Some(d) = direct {
                    if !d.trim().is_empty() {
                        return match d {
                            Cow::Borrowed(b) => Cow::Borrowed(b.trim()),
                            Cow::Owned(o) => Cow::Owned(o.trim().to_owned()),
                        };
                    }
                }
                if self.struct_index.is_some() {
                    if let Some(one) = self.sole_subtree_text(id) {
                        return Cow::Borrowed(one);
                    }
                }
                Cow::Owned(self.string_value(id))
            }
        }
    }

    /// Link-walking text collection for unfinalized documents (an
    /// explicit stack, so arbitrarily deep trees cannot overflow).
    fn collect_text_walk(&self, id: NodeId, out: &mut String) {
        let mut stack: Vec<u32> = Vec::new();
        let push_children = |stack: &mut Vec<u32>, i: usize| {
            let mut kids: Vec<u32> = Vec::new();
            let mut c = self.arena.first_child[i];
            while c != NIL {
                kids.push(c);
                c = self.arena.next_sibling[c as usize];
            }
            stack.extend(kids.into_iter().rev());
        };
        push_children(&mut stack, id.index());
        while let Some(i) = stack.pop() {
            let iu = i as usize;
            match self.arena.kinds[iu] {
                NodeKind::Text => {
                    if let Some(v) = self.arena.value(iu) {
                        out.push_str(v);
                    }
                }
                NodeKind::Element => push_children(&mut stack, iu),
                NodeKind::Attribute => {}
            }
        }
    }

    /// The single text content of an element's subtree, borrowed from
    /// the string heap — `Some` exactly when the subtree holds one text
    /// node (the overwhelmingly common `<title>…</title>` leaf shape).
    /// `None` means zero or several text nodes; callers fall back to
    /// the concatenating [`Document::string_value`]. Requires a
    /// finalized document; returns `None` before finalization.
    pub fn sole_subtree_text(&self, id: NodeId) -> Option<&str> {
        let mut it = self.subtree_texts(id);
        let first = it.next()?;
        match it.next() {
            None => Some(first),
            Some(_) => None,
        }
    }

    /// Iterator over the text contents inside the subtree of `id`
    /// (an element), in document order. Empty on unfinalized documents.
    fn subtree_texts(&self, id: NodeId) -> impl Iterator<Item = &str> {
        let range = match &self.struct_index {
            Some(ix) => {
                let lo = self.arena.pre[id.index()] as usize;
                let hi = ix.subtree_hi(id) as usize;
                lo..hi + 1
            }
            None => 0..0,
        };
        self.order[range].iter().filter_map(|&i| {
            let i = i as usize;
            if self.arena.kinds[i] == NodeKind::Text {
                self.arena.value(i)
            } else {
                None
            }
        })
    }

    /// The *direct* text of an element: concatenation of its immediate
    /// text children only. This matters for mixed content such as the
    /// paper's `<year>2000 <movie>…</movie></year>` shape, where the
    /// year's own value must not swallow the nested movie titles.
    pub fn direct_text(&self, id: NodeId) -> String {
        match self.sole_direct_text(id) {
            Some(one) => one.to_owned(),
            None => {
                let mut out = String::new();
                let mut c = self.arena.first_child[id.index()];
                while c != NIL {
                    let cu = c as usize;
                    if self.arena.kinds[cu] == NodeKind::Text {
                        if let Some(v) = self.arena.value(cu) {
                            out.push_str(v);
                        }
                    }
                    c = self.arena.next_sibling[cu];
                }
                out
            }
        }
    }

    /// The direct text of an element when it is carried by a *single*
    /// text child, borrowed from the string heap; `None` when the
    /// element has zero or several text children (callers fall back to
    /// the concatenating [`Document::direct_text`]).
    pub fn sole_direct_text(&self, id: NodeId) -> Option<&str> {
        let mut found: Option<&str> = None;
        let mut c = self.arena.first_child[id.index()];
        while c != NIL {
            let cu = c as usize;
            if self.arena.kinds[cu] == NodeKind::Text {
                if found.is_some() {
                    return None;
                }
                found = self.arena.value(cu);
            }
            c = self.arena.next_sibling[cu];
        }
        found
    }

    /// Statistics used by the dataset generators to hit the paper's
    /// document size (73,142 nodes / 1.44 MB for the DBLP subset).
    pub fn stats(&self) -> DocStats {
        let mut s = DocStats::default();
        let mut tally = |i: usize| match self.arena.kinds[i] {
            NodeKind::Element => s.elements += 1,
            NodeKind::Attribute => s.attributes += 1,
            NodeKind::Text => {
                s.text_nodes += 1;
                s.text_bytes += self.arena.value(i).map_or(0, str::len);
            }
        };
        if self.finalized {
            // Count reachable nodes only: after node-level updates the
            // arena may hold detached slots awaiting a rebuild.
            for &i in &self.order {
                tally(i as usize);
            }
        } else {
            for i in 0..self.arena.len() {
                tally(i);
            }
        }
        s.labels = self.interner.len();
        s
    }

    /// Byte-level accounting of the document's resident structures —
    /// what a memory budget should reason about at corpus scale.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint {
            node_columns: self.arena.column_bytes(),
            string_heap: self.arena.heap_bytes(),
            doc_order: self.order.len() * std::mem::size_of::<u32>(),
            label_postings: self
                .postings
                .iter()
                .map(|p| (p.ids.len() + p.pres.len()) * std::mem::size_of::<u32>())
                .sum(),
            struct_index: self.struct_index.as_ref().map_or(0, StructIndex::bytes),
        }
    }
}

/// Simple size statistics for a document.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DocStats {
    /// Number of element nodes.
    pub elements: usize,
    /// Number of attribute nodes.
    pub attributes: usize,
    /// Number of text nodes.
    pub text_nodes: usize,
    /// Total bytes of text content.
    pub text_bytes: usize,
    /// Number of distinct labels (including `#text`).
    pub labels: usize,
}

impl DocStats {
    /// Total node count.
    pub fn total_nodes(&self) -> usize {
        self.elements + self.attributes + self.text_nodes
    }
}

/// Bytes held by each resident structure of a (finalized) document.
/// Reported by [`Document::memory_footprint`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// The twelve node columns of the arena.
    pub node_columns: usize,
    /// The packed text/attribute content heap.
    pub string_heap: usize,
    /// The document-order (pre rank → arena index) table.
    pub doc_order: usize,
    /// Per-label postings (ids + pre ranks).
    pub label_postings: usize,
    /// Euler tour, sparse RMQ table, binary-lifting table, extents.
    pub struct_index: usize,
}

impl MemoryFootprint {
    /// Total bytes across all structures.
    pub fn total(&self) -> usize {
        self.node_columns
            + self.string_heap
            + self.doc_order
            + self.label_postings
            + self.struct_index
    }
}

/// A streaming builder mirroring SAX-style events, used by the XML text
/// parser and handy for generators.
///
/// ```
/// use xmldb::DocumentBuilder;
/// let mut b = DocumentBuilder::new("bib");
/// b.open("book");
/// b.attr("year", "1994");
/// b.leaf("title", "TCP/IP Illustrated");
/// b.close();
/// let doc = b.finish();
/// assert_eq!(doc.nodes_labeled("book").len(), 1);
/// ```
#[derive(Debug)]
pub struct DocumentBuilder {
    doc: Document,
    root: NodeId,
    stack: Vec<NodeId>,
}

impl DocumentBuilder {
    /// Start a document whose root element is `root_label`.
    pub fn new(root_label: &str) -> Self {
        let doc = Document::new(root_label);
        let root = doc.root();
        DocumentBuilder {
            doc,
            root,
            stack: vec![root],
        }
    }

    fn top(&self) -> NodeId {
        self.stack.last().copied().unwrap_or(self.root)
    }

    /// Open a child element and descend into it.
    pub fn open(&mut self, label: &str) -> NodeId {
        let id = self.doc.add_element(self.top(), label);
        self.stack.push(id);
        id
    }

    /// Add an attribute to the currently open element.
    pub fn attr(&mut self, name: &str, value: &str) -> NodeId {
        self.doc.add_attribute(self.top(), name, value)
    }

    /// Add a text child to the currently open element.
    pub fn text(&mut self, text: &str) -> NodeId {
        self.doc.add_text(self.top(), text)
    }

    /// Add a `<label>text</label>` child without descending.
    pub fn leaf(&mut self, label: &str, text: &str) -> NodeId {
        self.doc.add_leaf(self.top(), label, text)
    }

    /// Close the current element, ascending to its parent.
    ///
    /// # Panics
    /// Panics when attempting to close the root.
    pub fn close(&mut self) {
        assert!(self.stack.len() > 1, "cannot close the root element");
        self.stack.pop();
    }

    /// Depth of the currently open element (root = 0).
    pub fn depth(&self) -> usize {
        self.stack.len() - 1
    }

    /// Finalize and return the document. Remaining open elements are
    /// closed implicitly.
    pub fn finish(mut self) -> Document {
        self.doc.finalize();
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let mut d = Document::new("movies");
        let root = d.root();
        let m1 = d.add_element(root, "movie");
        d.add_leaf(m1, "title", "Traffic");
        d.add_leaf(m1, "director", "Steven Soderbergh");
        let m2 = d.add_element(root, "movie");
        d.add_leaf(m2, "title", "A Beautiful Mind");
        d.add_leaf(m2, "director", "Ron Howard");
        d.finalize();
        d
    }

    #[test]
    fn builds_and_finalizes() {
        let d = sample();
        assert!(d.is_finalized());
        assert_eq!(d.nodes_labeled("movie").len(), 2);
        assert_eq!(d.nodes_labeled("title").len(), 2);
        assert_eq!(d.nodes_labeled("nonexistent").len(), 0);
    }

    #[test]
    fn preorder_is_document_order() {
        let d = sample();
        let titles = d.nodes_labeled("title");
        assert!(d.node(titles[0]).pre < d.node(titles[1]).pre);
        assert_eq!(d.string_value(titles[0]), "Traffic");
        assert_eq!(d.string_value(titles[1]), "A Beautiful Mind");
    }

    #[test]
    fn depths_are_assigned() {
        let d = sample();
        assert_eq!(d.node(d.root()).depth, 0);
        let m = d.nodes_labeled("movie")[0];
        assert_eq!(d.node(m).depth, 1);
        let t = d.nodes_labeled("title")[0];
        assert_eq!(d.node(t).depth, 2);
    }

    #[test]
    fn view_and_column_accessors_agree() {
        let d = sample();
        for i in 0..d.len() {
            let id = NodeId::from_index(i);
            let n = d.node(id);
            assert_eq!(n.pre, d.pre(id));
            assert_eq!(n.post, d.post(id));
            assert_eq!(n.depth, d.depth(id));
            assert_eq!(n.kind, d.kind(id));
            assert_eq!(n.parent, d.parent(id));
            assert_eq!(n.first_child, d.first_child(id));
            assert_eq!(n.next_sibling, d.next_sibling(id));
            assert_eq!(n.value, d.value(id));
            assert_eq!(n.label, d.label_sym(id));
        }
    }

    #[test]
    fn string_value_concatenates_descendants() {
        let d = sample();
        let m = d.nodes_labeled("movie")[0];
        assert_eq!(d.string_value(m), "TrafficSteven Soderbergh");
    }

    #[test]
    fn direct_text_ignores_nested_elements() {
        let mut d = Document::new("year");
        let root = d.root();
        d.add_text(root, "2000");
        let m = d.add_element(root, "movie");
        d.add_leaf(m, "title", "Traffic");
        d.finalize();
        assert_eq!(d.direct_text(root), "2000");
        assert_eq!(d.string_value(root), "2000Traffic");
    }

    #[test]
    fn sole_direct_text_borrows_single_text_child() {
        let mut d = Document::new("movie");
        let root = d.root();
        let t = d.add_leaf(root, "title", "Traffic");
        d.add_text(root, "extra");
        d.add_text(root, "more");
        d.finalize();
        assert_eq!(d.sole_direct_text(t), Some("Traffic"));
        // Two text children: no sole slice.
        assert_eq!(d.sole_direct_text(root), None);
        assert_eq!(d.direct_text(root), "extramore");
        // An element with no text children at all.
        let empty = Document::new("r");
        assert_eq!(empty.sole_direct_text(empty.root()), None);
    }

    #[test]
    fn sole_subtree_text_borrows_single_descendant_text() {
        let d = sample();
        let t = d.nodes_labeled("title")[0];
        assert_eq!(d.sole_subtree_text(t), Some("Traffic"));
        let m = d.nodes_labeled("movie")[0];
        assert_eq!(d.sole_subtree_text(m), None); // two texts below
    }

    #[test]
    fn attributes_have_values() {
        let mut d = Document::new("bib");
        let root = d.root();
        let b = d.add_element(root, "book");
        d.add_attribute(b, "year", "1994");
        d.finalize();
        let y = d.nodes_labeled("year")[0];
        assert!(d.node(y).is_attribute());
        assert_eq!(d.string_value(y), "1994");
        assert_eq!(d.value(y), Some("1994"));
    }

    #[test]
    fn order_table_is_a_pre_order_permutation() {
        let d = sample();
        assert_eq!(d.order.len(), d.len());
        for (rank, &i) in d.order.iter().enumerate() {
            assert_eq!(d.pre(NodeId(i)) as usize, rank);
        }
    }

    #[test]
    fn builder_round_trip() {
        let mut b = DocumentBuilder::new("bib");
        b.open("book");
        b.attr("year", "1994");
        b.leaf("title", "TCP/IP Illustrated");
        b.open("author");
        b.leaf("last", "Stevens");
        b.leaf("first", "W.");
        b.close();
        b.close();
        let d = b.finish();
        assert_eq!(d.nodes_labeled("book").len(), 1);
        assert_eq!(d.nodes_labeled("last").len(), 1);
        assert_eq!(d.string_value(d.nodes_labeled("author")[0]), "StevensW.");
    }

    #[test]
    fn builder_auto_closes_on_finish() {
        let mut b = DocumentBuilder::new("r");
        b.open("a");
        b.open("b");
        let d = b.finish(); // no explicit closes
        assert!(d.is_finalized());
        assert_eq!(d.nodes_labeled("b").len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot close the root")]
    fn builder_refuses_to_close_root() {
        let mut b = DocumentBuilder::new("r");
        b.close();
    }

    #[test]
    fn stats_count_kinds() {
        let d = sample();
        let s = d.stats();
        assert_eq!(s.elements, 1 + 2 + 4); // movies + 2 movie + 2 title + 2 director
        assert_eq!(s.text_nodes, 4);
        assert_eq!(s.attributes, 0);
        assert_eq!(s.total_nodes(), d.len());
    }

    #[test]
    fn labels_excludes_text() {
        let d = sample();
        let labels = d.labels();
        assert!(labels.contains(&"movie"));
        assert!(!labels.contains(&"#text"));
    }

    #[test]
    fn postorder_root_is_last() {
        let d = sample();
        let max_post = (0..d.len())
            .map(|i| d.post(NodeId::from_index(i)))
            .max()
            .unwrap();
        assert_eq!(d.node(d.root()).post, max_post);
    }

    #[test]
    fn memory_footprint_accounts_all_parts() {
        let d = sample();
        let f = d.memory_footprint();
        assert!(f.node_columns > 0);
        assert_eq!(
            f.string_heap,
            "TrafficSteven SoderberghA Beautiful MindRon Howard".len()
        );
        assert_eq!(f.doc_order, d.len() * 4);
        assert!(f.label_postings > 0);
        assert!(f.struct_index > 0);
        assert_eq!(
            f.total(),
            f.node_columns + f.string_heap + f.doc_order + f.label_postings + f.struct_index
        );
    }
}
