//! The document arena, construction API, and label index.

use crate::interner::{Interner, Symbol};
use crate::node::{Node, NodeId, NodeKind};
use crate::structindex::StructIndex;
use std::collections::HashMap;

/// Reserved label for text nodes.
pub const TEXT_LABEL: &str = "#text";

/// An in-memory XML document.
///
/// Construct one either by parsing text ([`Document::parse_str`]), through
/// the streaming [`DocumentBuilder`], or imperatively with
/// [`Document::new`] / [`Document::add_element`] / [`Document::add_text`]
/// followed by [`Document::finalize`].
///
/// Queries must only run against a *finalized* document: finalization
/// assigns pre/post-order ranks and depths and builds the label index.
#[derive(Debug, Clone)]
pub struct Document {
    pub(crate) interner: Interner,
    pub(crate) nodes: Vec<Node>,
    root: NodeId,
    /// For each label symbol, all nodes with that label in document order.
    label_index: HashMap<Symbol, Vec<NodeId>>,
    /// Euler-tour/depth structural index (O(1) LCA, O(log n) level
    /// ancestors); built by [`Document::finalize`].
    pub(crate) struct_index: Option<StructIndex>,
    finalized: bool,
}

impl Document {
    /// Create a document with a single root element named `root_label`.
    pub fn new(root_label: &str) -> Self {
        let mut interner = Interner::new();
        let sym = interner.intern(root_label);
        let root = Node::new(sym, NodeKind::Element, None);
        Document {
            interner,
            nodes: vec![root],
            root: NodeId(0),
            label_index: HashMap::new(),
            struct_index: None,
            finalized: false,
        }
    }

    /// The root element.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (elements + attributes + text).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document somehow has no nodes (cannot happen through
    /// the public API, which always creates a root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node record.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The document's interner (read-only).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The label (tag/attribute name) of `id` as a string.
    #[inline]
    pub fn label(&self, id: NodeId) -> &str {
        self.interner.resolve(self.node(id).label)
    }

    /// The label symbol of `id`.
    #[inline]
    pub fn label_sym(&self, id: NodeId) -> Symbol {
        self.node(id).label
    }

    /// Intern a label in this document's interner.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// Look up a label without interning.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.interner.get(name)
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn attach(&mut self, parent: NodeId, child: NodeId) {
        debug_assert!(!self.finalized, "cannot mutate a finalized document");
        self.nodes[child.index()].parent = Some(parent);
        match self.nodes[parent.index()].last_child {
            None => {
                self.nodes[parent.index()].first_child = Some(child);
                self.nodes[parent.index()].last_child = Some(child);
            }
            Some(last) => {
                self.nodes[last.index()].next_sibling = Some(child);
                self.nodes[child.index()].prev_sibling = Some(last);
                self.nodes[parent.index()].last_child = Some(child);
            }
        }
    }

    /// Append a child element labelled `label` under `parent`.
    pub fn add_element(&mut self, parent: NodeId, label: &str) -> NodeId {
        let sym = self.interner.intern(label);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(sym, NodeKind::Element, None));
        self.attach(parent, id);
        id
    }

    /// Append a text node with content `text` under `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        let sym = self.interner.intern(TEXT_LABEL);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes
            .push(Node::new(sym, NodeKind::Text, Some(text.to_owned())));
        self.attach(parent, id);
        id
    }

    /// Append an attribute node `name="value"` under `parent`.
    pub fn add_attribute(&mut self, parent: NodeId, name: &str, value: &str) -> NodeId {
        let sym = self.interner.intern(name);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes
            .push(Node::new(sym, NodeKind::Attribute, Some(value.to_owned())));
        self.attach(parent, id);
        id
    }

    /// Convenience: `add_element` followed by `add_text`, returning the
    /// element. This is the common "leaf element with a value" pattern
    /// (`<title>Traffic</title>`).
    pub fn add_leaf(&mut self, parent: NodeId, label: &str, text: &str) -> NodeId {
        let el = self.add_element(parent, label);
        self.add_text(el, text);
        el
    }

    /// Assign pre/post-order ranks and depths, and build the label index.
    ///
    /// Idempotent; must be called before querying. All the navigation in
    /// [`crate::axes`] that relies on ranks will panic (in debug builds)
    /// on an unfinalized document.
    pub fn finalize(&mut self) {
        // Iterative DFS assigning pre on entry and post on exit.
        let mut pre = 0u32;
        let mut post = 0u32;
        // Stack entries: (node, depth, entered?)
        let mut stack: Vec<(NodeId, u32, bool)> = vec![(self.root, 0, false)];
        while let Some((id, depth, entered)) = stack.pop() {
            if entered {
                self.nodes[id.index()].post = post;
                post += 1;
                continue;
            }
            {
                let n = &mut self.nodes[id.index()];
                n.pre = pre;
                n.depth = depth;
            }
            pre += 1;
            stack.push((id, depth, true));
            // Push children in reverse so the first child is processed first.
            let mut children = Vec::new();
            let mut c = self.nodes[id.index()].first_child;
            while let Some(cid) = c {
                children.push(cid);
                c = self.nodes[cid.index()].next_sibling;
            }
            for &cid in children.iter().rev() {
                stack.push((cid, depth + 1, false));
            }
        }

        // Label index in document (pre) order.
        let mut order: Vec<NodeId> = (0..self.nodes.len()).map(|i| NodeId(i as u32)).collect();
        order.sort_by_key(|id| self.nodes[id.index()].pre);
        let mut index: HashMap<Symbol, Vec<NodeId>> = HashMap::new();
        for id in order {
            let n = &self.nodes[id.index()];
            if n.pre == u32::MAX {
                continue; // unreachable node (not attached); skip defensively
            }
            index.entry(n.label).or_default().push(id);
        }
        self.label_index = index;

        // Structural index over the rank-annotated tree: O(1) LCA via
        // Euler-tour RMQ, O(log n) level ancestors via binary lifting.
        self.struct_index = Some(StructIndex::build(&self.nodes, self.root));
        self.finalized = true;
    }

    /// Whether [`Document::finalize`] has run.
    #[inline]
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// All nodes labelled `label`, in document order. Empty if the label
    /// does not occur.
    pub fn nodes_labeled(&self, label: &str) -> &[NodeId] {
        debug_assert!(self.finalized, "query against unfinalized document");
        self.interner
            .get(label)
            .and_then(|sym| self.label_index.get(&sym))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All nodes with label symbol `sym`, in document order.
    pub fn nodes_with_symbol(&self, sym: Symbol) -> &[NodeId] {
        debug_assert!(self.finalized, "query against unfinalized document");
        self.label_index.get(&sym).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Distinct element/attribute labels present in the document
    /// (excludes the reserved `#text` label), in interning order.
    pub fn labels(&self) -> Vec<&str> {
        self.interner
            .iter()
            .filter(|(_, s)| *s != TEXT_LABEL)
            .map(|(_, s)| s)
            .collect()
    }

    /// The string value of a node, XPath style: for text and attribute
    /// nodes their own content; for elements the concatenation of all
    /// descendant text, in document order.
    pub fn string_value(&self, id: NodeId) -> String {
        let n = self.node(id);
        match n.kind {
            NodeKind::Text | NodeKind::Attribute => n.value.clone().unwrap_or_default(),
            NodeKind::Element => {
                let mut out = String::new();
                self.collect_text(id, &mut out);
                out
            }
        }
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        let mut c = self.node(id).first_child;
        while let Some(cid) = c {
            let n = self.node(cid);
            match n.kind {
                NodeKind::Text => {
                    if let Some(v) = &n.value {
                        out.push_str(v);
                    }
                }
                NodeKind::Element => self.collect_text(cid, out),
                NodeKind::Attribute => {}
            }
            c = n.next_sibling;
        }
    }

    /// The *direct* text of an element: concatenation of its immediate
    /// text children only. This matters for mixed content such as the
    /// paper's `<year>2000 <movie>…</movie></year>` shape, where the
    /// year's own value must not swallow the nested movie titles.
    pub fn direct_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        let mut c = self.node(id).first_child;
        while let Some(cid) = c {
            let n = self.node(cid);
            if n.kind == NodeKind::Text {
                if let Some(v) = &n.value {
                    out.push_str(v);
                }
            }
            c = n.next_sibling;
        }
        out
    }

    /// Statistics used by the dataset generators to hit the paper's
    /// document size (73,142 nodes / 1.44 MB for the DBLP subset).
    pub fn stats(&self) -> DocStats {
        let mut s = DocStats::default();
        for n in &self.nodes {
            match n.kind {
                NodeKind::Element => s.elements += 1,
                NodeKind::Attribute => s.attributes += 1,
                NodeKind::Text => {
                    s.text_nodes += 1;
                    s.text_bytes += n.value.as_deref().map_or(0, str::len);
                }
            }
        }
        s.labels = self.interner.len();
        s
    }
}

/// Simple size statistics for a document.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DocStats {
    /// Number of element nodes.
    pub elements: usize,
    /// Number of attribute nodes.
    pub attributes: usize,
    /// Number of text nodes.
    pub text_nodes: usize,
    /// Total bytes of text content.
    pub text_bytes: usize,
    /// Number of distinct labels (including `#text`).
    pub labels: usize,
}

impl DocStats {
    /// Total node count.
    pub fn total_nodes(&self) -> usize {
        self.elements + self.attributes + self.text_nodes
    }
}

/// A streaming builder mirroring SAX-style events, used by the XML text
/// parser and handy for generators.
///
/// ```
/// use xmldb::DocumentBuilder;
/// let mut b = DocumentBuilder::new("bib");
/// b.open("book");
/// b.attr("year", "1994");
/// b.leaf("title", "TCP/IP Illustrated");
/// b.close();
/// let doc = b.finish();
/// assert_eq!(doc.nodes_labeled("book").len(), 1);
/// ```
#[derive(Debug)]
pub struct DocumentBuilder {
    doc: Document,
    root: NodeId,
    stack: Vec<NodeId>,
}

impl DocumentBuilder {
    /// Start a document whose root element is `root_label`.
    pub fn new(root_label: &str) -> Self {
        let doc = Document::new(root_label);
        let root = doc.root();
        DocumentBuilder {
            doc,
            root,
            stack: vec![root],
        }
    }

    fn top(&self) -> NodeId {
        self.stack.last().copied().unwrap_or(self.root)
    }

    /// Open a child element and descend into it.
    pub fn open(&mut self, label: &str) -> NodeId {
        let id = self.doc.add_element(self.top(), label);
        self.stack.push(id);
        id
    }

    /// Add an attribute to the currently open element.
    pub fn attr(&mut self, name: &str, value: &str) -> NodeId {
        self.doc.add_attribute(self.top(), name, value)
    }

    /// Add a text child to the currently open element.
    pub fn text(&mut self, text: &str) -> NodeId {
        self.doc.add_text(self.top(), text)
    }

    /// Add a `<label>text</label>` child without descending.
    pub fn leaf(&mut self, label: &str, text: &str) -> NodeId {
        self.doc.add_leaf(self.top(), label, text)
    }

    /// Close the current element, ascending to its parent.
    ///
    /// # Panics
    /// Panics when attempting to close the root.
    pub fn close(&mut self) {
        assert!(self.stack.len() > 1, "cannot close the root element");
        self.stack.pop();
    }

    /// Depth of the currently open element (root = 0).
    pub fn depth(&self) -> usize {
        self.stack.len() - 1
    }

    /// Finalize and return the document. Remaining open elements are
    /// closed implicitly.
    pub fn finish(mut self) -> Document {
        self.doc.finalize();
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let mut d = Document::new("movies");
        let root = d.root();
        let m1 = d.add_element(root, "movie");
        d.add_leaf(m1, "title", "Traffic");
        d.add_leaf(m1, "director", "Steven Soderbergh");
        let m2 = d.add_element(root, "movie");
        d.add_leaf(m2, "title", "A Beautiful Mind");
        d.add_leaf(m2, "director", "Ron Howard");
        d.finalize();
        d
    }

    #[test]
    fn builds_and_finalizes() {
        let d = sample();
        assert!(d.is_finalized());
        assert_eq!(d.nodes_labeled("movie").len(), 2);
        assert_eq!(d.nodes_labeled("title").len(), 2);
        assert_eq!(d.nodes_labeled("nonexistent").len(), 0);
    }

    #[test]
    fn preorder_is_document_order() {
        let d = sample();
        let titles = d.nodes_labeled("title");
        assert!(d.node(titles[0]).pre < d.node(titles[1]).pre);
        assert_eq!(d.string_value(titles[0]), "Traffic");
        assert_eq!(d.string_value(titles[1]), "A Beautiful Mind");
    }

    #[test]
    fn depths_are_assigned() {
        let d = sample();
        assert_eq!(d.node(d.root()).depth, 0);
        let m = d.nodes_labeled("movie")[0];
        assert_eq!(d.node(m).depth, 1);
        let t = d.nodes_labeled("title")[0];
        assert_eq!(d.node(t).depth, 2);
    }

    #[test]
    fn string_value_concatenates_descendants() {
        let d = sample();
        let m = d.nodes_labeled("movie")[0];
        assert_eq!(d.string_value(m), "TrafficSteven Soderbergh");
    }

    #[test]
    fn direct_text_ignores_nested_elements() {
        let mut d = Document::new("year");
        let root = d.root();
        d.add_text(root, "2000");
        let m = d.add_element(root, "movie");
        d.add_leaf(m, "title", "Traffic");
        d.finalize();
        assert_eq!(d.direct_text(root), "2000");
        assert_eq!(d.string_value(root), "2000Traffic");
    }

    #[test]
    fn attributes_have_values() {
        let mut d = Document::new("bib");
        let root = d.root();
        let b = d.add_element(root, "book");
        d.add_attribute(b, "year", "1994");
        d.finalize();
        let y = d.nodes_labeled("year")[0];
        assert!(d.node(y).is_attribute());
        assert_eq!(d.string_value(y), "1994");
    }

    #[test]
    fn builder_round_trip() {
        let mut b = DocumentBuilder::new("bib");
        b.open("book");
        b.attr("year", "1994");
        b.leaf("title", "TCP/IP Illustrated");
        b.open("author");
        b.leaf("last", "Stevens");
        b.leaf("first", "W.");
        b.close();
        b.close();
        let d = b.finish();
        assert_eq!(d.nodes_labeled("book").len(), 1);
        assert_eq!(d.nodes_labeled("last").len(), 1);
        assert_eq!(d.string_value(d.nodes_labeled("author")[0]), "StevensW.");
    }

    #[test]
    fn builder_auto_closes_on_finish() {
        let mut b = DocumentBuilder::new("r");
        b.open("a");
        b.open("b");
        let d = b.finish(); // no explicit closes
        assert!(d.is_finalized());
        assert_eq!(d.nodes_labeled("b").len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot close the root")]
    fn builder_refuses_to_close_root() {
        let mut b = DocumentBuilder::new("r");
        b.close();
    }

    #[test]
    fn stats_count_kinds() {
        let d = sample();
        let s = d.stats();
        assert_eq!(s.elements, 1 + 2 + 4); // movies + 2 movie + 2 title + 2 director
        assert_eq!(s.text_nodes, 4);
        assert_eq!(s.attributes, 0);
        assert_eq!(s.total_nodes(), d.len());
    }

    #[test]
    fn labels_excludes_text() {
        let d = sample();
        let labels = d.labels();
        assert!(labels.contains(&"movie"));
        assert!(!labels.contains(&"#text"));
    }

    #[test]
    fn postorder_root_is_last() {
        let d = sample();
        let max_post = d.nodes.iter().map(|n| n.post).max().unwrap();
        assert_eq!(d.node(d.root()).post, max_post);
    }
}
