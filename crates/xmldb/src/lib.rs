#![warn(missing_docs)]
// Query-path crate: loading and navigating documents must surface
// malformed input as `XmlError`/`Option`, never a process abort. The
// few remaining `assert!`s are documented API contracts on impossible
// states, not data-dependent paths.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # xmldb — an in-memory native XML database
//!
//! This crate is the [Timber](https://dl.acm.org/doi/10.1007/s00778-002-0081-x)
//! substrate of the NaLIX reproduction: a compact, indexed, in-memory XML
//! store over which the Schema-Free XQuery engine (crate `xquery`) and the
//! keyword-search baseline (crate `keyword`) evaluate queries.
//!
//! ## Data model
//!
//! A [`Document`] stores its nodes in a **columnar (struct-of-arrays)
//! arena**: every per-node field — label, kind, the five navigation
//! links, the ranks, and the text offset into one shared string heap —
//! lives in its own contiguous array (the crate-private `arena`
//! module). Each node is an
//! *element*, an *attribute* or a *text* node and carries an interned
//! label ([`Symbol`]). [`Document::node`] assembles the cheap `Copy`
//! view [`Node`] from the columns; hot loops use the single-column
//! accessors ([`Document::pre`], [`Document::kind`], …) instead. After
//! [`Document::finalize`] every node additionally carries its **pre-order**
//! and **post-order** rank and its depth, which makes ancestor tests O(1)
//! and lowest-common-ancestor (LCA) computation O(depth) — the primitives
//! the `mqf()` (meaningful query focus) implementation is built on.
//!
//! ## Quick start
//!
//! ```
//! use xmldb::Document;
//!
//! let doc = Document::parse_str(
//!     "<movies><movie><title>Traffic</title>\
//!      <director>Steven Soderbergh</director></movie></movies>").unwrap();
//! let titles = doc.nodes_labeled("title");
//! assert_eq!(doc.string_value(titles[0]), "Traffic");
//! ```
//!
//! ## Modules
//!
//! - [`interner`] — string interning for element/attribute names.
//! - [`node`] — node storage and identifiers.
//! - [`document`] — the document arena, builder API, and label index.
//! - [`xml`] — XML text parsing and serialisation.
//! - [`axes`] — navigation (ancestors, descendants, children), subtree
//!   containment, and LCA.
//! - [`datasets`] — the evaluation datasets: the movies database of the
//!   paper's Figure 1, a seeded DBLP-shaped generator, and the W3C XMP
//!   `bib.xml` sample.
//!
//! ## Observability
//!
//! The [`axes`] primitives count their work (`lca_queries`,
//! `child_toward_queries`, `subtree_probes`) in the process-wide
//! [`obs::global`] registry — these are the structural-join
//! cost drivers behind `mqf()` evaluation upstairs. See
//! `docs/OBSERVABILITY.md` in the repository root for the catalog.

pub(crate) mod arena;
pub mod axes;
pub mod datasets;
pub mod document;
pub mod interner;
pub mod node;
pub(crate) mod structindex;
pub mod update;
pub mod xml;

pub use axes::SubtreeProbeCursor;
pub use document::{DocStats, Document, DocumentBuilder, MemoryFootprint};
pub use interner::{Interner, Symbol};
pub use node::{Node, NodeId, NodeIdOverflow, NodeKind};
pub use update::{CommitStrategy, Edit, NewNode, PendingUpdate, UpdateError, UpdateStats, ValueOp};
pub use xml::XmlError;
