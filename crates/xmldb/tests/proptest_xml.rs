//! Property tests for the XML substrate: the text parser must never
//! panic on arbitrary input, escaping must round-trip arbitrary
//! content, and the order/depth bookkeeping must stay consistent on
//! arbitrary tree shapes.

use proptest::prelude::*;
use xmldb::{Document, NodeId};

proptest! {
    /// Arbitrary bytes are either parsed or rejected — never a panic.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = Document::parse_str(&input);
    }

    /// Arbitrary (possibly hostile) text content survives
    /// escape→serialise→parse *exactly*: the serializer writes edge
    /// whitespace as numeric references, so even padded values are
    /// preserved (the write path relies on this).
    #[test]
    fn content_round_trips_through_escaping(text in ".{0,60}") {
        let mut d = Document::new("r");
        let root = d.root();
        d.add_leaf(root, "x", &text);
        d.finalize();
        let xml = d.to_xml(root);
        let d2 = Document::parse_str(&xml).expect("serialised XML parses");
        let x = d2.nodes_labeled("x")[0];
        prop_assert_eq!(d2.string_value(x), text);
    }

    /// Attribute values round-trip too.
    #[test]
    fn attributes_round_trip(value in "[^\u{0}]{0,40}") {
        let mut d = Document::new("r");
        let root = d.root();
        let e = d.add_element(root, "x");
        d.add_attribute(e, "a", &value);
        d.finalize();
        let xml = d.to_xml(root);
        let d2 = Document::parse_str(&xml).expect("serialised XML parses");
        let a = d2.nodes_labeled("a")[0];
        prop_assert_eq!(d2.string_value(a), value);
    }

    /// Pre/post orders and depths are consistent for random tree shapes
    /// (encoded as a sequence of "go down / go up / add leaf" moves).
    #[test]
    fn orders_are_consistent(moves in proptest::collection::vec(0u8..3, 0..60)) {
        let mut d = Document::new("root");
        let mut stack = vec![d.root()];
        for m in moves {
            match m {
                0 => {
                    let top = *stack.last().unwrap();
                    let child = d.add_element(top, "n");
                    stack.push(child);
                }
                1 => {
                    if stack.len() > 1 {
                        stack.pop();
                    }
                }
                _ => {
                    let top = *stack.last().unwrap();
                    d.add_leaf(top, "leaf", "v");
                }
            }
        }
        d.finalize();
        // every node: parent's pre < node's pre, parent's post > node's post,
        // depth = parent depth + 1
        for i in 0..d.len() {
            let id = NodeId::from_index(i);
            if let Some(p) = d.node(id).parent {
                prop_assert!(d.node(p).pre < d.node(id).pre);
                prop_assert!(d.node(p).post > d.node(id).post);
                prop_assert_eq!(d.node(p).depth + 1, d.node(id).depth);
                prop_assert!(d.is_proper_ancestor(p, id));
            }
        }
        // pre orders are a permutation of 0..len
        let mut pres: Vec<u32> = (0..d.len()).map(|i| d.node(NodeId::from_index(i)).pre).collect();
        pres.sort_unstable();
        prop_assert_eq!(pres, (0..d.len() as u32).collect::<Vec<_>>());
    }

    /// `count_label_in_subtree` agrees with a brute-force walk.
    #[test]
    fn subtree_counts_match_walk(moves in proptest::collection::vec(0u8..3, 0..40)) {
        let mut d = Document::new("root");
        let mut stack = vec![d.root()];
        for m in moves {
            match m {
                0 => {
                    let top = *stack.last().unwrap();
                    stack.push(d.add_element(top, "a"));
                }
                1 => {
                    if stack.len() > 1 {
                        stack.pop();
                    }
                }
                _ => {
                    let top = *stack.last().unwrap();
                    d.add_element(top, "b");
                }
            }
        }
        d.finalize();
        let sym_a = d.lookup("a");
        for i in 0..d.len() {
            let id = NodeId::from_index(i);
            if let Some(sa) = sym_a {
                let indexed = d.count_label_in_subtree(sa, id);
                let walked = std::iter::once(id)
                    .chain(d.descendants(id))
                    .filter(|&n| d.label(n) == "a")
                    .count();
                prop_assert_eq!(indexed, walked);
            }
        }
    }
}
