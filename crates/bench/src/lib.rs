//! Shared fixtures for the benchmark suite and the experiment binaries.

use xmldb::datasets::dblp::{generate, DblpConfig};
use xmldb::Document;

/// Representative natural-language queries used by the translation and
/// evaluation benches — one per query feature class the paper's system
/// supports (plain retrieval, value predicate, schema-free join,
/// aggregation with grouping, nesting with counts, sorting, string
/// predicates).
pub const BENCH_QUERIES: [&str; 7] = [
    "Return the title and the authors of every book.",
    "Return the year and title of every book published by Addison-Wesley after 1991.",
    "Return the titles of books, where the author of the book contains \"Suciu\".",
    "Return the title of every book and the lowest year of the title.",
    "Return the title and the authors of every book, where the number of authors of the book is at least 1.",
    "Return the title of every book, sorted by title.",
    "Find all titles that contain \"XML\".",
];

/// The canonical accepted English phrasing of each of the nine XMP
/// user-study tasks, as `(task label, question)` pairs in paper order —
/// the workload of the batch-throughput bench and the `batch` binary.
pub fn xmp_questions() -> Vec<(&'static str, &'static str)> {
    userstudy::tasks::ALL_TASKS
        .iter()
        .map(|t| {
            let q = userstudy::phrasings::nl_pool(*t)
                .into_iter()
                .find(|p| p.kind == userstudy::phrasings::PoolKind::Good)
                .expect("every XMP task has an accepted phrasing")
                .text;
            (t.label(), q)
        })
        .collect()
}

/// A DBLP corpus scaled by a factor over the test-size config
/// (`scale = 1` ≈ 360 entries; `scale = 20` ≈ paper scale).
pub fn corpus(scale: usize) -> Document {
    generate(&DblpConfig {
        books: 40 * scale,
        articles: 80 * scale,
        seed: 7,
    })
}

/// The paper-scale corpus (~73k nodes).
pub fn paper_corpus() -> Document {
    generate(&DblpConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalix::{Nalix, Outcome};

    #[test]
    fn bench_queries_all_translate() {
        let doc = corpus(1);
        let nalix = Nalix::new(doc.clone());
        for q in BENCH_QUERIES {
            assert!(
                matches!(nalix.query(q), Outcome::Translated(_)),
                "bench query must translate: {q}"
            );
        }
    }

    #[test]
    fn corpus_scales() {
        assert!(corpus(2).len() > corpus(1).len());
    }

    #[test]
    fn xmp_questions_cover_all_nine_tasks_and_translate() {
        let qs = xmp_questions();
        assert_eq!(qs.len(), 9);
        let doc = corpus(1);
        let nalix = Nalix::new(doc.clone());
        for (label, q) in qs {
            assert!(
                matches!(nalix.query(q), Outcome::Translated(_)),
                "{label} phrasing must translate: {q}"
            );
        }
    }
}
