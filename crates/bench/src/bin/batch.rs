//! Batch-throughput scaling experiment: the nine XMP user-study tasks
//! evaluated over the paper-scale DBLP corpus (~73k nodes), serially
//! and on 2/4/8-thread pools sharing one `Nalix` instance.
//!
//! ```console
//! $ cargo run --release -p bench --bin batch [--quick] [--prom]
//! ```
//!
//! Every parallel run's replies are checked to be identical to the
//! serial run's, query by query — parallelism here is a scheduling
//! change only, never a semantic one. The program exits non-zero if
//! any reply diverges.
//!
//! After the timing table the program prints the per-stage
//! latency/outcome breakdown accumulated in the process-wide metrics
//! registry; `--prom` additionally dumps the same snapshot in
//! Prometheus text exposition format.

use nalix::{BatchReply, BatchRunner, Nalix};
use std::time::Instant;

/// Render a reply so divergence checks compare full content.
fn render(reply: &BatchReply) -> String {
    match reply {
        Ok(values) => format!("ok:{}", values.join("\u{1f}")),
        Err(r) => format!(
            "rejected:{}",
            r.errors
                .iter()
                .map(|f| f.message())
                .collect::<Vec<_>>()
                .join("\u{1f}")
        ),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let prom = std::env::args().any(|a| a == "--prom");
    let repeats = if quick { 4 } else { 20 };

    eprintln!("generating the paper-scale DBLP corpus …");
    let doc = std::sync::Arc::new(bench::paper_corpus());
    // Share the process-wide registry so the breakdown below covers
    // everything this binary does, deep index counters included.
    let nalix = std::sync::Arc::new(Nalix::with_metrics(doc.clone(), obs::global_handle()));

    // The nine tasks, tiled `repeats` times — a 9×repeats-query batch.
    let tasks = bench::xmp_questions();
    let questions: Vec<&str> = (0..repeats)
        .flat_map(|_| tasks.iter().map(|(_, q)| *q))
        .collect();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "batch of {} queries (9 XMP tasks × {repeats}) over {} nodes, \
         {cores} hardware thread(s)",
        questions.len(),
        doc.len()
    );
    if cores < 8 {
        eprintln!(
            "note: fewer than 8 hardware threads — speedups will be capped \
             near {cores}×; the replies-identical check still runs"
        );
    }

    // Warm the translation cache and the engine's value index once so
    // every timed configuration faces the same steady-state system.
    for (_, q) in &tasks {
        let _ = nalix.ask(q);
    }

    let serial_runner = BatchRunner::new(nalix.clone(), 1);
    let t0 = Instant::now();
    let serial = serial_runner.run(&questions);
    let serial_s = t0.elapsed().as_secs_f64();
    let qps = questions.len() as f64 / serial_s;
    println!(
        "{:>8}  {:>10}  {:>10}  {:>8}",
        "threads", "wall (s)", "queries/s", "speedup"
    );
    println!("{:>8}  {:>10.3}  {:>10.1}  {:>8.2}", 1, serial_s, qps, 1.0);

    let mut failed = false;
    for threads in [2usize, 4, 8] {
        let runner = BatchRunner::new(nalix.clone(), threads);
        let t0 = Instant::now();
        let replies = runner.run(&questions);
        let secs = t0.elapsed().as_secs_f64();
        let identical = replies.len() == serial.len()
            && replies
                .iter()
                .zip(&serial)
                .all(|(a, b)| render(a) == render(b));
        if !identical {
            eprintln!("!! replies diverged from serial at {threads} threads");
            failed = true;
        }
        println!(
            "{:>8}  {:>10.3}  {:>10.1}  {:>8.2}{}",
            threads,
            secs,
            questions.len() as f64 / secs,
            serial_s / secs,
            if identical { "" } else { "  DIVERGED" }
        );
    }

    let snapshot = nalix.metrics();
    println!("\nper-stage breakdown (whole process, warm-up included):");
    println!("{snapshot}");
    if prom {
        println!("{}", snapshot.to_prometheus());
    }

    if failed {
        std::process::exit(1);
    }
}
