//! Regenerates **Figure 11** of the paper: average time (seconds) and
//! average number of iterations needed per XMP search task for a
//! participant to formulate a NaLIX-acceptable query with the best
//! results.
//!
//! ```console
//! $ cargo run --release -p bench --bin fig11 [--quick]
//! ```
//!
//! Paper reference values: per-task mean time mostly < 90 s with a
//! ≈ 50 s floor; mean iterations < 2 with 3.8 for the worst task; at
//! least one participant succeeded on the first attempt for every task.

use userstudy::{run_experiment, ExperimentConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = std::env::args().any(|a| a == "--csv");
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    eprintln!(
        "running the user study: {} participants × 9 tasks × 2 interfaces …",
        cfg.participants
    );
    let results = run_experiment(&cfg);

    if csv {
        // Machine-readable series for replotting the figure.
        println!(
            "task,avg_time_s,se_time_s,avg_iterations,se_iterations,max_iterations,min_iterations"
        );
        for r in &results.fig11 {
            println!(
                "{},{:.2},{:.2},{:.3},{:.3},{},{}",
                r.task.label(),
                r.avg_time_s,
                r.se_time_s,
                r.avg_iterations,
                r.se_iterations,
                r.max_iterations,
                r.min_iterations
            );
        }
        return;
    }

    println!(
        "Figure 11 — average time and iterations per search task \
         ({} simulated participants, seed {})",
        cfg.participants, cfg.seed
    );
    println!(
        "{:<5} {:>10} {:>8} {:>10} {:>8} {:>5} {:>5}",
        "task", "avg time", "±se", "avg iter", "±se", "max", "min"
    );
    for r in &results.fig11 {
        println!(
            "{:<5} {:>9.1}s {:>8.1} {:>10.2} {:>8.2} {:>5} {:>5}",
            r.task.label(),
            r.avg_time_s,
            r.se_time_s,
            r.avg_iterations,
            r.se_iterations,
            r.max_iterations,
            r.min_iterations
        );
    }
    let overall_it = results.overall_iterations();
    let worst = results
        .fig11
        .iter()
        .map(|r| r.avg_iterations)
        .fold(0.0f64, f64::max);
    let first_try_tasks = results
        .fig11
        .iter()
        .filter(|r| r.max_iterations == 0)
        .count();
    println!();
    println!("overall mean iterations: {overall_it:.2}   (paper: < 2)");
    println!("worst-task mean iterations: {worst:.2}   (paper: 3.8)");
    println!(
        "tasks where every participant succeeded on the first attempt: {first_try_tasks}/9 \
         (paper: about half)"
    );
    println!(
        "tasks where some participant succeeded on the first attempt: {}/9 (paper: 9/9)",
        results
            .fig11
            .iter()
            .filter(|r| r.min_iterations == 0)
            .count()
    );
    println!(
        "simulated satisfaction: {:.2}/5   (paper questionnaire: 4.11/5)",
        results.satisfaction()
    );
    println!("\nper-stage breakdown (whole study):");
    println!("{}", obs::global().snapshot());
}
