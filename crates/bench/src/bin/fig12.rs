//! Regenerates **Figure 12** of the paper: average precision and recall
//! per search task, NaLIX versus the Meet-based keyword-search
//! interface.
//!
//! ```console
//! $ cargo run --release -p bench --bin fig12 [--quick]
//! ```
//!
//! Paper reference values: NaLIX average precision 83.0 % (worst-task
//! 70.9 %), average recall 90.1 % (worst-task 79.4 %), perfect recall
//! on 2 of 9 tasks; keyword search consistently worse, collapsing on
//! the aggregation/sorting tasks Q7 and Q10.

use userstudy::{run_experiment, ExperimentConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = std::env::args().any(|a| a == "--csv");
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    eprintln!(
        "running the user study: {} participants × 9 tasks × 2 interfaces …",
        cfg.participants
    );
    let results = run_experiment(&cfg);

    if csv {
        // Machine-readable series for replotting the figure.
        println!("task,nalix_precision,nalix_recall,keyword_precision,keyword_recall");
        for r in &results.fig12 {
            println!(
                "{},{:.4},{:.4},{:.4},{:.4}",
                r.task.label(),
                r.nalix_p,
                r.nalix_r,
                r.keyword_p,
                r.keyword_r
            );
        }
        return;
    }

    println!(
        "Figure 12 — average precision and recall per search task \
         ({} simulated participants, seed {})",
        cfg.participants, cfg.seed
    );
    println!(
        "{:<5} {:>9} {:>9}   {:>9} {:>9}",
        "task", "NaLIX P", "NaLIX R", "keyword P", "keyword R"
    );
    for r in &results.fig12 {
        println!(
            "{:<5} {:>8.1}% {:>8.1}%   {:>8.1}% {:>8.1}%",
            r.task.label(),
            100.0 * r.nalix_p,
            100.0 * r.nalix_r,
            100.0 * r.keyword_p,
            100.0 * r.keyword_r
        );
    }

    let avg = |xs: Vec<f64>| xs.iter().sum::<f64>() / xs.len() as f64;
    let np = avg(results.fig12.iter().map(|r| r.nalix_p).collect());
    let nr = avg(results.fig12.iter().map(|r| r.nalix_r).collect());
    let kp = avg(results.fig12.iter().map(|r| r.keyword_p).collect());
    let kr = avg(results.fig12.iter().map(|r| r.keyword_r).collect());
    let worst_p = results
        .fig12
        .iter()
        .map(|r| r.nalix_p)
        .fold(1.0f64, f64::min);
    let worst_r = results
        .fig12
        .iter()
        .map(|r| r.nalix_r)
        .fold(1.0f64, f64::min);
    let perfect_recall = results.fig12.iter().filter(|r| r.nalix_r > 0.999).count();

    println!();
    println!(
        "NaLIX   : avg P {:>5.1}% (paper 83.0%), avg R {:>5.1}% (paper 90.1%)",
        100.0 * np,
        100.0 * nr
    );
    println!(
        "          worst-task P {:>5.1}% (paper 70.9%), worst-task R {:>5.1}% (paper 79.4%)",
        100.0 * worst_p,
        100.0 * worst_r
    );
    println!("          tasks with perfect recall: {perfect_recall} (paper: 2)");
    println!(
        "keyword : avg P {:>5.1}%, avg R {:>5.1}% — NaLIX wins every task: {}",
        100.0 * kp,
        100.0 * kr,
        results
            .fig12
            .iter()
            .all(|r| r.nalix_p + r.nalix_r > r.keyword_p + r.keyword_r)
    );
    println!("\nper-stage breakdown (whole study):");
    println!("{}", obs::global().snapshot());
}
