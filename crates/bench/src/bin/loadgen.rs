//! HTTP load generator for `nalixd`: the nine XMP user-study tasks as
//! a mixed closed-loop workload over real sockets.
//!
//! ```console
//! $ cargo run --release -p bench --bin loadgen -- [--quick] [--docs]
//! ```
//!
//! By default the program self-hosts: it builds the DBLP corpus, boots
//! an in-process [`server::Server`] over a [`store::DocumentStore`]
//! (the bench corpus injected via [`DocSpec::memory`] as the default
//! `dblp` document), drives it with 16 concurrent connections (one
//! request per connection, like the server's wire contract), and
//! verifies **every** HTTP answer against the in-process
//! `Nalix::answer_full` oracle — the serving layer must be a
//! transparent transport. It then provokes overload against a
//! 1-worker/1-slot server and checks the shed contract (503 +
//! `Retry-After`). Exit status is non-zero on any transport error,
//! oracle mismatch, or missing shed.
//!
//! `--docs` exercises per-document routing: the workload round-robins
//! across two corpora (`dblp` and the builtin `movies`), every request
//! names its document explicitly, and every answer is checked against
//! that document's own oracle.
//!
//! `--addr HOST:PORT` skips self-hosting and targets a running nalixd
//! (oracle verification then requires the server's `dblp` to be the
//! builtin paper-scale corpus, i.e. no `--quick`; `--docs` also needs
//! the builtin `movies` registered, which nalixd always does).

use nalix::Nalix;
use server::json::Json;
use server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use store::{DocSpec, DocumentStore, StoreConfig};

struct Args {
    addr: Option<String>,
    connections: usize,
    rounds: usize,
    quick: bool,
    docs: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        connections: 16,
        rounds: 8,
        quick: false,
        docs: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => {
                args.quick = true;
                args.rounds = 2;
            }
            "--docs" => args.docs = true,
            "--addr" => args.addr = it.next(),
            "--connections" => {
                if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                    args.connections = n;
                }
            }
            "--rounds" => {
                if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                    args.rounds = n;
                }
            }
            other => {
                eprintln!("loadgen: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One unit of workload: a question routed to a named document (or the
/// server default when `doc` is `None`), with its precomputed oracle.
struct Task {
    doc: Option<&'static str>,
    question: String,
    expected: Vec<String>,
}

/// One HTTP round trip: connect, POST the question (optionally naming
/// a document), read the reply. Returns (status, body, latency) or an
/// error string (a *transport* failure — HTTP error statuses are not
/// transport failures).
fn query_once(
    addr: &str,
    question: &str,
    doc: Option<&str>,
) -> Result<(u16, String, Duration), String> {
    let t0 = Instant::now();
    // An explicit generous deadline: at paper scale under full
    // concurrency the aggregation tasks legitimately exceed the 2 s
    // server default, and this harness measures fidelity and
    // throughput, not deadline policy (the shed test covers overload).
    let body = match doc {
        Some(d) => {
            format!("{{\"question\": {question:?}, \"doc\": {d:?}, \"deadline_ms\": 30000}}")
        }
        None => format!("{{\"question\": {question:?}, \"deadline_ms\": 30000}}"),
    };
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("timeout: {e}"))?;
    write!(
        stream,
        "POST /query HTTP/1.1\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .map_err(|e| format!("write: {e}"))?;
    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = reply
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {:?}", reply.lines().next()))?;
    let payload = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload, t0.elapsed()))
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives `connections` closed-loop clients over the mixed workload
/// and checks every answer against its task's oracle. Returns false
/// on any transport error or oracle mismatch.
fn run_load(addr: &str, connections: usize, rounds: usize, tasks: &[Task]) -> bool {
    let transport_errors = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let sheds = AtomicU64::new(0);
    let mut all_latencies: Vec<u64> = Vec::new();
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let transport_errors = &transport_errors;
                let mismatches = &mismatches;
                let sheds = &sheds;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(rounds * tasks.len());
                    for round in 0..rounds {
                        for i in 0..tasks.len() {
                            // Offset by connection id so the tasks hit
                            // the server interleaved, not in lockstep —
                            // in --docs mode this also interleaves the
                            // two corpora on every worker.
                            let qi = (i + c + round) % tasks.len();
                            let task = &tasks[qi];
                            match query_once(addr, &task.question, task.doc) {
                                Ok((200, body, dt)) => {
                                    latencies.push(dt.as_nanos() as u64);
                                    if !answers_match(&body, &task.expected) {
                                        eprintln!(
                                            "loadgen: oracle mismatch on doc {:?} for {:?}",
                                            task.doc.unwrap_or("<default>"),
                                            task.question
                                        );
                                        mismatches.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Ok((503, _, _)) => {
                                    sheds.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok((status, body, _)) => {
                                    eprintln!(
                                        "loadgen: unexpected HTTP {status} for {:?}: {body}",
                                        task.question
                                    );
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    eprintln!("loadgen: transport error: {e}");
                                    transport_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    latencies
                })
            })
            .collect();
        for h in handles {
            if let Ok(lats) = h.join() {
                all_latencies.extend(lats);
            } else {
                transport_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    let wall = t0.elapsed();
    all_latencies.sort_unstable();
    let total = connections * rounds * tasks.len();
    let errors = transport_errors.load(Ordering::SeqCst);
    let wrong = mismatches.load(Ordering::SeqCst);
    let shed = sheds.load(Ordering::SeqCst);
    println!(
        "loadgen: {total} requests over {connections} connections in {:.2}s \
         ({:.0} req/s)",
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64()
    );
    println!(
        "  p50 {:.2} ms   p90 {:.2} ms   p99 {:.2} ms",
        percentile(&all_latencies, 0.50) as f64 / 1e6,
        percentile(&all_latencies, 0.90) as f64 / 1e6,
        percentile(&all_latencies, 0.99) as f64 / 1e6,
    );
    println!("  transport errors: {errors}   shed (503): {shed}   oracle mismatches: {wrong}");
    errors == 0 && wrong == 0
}

/// Compares the `answers` array of a 200 body to the oracle values.
fn answers_match(body: &str, expected: &[String]) -> bool {
    let Ok(parsed) = Json::parse(body) else {
        return false;
    };
    let Some(answers) = parsed.get("answers").and_then(Json::as_array) else {
        return false;
    };
    answers.len() == expected.len()
        && answers
            .iter()
            .zip(expected)
            .all(|(a, e)| a.as_str() == Some(e.as_str()))
}

/// Computes the in-process oracle answers for a question list, one
/// `Vec<String>` per question. Exits on oracle failure: a question the
/// pipeline itself cannot answer is a workload bug, not a serving bug.
fn oracle_answers(nalix: &Nalix, questions: &[(&str, &str)]) -> Vec<Vec<String>> {
    let budget = xquery::EvalBudget::default();
    questions
        .iter()
        .map(|(label, q)| match nalix.answer_full(q, &budget) {
            Ok(a) => a.values,
            Err(e) => {
                eprintln!("loadgen: oracle failed on task {label}: {e}");
                std::process::exit(2);
            }
        })
        .collect()
}

/// Provokes overload against a deliberately tiny server (1 worker with
/// injected latency, queue of 1) and checks the shed contract.
fn shed_contract_holds(store: &Arc<DocumentStore>) -> bool {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 1,
        debug_handler_delay: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    };
    let server = match Server::bind(store.clone(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen: shed-test bind failed: {e}");
            return false;
        }
    };
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let mut shed_ok = false;
    std::thread::scope(|scope| {
        let driver = scope.spawn(|| {
            let replies = std::thread::scope(|inner| {
                let hs: Vec<_> = (0..8)
                    .map(|_| {
                        let addr = addr.clone();
                        inner.spawn(move || {
                            let mut s = TcpStream::connect(&addr).ok()?;
                            s.write_all(b"GET /health HTTP/1.1\r\n\r\n").ok()?;
                            let mut reply = String::new();
                            s.read_to_string(&mut reply).ok()?;
                            Some(reply)
                        })
                    })
                    .collect();
                hs.into_iter()
                    .filter_map(|h| h.join().ok().flatten())
                    .collect::<Vec<_>>()
            });
            handle.shutdown();
            replies
                .iter()
                .filter(|r| r.starts_with("HTTP/1.1 503") && r.contains("Retry-After:"))
                .count()
        });
        let _ = server.serve();
        let shed_count = driver.join().unwrap_or(0);
        println!("loadgen: shed test: {shed_count}/8 requests shed with 503 + Retry-After");
        shed_ok = shed_count >= 1;
    });
    shed_ok
}

fn main() {
    let args = parse_args();
    let questions = bench::xmp_questions();

    eprintln!(
        "loadgen: generating the {} DBLP corpus …",
        if args.quick { "quick" } else { "paper-scale" }
    );
    let doc = Arc::new(if args.quick {
        bench::corpus(1)
    } else {
        bench::paper_corpus()
    });
    let nalix = Nalix::new(doc.clone());

    // In-process oracle answers, one per question, computed before any
    // load so cache warm-up cannot mask a serving bug. In --docs mode
    // every request names its document explicitly; otherwise all
    // traffic rides the server default.
    let dblp_doc = if args.docs { Some("dblp") } else { None };
    let mut tasks: Vec<Task> = questions
        .iter()
        .zip(oracle_answers(&nalix, &questions))
        .map(|((_, q), expected)| Task {
            doc: dblp_doc,
            question: q.to_string(),
            expected,
        })
        .collect();
    if args.docs {
        let movies_questions = [
            ("M1", "Find all the movies directed by Ron Howard."),
            ("M2", "Return every title."),
        ];
        let movies_nalix = Nalix::new(xmldb::datasets::movies::movies_and_books());
        tasks.extend(
            movies_questions
                .iter()
                .zip(oracle_answers(&movies_nalix, &movies_questions))
                .map(|((_, q), expected)| Task {
                    doc: Some("movies"),
                    question: q.to_string(),
                    expected,
                }),
        );
        eprintln!(
            "loadgen: --docs mode: round-robining {} dblp + {} movies tasks",
            questions.len(),
            movies_questions.len()
        );
    }

    let ok = match &args.addr {
        Some(addr) => {
            // External server: its corpora must match ours for the
            // oracle check to be meaningful (builtin dblp + movies).
            run_load(addr, args.connections, args.rounds, &tasks)
        }
        None => {
            // Self-hosted: a production-shaped server over a document
            // store whose default `dblp` is the bench corpus we just
            // built, injected without a disk round-trip. The builtin
            // `movies` rides along for --docs routing.
            let store = Arc::new(DocumentStore::with_builtins(StoreConfig {
                default_doc: "dblp".to_string(),
                ..StoreConfig::default()
            }));
            if let Err(e) = store.put("dblp", DocSpec::memory("dblp-bench", doc.clone())) {
                eprintln!("loadgen: store setup failed: {e}");
                std::process::exit(2);
            }
            let config = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServerConfig::default()
            };
            let server = match Server::bind(store.clone(), config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("loadgen: bind failed: {e}");
                    std::process::exit(2);
                }
            };
            let addr = server.local_addr().to_string();
            let handle = server.handle();
            let mut load_ok = false;
            std::thread::scope(|scope| {
                let driver = scope.spawn(|| {
                    let ok = run_load(&addr, args.connections, args.rounds, &tasks);
                    handle.shutdown();
                    ok
                });
                let report = server.serve();
                load_ok = driver.join().unwrap_or(false);
                if let Ok(report) = report {
                    eprintln!(
                        "loadgen: server drained; served {} shed {}",
                        report.served, report.shed
                    );
                }
            });
            load_ok && shed_contract_holds(&store)
        }
    };

    if ok {
        println!("loadgen: PASS");
    } else {
        println!("loadgen: FAIL");
        std::process::exit(1);
    }
}
