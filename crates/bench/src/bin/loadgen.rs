//! HTTP load generator for `nalixd`: the nine XMP user-study tasks as
//! a mixed closed-loop workload over real sockets.
//!
//! ```console
//! $ cargo run --release -p bench --bin loadgen -- [--quick]
//! ```
//!
//! By default the program self-hosts: it builds the DBLP corpus, boots
//! an in-process [`server::Server`], drives it with 16 concurrent
//! connections (one request per connection, like the server's wire
//! contract), and verifies **every** HTTP answer against the
//! in-process `Nalix::answer_full` oracle — the serving layer must be
//! a transparent transport. It then provokes overload against a
//! 1-worker/1-slot server and checks the shed contract (503 +
//! `Retry-After`). Exit status is non-zero on any transport error,
//! oracle mismatch, or missing shed.
//!
//! `--addr HOST:PORT` skips self-hosting and targets a running nalixd
//! (oracle verification then requires `--dataset` to match the
//! server's; the default workload assumes `--dataset dblp`).

use nalix::Nalix;
use server::json::Json;
use server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct Args {
    addr: Option<String>,
    connections: usize,
    rounds: usize,
    quick: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        connections: 16,
        rounds: 8,
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => {
                args.quick = true;
                args.rounds = 2;
            }
            "--addr" => args.addr = it.next(),
            "--connections" => {
                if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                    args.connections = n;
                }
            }
            "--rounds" => {
                if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                    args.rounds = n;
                }
            }
            other => {
                eprintln!("loadgen: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One HTTP round trip: connect, POST the question, read the reply.
/// Returns (status, body, latency) or an error string (a *transport*
/// failure — HTTP error statuses are not transport failures).
fn query_once(addr: &str, question: &str) -> Result<(u16, String, Duration), String> {
    let t0 = Instant::now();
    // An explicit generous deadline: at paper scale under full
    // concurrency the aggregation tasks legitimately exceed the 2 s
    // server default, and this harness measures fidelity and
    // throughput, not deadline policy (the shed test covers overload).
    let body = format!("{{\"question\": {question:?}, \"deadline_ms\": 30000}}");
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("timeout: {e}"))?;
    write!(
        stream,
        "POST /query HTTP/1.1\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .map_err(|e| format!("write: {e}"))?;
    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = reply
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {:?}", reply.lines().next()))?;
    let payload = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload, t0.elapsed()))
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives `connections` closed-loop clients over the mixed nine-task
/// workload and checks every answer against `oracle` (when given).
/// Returns false on any transport error or oracle mismatch.
fn run_load(
    addr: &str,
    connections: usize,
    rounds: usize,
    questions: &[(&str, &str)],
    oracle: Option<&[Vec<String>]>,
) -> bool {
    let transport_errors = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let sheds = AtomicU64::new(0);
    let mut all_latencies: Vec<u64> = Vec::new();
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let transport_errors = &transport_errors;
                let mismatches = &mismatches;
                let sheds = &sheds;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(rounds * questions.len());
                    for round in 0..rounds {
                        for i in 0..questions.len() {
                            // Offset by connection id so the nine tasks
                            // hit the server interleaved, not in
                            // lockstep.
                            let qi = (i + c + round) % questions.len();
                            let (_, question) = questions[qi];
                            match query_once(addr, question) {
                                Ok((200, body, dt)) => {
                                    latencies.push(dt.as_nanos() as u64);
                                    if let Some(expected) = oracle {
                                        if !answers_match(&body, &expected[qi]) {
                                            mismatches.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                                Ok((503, _, _)) => {
                                    sheds.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok((status, body, _)) => {
                                    eprintln!(
                                        "loadgen: unexpected HTTP {status} for {question:?}: {body}"
                                    );
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    eprintln!("loadgen: transport error: {e}");
                                    transport_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    latencies
                })
            })
            .collect();
        for h in handles {
            if let Ok(lats) = h.join() {
                all_latencies.extend(lats);
            } else {
                transport_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    let wall = t0.elapsed();
    all_latencies.sort_unstable();
    let total = connections * rounds * questions.len();
    let errors = transport_errors.load(Ordering::SeqCst);
    let wrong = mismatches.load(Ordering::SeqCst);
    let shed = sheds.load(Ordering::SeqCst);
    println!(
        "loadgen: {total} requests over {connections} connections in {:.2}s \
         ({:.0} req/s)",
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64()
    );
    println!(
        "  p50 {:.2} ms   p90 {:.2} ms   p99 {:.2} ms",
        percentile(&all_latencies, 0.50) as f64 / 1e6,
        percentile(&all_latencies, 0.90) as f64 / 1e6,
        percentile(&all_latencies, 0.99) as f64 / 1e6,
    );
    println!("  transport errors: {errors}   shed (503): {shed}   oracle mismatches: {wrong}");
    errors == 0 && wrong == 0
}

/// Compares the `answers` array of a 200 body to the oracle values.
fn answers_match(body: &str, expected: &[String]) -> bool {
    let Ok(parsed) = Json::parse(body) else {
        return false;
    };
    let Some(answers) = parsed.get("answers").and_then(Json::as_array) else {
        return false;
    };
    answers.len() == expected.len()
        && answers
            .iter()
            .zip(expected)
            .all(|(a, e)| a.as_str() == Some(e.as_str()))
}

/// Provokes overload against a deliberately tiny server (1 worker with
/// injected latency, queue of 1) and checks the shed contract.
fn shed_contract_holds(nalix: &Nalix<'_>) -> bool {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 1,
        debug_handler_delay: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    };
    let server = match Server::bind(nalix, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen: shed-test bind failed: {e}");
            return false;
        }
    };
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let mut shed_ok = false;
    std::thread::scope(|scope| {
        let driver = scope.spawn(|| {
            let replies = std::thread::scope(|inner| {
                let hs: Vec<_> = (0..8)
                    .map(|_| {
                        let addr = addr.clone();
                        inner.spawn(move || {
                            let mut s = TcpStream::connect(&addr).ok()?;
                            s.write_all(b"GET /health HTTP/1.1\r\n\r\n").ok()?;
                            let mut reply = String::new();
                            s.read_to_string(&mut reply).ok()?;
                            Some(reply)
                        })
                    })
                    .collect();
                hs.into_iter()
                    .filter_map(|h| h.join().ok().flatten())
                    .collect::<Vec<_>>()
            });
            handle.shutdown();
            replies
                .iter()
                .filter(|r| r.starts_with("HTTP/1.1 503") && r.contains("Retry-After:"))
                .count()
        });
        let _ = server.serve();
        let shed_count = driver.join().unwrap_or(0);
        println!("loadgen: shed test: {shed_count}/8 requests shed with 503 + Retry-After");
        shed_ok = shed_count >= 1;
    });
    shed_ok
}

fn main() {
    let args = parse_args();
    let questions = bench::xmp_questions();

    eprintln!(
        "loadgen: generating the {} DBLP corpus …",
        if args.quick { "quick" } else { "paper-scale" }
    );
    let doc = if args.quick {
        bench::corpus(1)
    } else {
        bench::paper_corpus()
    };
    let nalix = Nalix::new(&doc);

    // In-process oracle answers, one per question, computed before any
    // load so cache warm-up cannot mask a serving bug.
    let budget = xquery::EvalBudget::default();
    let oracle: Vec<Vec<String>> = questions
        .iter()
        .map(|(label, q)| match nalix.answer_full(q, &budget) {
            Ok(a) => a.values,
            Err(e) => {
                eprintln!("loadgen: oracle failed on task {label}: {e}");
                std::process::exit(2);
            }
        })
        .collect();

    let ok = match &args.addr {
        Some(addr) => {
            // External server: its dataset must match ours for the
            // oracle check to be meaningful.
            run_load(
                addr,
                args.connections,
                args.rounds,
                &questions,
                Some(&oracle),
            )
        }
        None => {
            // Self-hosted: boot a production-shaped server and drive it.
            let config = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServerConfig::default()
            };
            let server = match Server::bind(&nalix, config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("loadgen: bind failed: {e}");
                    std::process::exit(2);
                }
            };
            let addr = server.local_addr().to_string();
            let handle = server.handle();
            let mut load_ok = false;
            std::thread::scope(|scope| {
                let driver = scope.spawn(|| {
                    let ok = run_load(
                        &addr,
                        args.connections,
                        args.rounds,
                        &questions,
                        Some(&oracle),
                    );
                    handle.shutdown();
                    ok
                });
                let report = server.serve();
                load_ok = driver.join().unwrap_or(false);
                if let Ok(report) = report {
                    eprintln!(
                        "loadgen: server drained; served {} shed {}",
                        report.served, report.shed
                    );
                }
            });
            load_ok && shed_contract_holds(&nalix)
        }
    };

    if ok {
        println!("loadgen: PASS");
    } else {
        println!("loadgen: FAIL");
        std::process::exit(1);
    }
}
