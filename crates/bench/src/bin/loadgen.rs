//! HTTP load generator for `nalixd`: the nine XMP user-study tasks as
//! a mixed closed-loop workload over real sockets.
//!
//! ```console
//! $ cargo run --release -p bench --bin loadgen -- [--quick] [--docs]
//! ```
//!
//! By default the program self-hosts: it builds the DBLP corpus, boots
//! an in-process [`server::Server`] over a [`store::DocumentStore`]
//! (the bench corpus injected via [`DocSpec::memory`] as the default
//! `dblp` document), drives it with 16 concurrent connections (one
//! request per connection, like the server's wire contract), and
//! verifies **every** HTTP answer against the in-process
//! `Nalix::answer_full` oracle — the serving layer must be a
//! transparent transport. It then provokes overload against a
//! 1-worker/1-slot server and checks the shed contract (503 +
//! `Retry-After`). Exit status is non-zero on any transport error,
//! oracle mismatch, or missing shed.
//!
//! `--docs` exercises per-document routing: the workload round-robins
//! across two corpora (`dblp` and the builtin `movies`), every request
//! names its document explicitly, and every answer is checked against
//! that document's own oracle.
//!
//! `--keepalive` switches to persistent-connection mode: every
//! connection is opened once, kept open for the whole run, and drives
//! `--rounds` sequential request/response exchanges over it
//! (`Content-Length`-framed reads — the response delimiter, not EOF).
//! A few driver threads multiplex many sockets each, so
//! `--connections 5000` means five thousand genuinely concurrent
//! (mostly idle) server-side connections, not five thousand client
//! threads. Results can be persisted to `BENCH_SERVE.json` with
//! `--record <phase>` and gated against the last matching record with
//! `--check` (throughput must stay within 2× of baseline, p99 within
//! 2× + 10 ms slack).
//!
//! `--addr HOST:PORT` skips self-hosting and targets a running nalixd
//! (oracle verification then requires the server's `dblp` to be the
//! builtin paper-scale corpus, i.e. no `--quick`; `--docs` also needs
//! the builtin `movies` registered, which nalixd always does).

use nalix::Nalix;
use server::http::read_response;
use server::json::Json;
use server::{Server, ServerConfig};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use store::{DocSpec, DocumentStore, StoreConfig};

struct Args {
    addr: Option<String>,
    connections: usize,
    rounds: usize,
    quick: bool,
    docs: bool,
    keepalive: bool,
    record: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        connections: 16,
        rounds: 8,
        quick: false,
        docs: false,
        keepalive: false,
        record: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => {
                args.quick = true;
                args.rounds = 2;
            }
            "--docs" => args.docs = true,
            "--keepalive" => args.keepalive = true,
            "--check" => args.check = true,
            "--record" => args.record = it.next(),
            "--addr" => args.addr = it.next(),
            "--connections" => {
                if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                    args.connections = n;
                }
            }
            "--rounds" => {
                if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                    args.rounds = n;
                }
            }
            other => {
                eprintln!("loadgen: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One unit of workload: a question routed to a named document (or the
/// server default when `doc` is `None`), with its precomputed oracle.
struct Task {
    doc: Option<&'static str>,
    question: String,
    expected: Vec<String>,
}

/// One HTTP round trip: connect, POST the question (optionally naming
/// a document), read the reply. Returns (status, body, latency) or an
/// error string (a *transport* failure — HTTP error statuses are not
/// transport failures).
fn query_once(
    addr: &str,
    question: &str,
    doc: Option<&str>,
) -> Result<(u16, String, Duration), String> {
    let t0 = Instant::now();
    // An explicit generous deadline: at paper scale under full
    // concurrency the aggregation tasks legitimately exceed the 2 s
    // server default, and this harness measures fidelity and
    // throughput, not deadline policy (the shed test covers overload).
    let body = match doc {
        Some(d) => {
            format!("{{\"question\": {question:?}, \"doc\": {d:?}, \"deadline_ms\": 30000}}")
        }
        None => format!("{{\"question\": {question:?}, \"deadline_ms\": 30000}}"),
    };
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("timeout: {e}"))?;
    // One-shot mode opts out of keep-alive so read-to-EOF still
    // delimits the response.
    write!(
        stream,
        "POST /query HTTP/1.1\r\nContent-Type: application/json\r\n\
         Connection: close\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .map_err(|e| format!("write: {e}"))?;
    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = reply
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {:?}", reply.lines().next()))?;
    let payload = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload, t0.elapsed()))
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives `connections` closed-loop clients over the mixed workload
/// and checks every answer against its task's oracle. Returns false
/// on any transport error or oracle mismatch.
fn run_load(addr: &str, connections: usize, rounds: usize, tasks: &[Task]) -> bool {
    let transport_errors = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let sheds = AtomicU64::new(0);
    let mut all_latencies: Vec<u64> = Vec::new();
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let transport_errors = &transport_errors;
                let mismatches = &mismatches;
                let sheds = &sheds;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(rounds * tasks.len());
                    for round in 0..rounds {
                        for i in 0..tasks.len() {
                            // Offset by connection id so the tasks hit
                            // the server interleaved, not in lockstep —
                            // in --docs mode this also interleaves the
                            // two corpora on every worker.
                            let qi = (i + c + round) % tasks.len();
                            let task = &tasks[qi];
                            match query_once(addr, &task.question, task.doc) {
                                Ok((200, body, dt)) => {
                                    latencies.push(dt.as_nanos() as u64);
                                    if !answers_match(&body, &task.expected) {
                                        eprintln!(
                                            "loadgen: oracle mismatch on doc {:?} for {:?}",
                                            task.doc.unwrap_or("<default>"),
                                            task.question
                                        );
                                        mismatches.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Ok((503, _, _)) => {
                                    sheds.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok((status, body, _)) => {
                                    eprintln!(
                                        "loadgen: unexpected HTTP {status} for {:?}: {body}",
                                        task.question
                                    );
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    eprintln!("loadgen: transport error: {e}");
                                    transport_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    latencies
                })
            })
            .collect();
        for h in handles {
            if let Ok(lats) = h.join() {
                all_latencies.extend(lats);
            } else {
                transport_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    let wall = t0.elapsed();
    all_latencies.sort_unstable();
    let total = connections * rounds * tasks.len();
    let errors = transport_errors.load(Ordering::SeqCst);
    let wrong = mismatches.load(Ordering::SeqCst);
    let shed = sheds.load(Ordering::SeqCst);
    println!(
        "loadgen: {total} requests over {connections} connections in {:.2}s \
         ({:.0} req/s)",
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64()
    );
    println!(
        "  p50 {:.2} ms   p90 {:.2} ms   p99 {:.2} ms",
        percentile(&all_latencies, 0.50) as f64 / 1e6,
        percentile(&all_latencies, 0.90) as f64 / 1e6,
        percentile(&all_latencies, 0.99) as f64 / 1e6,
    );
    println!("  transport errors: {errors}   shed (503): {shed}   oracle mismatches: {wrong}");
    errors == 0 && wrong == 0
}

/// What a keep-alive run measured; the raw material for the printed
/// summary and the `BENCH_SERVE.json` record.
struct KaStats {
    requests: u64,
    transport_errors: u64,
    mismatches: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
}

/// One framed request/response exchange on a persistent connection.
fn exchange(
    reader: &mut BufReader<TcpStream>,
    question: &str,
    doc: Option<&str>,
) -> Result<(u16, String), String> {
    let body = match doc {
        Some(d) => {
            format!("{{\"question\": {question:?}, \"doc\": {d:?}, \"deadline_ms\": 30000}}")
        }
        None => format!("{{\"question\": {question:?}, \"deadline_ms\": 30000}}"),
    };
    let request = format!(
        "POST /query HTTP/1.1\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    reader
        .get_mut()
        .write_all(request.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let response = read_response(reader).map_err(|e| format!("read: {e}"))?;
    Ok((response.status(), response.body_str()))
}

/// Keep-alive load: opens `connections` persistent sockets up front
/// (multiplexed over a small pool of driver threads — the point is
/// concurrent *connections*, not concurrent client threads), then
/// drives `rounds` framed exchanges over each, verifying every answer
/// against its oracle. An unexpected close mid-exchange is a transport
/// error: the framed read fails instead of mistaking EOF for a
/// delimiter, so this run doubles as a keep-alive conformance check.
fn run_keepalive(addr: &str, connections: usize, rounds: usize, tasks: &[Task]) -> KaStats {
    let drivers = connections.clamp(1, 32);
    let transport_errors = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    // Rendezvous twice: once after connecting (no driver sends until
    // every socket is open) and once after the last exchange (no
    // driver closes until every driver is done) — so `connections`
    // really means that many simultaneously open server-side
    // connections, not a rolling window.
    let barrier = std::sync::Barrier::new(drivers);
    let mut all_latencies: Vec<u64> = Vec::new();
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..drivers)
            .map(|d| {
                let transport_errors = &transport_errors;
                let mismatches = &mismatches;
                let barrier = &barrier;
                scope.spawn(move || {
                    // This driver's contiguous share of the connection
                    // range; every socket stays open (mostly idle)
                    // until the run ends.
                    let lo = connections * d / drivers;
                    let hi = connections * (d + 1) / drivers;
                    let mut conns: Vec<Option<BufReader<TcpStream>>> = (lo..hi)
                        .map(|_| {
                            let stream = TcpStream::connect(addr).ok()?;
                            stream
                                .set_read_timeout(Some(Duration::from_secs(30)))
                                .ok()?;
                            Some(BufReader::new(stream))
                        })
                        .collect();
                    let failed = conns.iter().filter(|c| c.is_none()).count() as u64;
                    if failed > 0 {
                        eprintln!("loadgen: {failed} connection(s) failed to open");
                        transport_errors.fetch_add(failed, Ordering::Relaxed);
                    }
                    barrier.wait(); // all sockets open before the first byte
                    let mut latencies = Vec::with_capacity(rounds * (hi - lo));
                    for round in 0..rounds {
                        for (ci, slot) in conns.iter_mut().enumerate() {
                            let Some(reader) = slot else { continue };
                            let task = &tasks[(lo + ci + round) % tasks.len()];
                            let t = Instant::now();
                            match exchange(reader, &task.question, task.doc) {
                                Ok((200, body)) => {
                                    latencies.push(t.elapsed().as_nanos() as u64);
                                    if !answers_match(&body, &task.expected) {
                                        eprintln!(
                                            "loadgen: oracle mismatch on doc {:?} for {:?}",
                                            task.doc.unwrap_or("<default>"),
                                            task.question
                                        );
                                        mismatches.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Ok((status, body)) => {
                                    eprintln!(
                                        "loadgen: unexpected HTTP {status} for {:?}: {body}",
                                        task.question
                                    );
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    eprintln!("loadgen: transport error: {e}");
                                    transport_errors.fetch_add(1, Ordering::Relaxed);
                                    *slot = None; // the connection is poisoned
                                }
                            }
                        }
                    }
                    barrier.wait(); // no socket closes before the last exchange
                    latencies
                })
            })
            .collect();
        for h in handles {
            if let Ok(lats) = h.join() {
                all_latencies.extend(lats);
            } else {
                transport_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    let wall = t0.elapsed();
    all_latencies.sort_unstable();
    let requests = all_latencies.len() as u64;
    KaStats {
        requests,
        transport_errors: transport_errors.load(Ordering::SeqCst),
        mismatches: mismatches.load(Ordering::SeqCst),
        throughput_rps: requests as f64 / wall.as_secs_f64(),
        p50_ms: percentile(&all_latencies, 0.50) as f64 / 1e6,
        p90_ms: percentile(&all_latencies, 0.90) as f64 / 1e6,
        p99_ms: percentile(&all_latencies, 0.99) as f64 / 1e6,
    }
}

/// `BENCH_SERVE.json` at the repo root (next to `BENCH_EVAL.json`).
fn bench_file_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| std::path::Path::new("."))
        .join("BENCH_SERVE.json")
}

/// Parses the trajectory file into its records (empty when absent).
fn load_records() -> Vec<Json> {
    let Ok(text) = std::fs::read_to_string(bench_file_path()) else {
        return Vec::new();
    };
    match Json::parse(&text) {
        Ok(Json::Arr(records)) => records,
        _ => Vec::new(),
    }
}

/// Appends one record for this run and rewrites the file, one record
/// per line (append-friendly diffs, same idiom as `BENCH_EVAL.json`).
fn record_stats(phase: &str, corpus: &str, connections: usize, stats: &KaStats) {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let record = Json::Obj(vec![
        ("phase".to_string(), Json::Str(phase.to_string())),
        ("corpus".to_string(), Json::Str(corpus.to_string())),
        ("mode".to_string(), Json::Str("keepalive".to_string())),
        ("connections".to_string(), Json::Num(connections as f64)),
        ("requests".to_string(), Json::Num(stats.requests as f64)),
        (
            "throughput_rps".to_string(),
            Json::Num((stats.throughput_rps * 10.0).round() / 10.0),
        ),
        (
            "p50_ms".to_string(),
            Json::Num((stats.p50_ms * 1000.0).round() / 1000.0),
        ),
        (
            "p90_ms".to_string(),
            Json::Num((stats.p90_ms * 1000.0).round() / 1000.0),
        ),
        (
            "p99_ms".to_string(),
            Json::Num((stats.p99_ms * 1000.0).round() / 1000.0),
        ),
        (
            "transport_errors".to_string(),
            Json::Num(stats.transport_errors as f64),
        ),
        ("unix_time".to_string(), Json::Num(unix_time as f64)),
    ]);
    let mut records = load_records();
    records.push(record);
    let lines: Vec<String> = records
        .iter()
        .map(|r| format!("  {}", r.render()))
        .collect();
    let text = format!("[\n{}\n]\n", lines.join(",\n"));
    if let Err(e) = std::fs::write(bench_file_path(), text) {
        eprintln!("loadgen: cannot write {}: {e}", bench_file_path().display());
        std::process::exit(2);
    }
    println!(
        "loadgen: recorded phase {phase:?} to {}",
        bench_file_path().display()
    );
}

/// Gates this run against the most recent record with the same corpus,
/// mode, and connection count: throughput must be at least half the
/// baseline and p99 at most 2× + 10 ms. Loose on purpose — CI runners
/// are noisy; the gate catches collapses, not jitter.
fn check_stats(corpus: &str, connections: usize, stats: &KaStats) -> bool {
    let records = load_records();
    let baseline = records.iter().rev().find(|r| {
        r.get("corpus").and_then(Json::as_str) == Some(corpus)
            && r.get("mode").and_then(Json::as_str) == Some("keepalive")
            && r.get("connections").and_then(Json::as_u64) == Some(connections as u64)
    });
    let Some(baseline) = baseline else {
        println!(
            "loadgen: no baseline for corpus={corpus} connections={connections} \
             in {}; record one with --record",
            bench_file_path().display()
        );
        return true;
    };
    let as_num = |v: &Json| match v {
        Json::Num(n) => Some(*n),
        _ => None,
    };
    let base_rps = baseline
        .get("throughput_rps")
        .and_then(as_num)
        .unwrap_or(0.0);
    let base_p99 = baseline.get("p99_ms").and_then(as_num).unwrap_or(0.0);
    let rps_floor = base_rps * 0.5;
    let p99_ceiling = base_p99 * 2.0 + 10.0;
    let rps_ok = stats.throughput_rps >= rps_floor;
    let p99_ok = stats.p99_ms <= p99_ceiling;
    println!(
        "loadgen: check vs baseline: {:.0} req/s (floor {:.0}) [{}]   \
         p99 {:.2} ms (ceiling {:.2}) [{}]",
        stats.throughput_rps,
        rps_floor,
        if rps_ok { "ok" } else { "FAIL" },
        stats.p99_ms,
        p99_ceiling,
        if p99_ok { "ok" } else { "FAIL" },
    );
    rps_ok && p99_ok
}

/// Compares the `answers` array of a 200 body to the oracle values.
fn answers_match(body: &str, expected: &[String]) -> bool {
    let Ok(parsed) = Json::parse(body) else {
        return false;
    };
    let Some(answers) = parsed.get("answers").and_then(Json::as_array) else {
        return false;
    };
    answers.len() == expected.len()
        && answers
            .iter()
            .zip(expected)
            .all(|(a, e)| a.as_str() == Some(e.as_str()))
}

/// Computes the in-process oracle answers for a question list, one
/// `Vec<String>` per question. Exits on oracle failure: a question the
/// pipeline itself cannot answer is a workload bug, not a serving bug.
fn oracle_answers(nalix: &Nalix, questions: &[(&str, &str)]) -> Vec<Vec<String>> {
    let budget = xquery::EvalBudget::default();
    questions
        .iter()
        .map(|(label, q)| match nalix.answer_full(q, &budget) {
            Ok(a) => a.values,
            Err(e) => {
                eprintln!("loadgen: oracle failed on task {label}: {e}");
                std::process::exit(2);
            }
        })
        .collect()
}

/// Provokes overload against a deliberately tiny server (1 worker with
/// injected latency, queue of 1) and checks the shed contract.
fn shed_contract_holds(store: &Arc<DocumentStore>) -> bool {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 1,
        debug_handler_delay: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    };
    let server = match Server::bind(store.clone(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen: shed-test bind failed: {e}");
            return false;
        }
    };
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let mut shed_ok = false;
    std::thread::scope(|scope| {
        let driver = scope.spawn(|| {
            let replies = std::thread::scope(|inner| {
                let hs: Vec<_> = (0..8)
                    .map(|_| {
                        let addr = addr.clone();
                        inner.spawn(move || {
                            let mut s = TcpStream::connect(&addr).ok()?;
                            s.write_all(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n")
                                .ok()?;
                            let mut reply = String::new();
                            s.read_to_string(&mut reply).ok()?;
                            Some(reply)
                        })
                    })
                    .collect();
                hs.into_iter()
                    .filter_map(|h| h.join().ok().flatten())
                    .collect::<Vec<_>>()
            });
            handle.shutdown();
            replies
                .iter()
                .filter(|r| r.starts_with("HTTP/1.1 503") && r.contains("Retry-After:"))
                .count()
        });
        let _ = server.serve();
        let shed_count = driver.join().unwrap_or(0);
        println!("loadgen: shed test: {shed_count}/8 requests shed with 503 + Retry-After");
        shed_ok = shed_count >= 1;
    });
    shed_ok
}

fn main() {
    let args = parse_args();
    // Keep-alive mode holds thousands of client sockets open (and, when
    // self-hosting, their server-side halves in the same process).
    server::raise_nofile_limit();
    let questions = bench::xmp_questions();

    eprintln!(
        "loadgen: generating the {} DBLP corpus …",
        if args.quick { "quick" } else { "paper-scale" }
    );
    let doc = Arc::new(if args.quick {
        bench::corpus(1)
    } else {
        bench::paper_corpus()
    });
    let nalix = Nalix::new(doc.clone());

    // In-process oracle answers, one per question, computed before any
    // load so cache warm-up cannot mask a serving bug. In --docs mode
    // every request names its document explicitly; otherwise all
    // traffic rides the server default.
    let dblp_doc = if args.docs { Some("dblp") } else { None };
    let mut tasks: Vec<Task> = questions
        .iter()
        .zip(oracle_answers(&nalix, &questions))
        .map(|((_, q), expected)| Task {
            doc: dblp_doc,
            question: q.to_string(),
            expected,
        })
        .collect();
    if args.docs {
        let movies_questions = [
            ("M1", "Find all the movies directed by Ron Howard."),
            ("M2", "Return every title."),
        ];
        let movies_nalix = Nalix::new(xmldb::datasets::movies::movies_and_books());
        tasks.extend(
            movies_questions
                .iter()
                .zip(oracle_answers(&movies_nalix, &movies_questions))
                .map(|((_, q), expected)| Task {
                    doc: Some("movies"),
                    question: q.to_string(),
                    expected,
                }),
        );
        eprintln!(
            "loadgen: --docs mode: round-robining {} dblp + {} movies tasks",
            questions.len(),
            movies_questions.len()
        );
    }

    if args.keepalive {
        let corpus = if args.quick { "quick" } else { "paper" };
        let stats = match &args.addr {
            Some(addr) => run_keepalive(addr, args.connections, args.rounds, &tasks),
            None => {
                let store = Arc::new(DocumentStore::with_builtins(StoreConfig {
                    default_doc: "dblp".to_string(),
                    ..StoreConfig::default()
                }));
                if let Err(e) = store.put("dblp", DocSpec::memory("dblp-bench", doc.clone())) {
                    eprintln!("loadgen: store setup failed: {e}");
                    std::process::exit(2);
                }
                let config = ServerConfig {
                    addr: "127.0.0.1:0".to_string(),
                    // Connections sit idle while the drivers cycle
                    // through their shares; a production idle timeout
                    // would reap them mid-run.
                    idle_timeout: Duration::from_secs(300),
                    max_connections: (args.connections + 256).max(10_240),
                    ..ServerConfig::default()
                };
                let server = match Server::bind(store, config) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("loadgen: bind failed: {e}");
                        std::process::exit(2);
                    }
                };
                let addr = server.local_addr().to_string();
                let handle = server.handle();
                let mut stats = None;
                std::thread::scope(|scope| {
                    let driver = scope.spawn(|| {
                        let s = run_keepalive(&addr, args.connections, args.rounds, &tasks);
                        handle.shutdown();
                        s
                    });
                    let report = server.serve();
                    stats = driver.join().ok();
                    if let Ok(report) = report {
                        eprintln!(
                            "loadgen: server drained; served {} shed {}",
                            report.served, report.shed
                        );
                        eprintln!(
                            "loadgen: keepalive reuse {}  open-conn high water {}  \
                             epoll wakeups {}",
                            report.snapshot.counter(obs::Counter::HttpKeepaliveReuse),
                            report.snapshot.max(obs::MaxGauge::OpenConnectionsHighWater),
                            report.snapshot.counter(obs::Counter::EpollWakeups),
                        );
                    }
                });
                match stats {
                    Some(s) => s,
                    None => {
                        eprintln!("loadgen: keepalive driver panicked");
                        std::process::exit(2);
                    }
                }
            }
        };
        println!(
            "loadgen: keepalive: {} requests over {} connections \
             ({:.0} req/s)",
            stats.requests, args.connections, stats.throughput_rps
        );
        println!(
            "  p50 {:.2} ms   p90 {:.2} ms   p99 {:.2} ms",
            stats.p50_ms, stats.p90_ms, stats.p99_ms
        );
        println!(
            "  transport errors: {}   oracle mismatches: {}",
            stats.transport_errors, stats.mismatches
        );
        let mut ok = stats.transport_errors == 0 && stats.mismatches == 0;
        if let Some(phase) = &args.record {
            if ok {
                record_stats(phase, corpus, args.connections, &stats);
            } else {
                eprintln!("loadgen: refusing to record a failed run");
            }
        }
        if args.check {
            ok = check_stats(corpus, args.connections, &stats) && ok;
        }
        if ok {
            println!("loadgen: PASS");
        } else {
            println!("loadgen: FAIL");
            std::process::exit(1);
        }
        return;
    }

    let ok = match &args.addr {
        Some(addr) => {
            // External server: its corpora must match ours for the
            // oracle check to be meaningful (builtin dblp + movies).
            run_load(addr, args.connections, args.rounds, &tasks)
        }
        None => {
            // Self-hosted: a production-shaped server over a document
            // store whose default `dblp` is the bench corpus we just
            // built, injected without a disk round-trip. The builtin
            // `movies` rides along for --docs routing.
            let store = Arc::new(DocumentStore::with_builtins(StoreConfig {
                default_doc: "dblp".to_string(),
                ..StoreConfig::default()
            }));
            if let Err(e) = store.put("dblp", DocSpec::memory("dblp-bench", doc.clone())) {
                eprintln!("loadgen: store setup failed: {e}");
                std::process::exit(2);
            }
            let config = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServerConfig::default()
            };
            let server = match Server::bind(store.clone(), config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("loadgen: bind failed: {e}");
                    std::process::exit(2);
                }
            };
            let addr = server.local_addr().to_string();
            let handle = server.handle();
            let mut load_ok = false;
            std::thread::scope(|scope| {
                let driver = scope.spawn(|| {
                    let ok = run_load(&addr, args.connections, args.rounds, &tasks);
                    handle.shutdown();
                    ok
                });
                let report = server.serve();
                load_ok = driver.join().unwrap_or(false);
                if let Ok(report) = report {
                    eprintln!(
                        "loadgen: server drained; served {} shed {}",
                        report.served, report.shed
                    );
                }
            });
            load_ok && shed_contract_holds(&store)
        }
    };

    if ok {
        println!("loadgen: PASS");
    } else {
        println!("loadgen: FAIL");
        std::process::exit(1);
    }
}
