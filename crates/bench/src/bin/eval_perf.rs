//! Evaluation-core performance trajectory: measure, record, gate.
//!
//! This binary is the keeper of `BENCH_EVAL.json` at the repository
//! root — the persisted before/after record of evaluation-core
//! performance that every optimisation PR appends to and that CI gates
//! regressions against.
//!
//! Three workloads exercise the three hot shapes of the evaluator:
//!
//! - `value-scan` — a full scan of every `title` with an atomized
//!   equality test: the linear value-sweep shape.
//! - `selection` — the paper's Q1 selection (`publisher = …`,
//!   `year > …`) with child-axis walks per candidate.
//! - `mqf-join` — a schema-free join of every title against every
//!   author via `mqf()`: MLCA probes plus indexed partner enumeration.
//!
//! A fourth row, `update-patch`, measures the write path: a two-edit
//! node-level update batch committed through the incremental
//! index-maintenance path (snapshot clone + overlay commit + index
//! splice), asserting the patch strategy is what actually ran.
//!
//! Two further rows, `selection-sql` and `mqf-join-sql`, run the same
//! selection and schema-free-join plans through the SQL backend's
//! executor over the relational shredding (docs/BACKENDS.md), so the
//! two backends' evaluation cores are tracked side by side on
//! identical logical queries.
//!
//! Corpus modes: `--quick` runs the paper-scale corpus (~73k nodes,
//! the CI mode); the default is the 100×-scale "mega" corpus
//! (~7.3M nodes) used for the headline before/after records.
//!
//! ```console
//! $ cargo run --release -p bench --bin eval_perf -- --quick
//! $ cargo run --release -p bench --bin eval_perf -- --record post-soa
//! $ cargo run --release -p bench --bin eval_perf -- --quick --check
//! ```
//!
//! `--record <phase>` appends a record; `--check` compares the current
//! run against the most recent committed record for the same corpus
//! mode and exits non-zero on a >15% throughput or p99 regression
//! (with a small absolute floor so micro-jitter on millisecond-scale
//! queries does not flake the gate).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use server::json::Json;
use xmldb::datasets::dblp::{generate, DblpConfig};
use xmldb::{CommitStrategy, Document, Edit, NewNode};
use xquery::{Engine, EvalBudget};

/// Relative regression tolerance for `--check` (issue-mandated 15%).
const TOLERANCE: f64 = 0.15;
/// Absolute p99 slack in milliseconds, so a 0.4ms→0.5ms wobble on the
/// quick corpus does not fail the gate.
const P99_SLACK_MS: f64 = 5.0;
/// Absolute mean slack in milliseconds for the throughput gate: a
/// workload in the microsecond range (value-scan answers in ~2µs on
/// the quick corpus) swings far past 15% from timer resolution and
/// scheduling noise alone, so a throughput failure also requires the
/// mean to have moved by a humanly meaningful amount.
const MEAN_SLACK_MS: f64 = 0.05;

/// The named workloads. Each is `(name, query, mega_iters, quick_iters)`.
const WORKLOADS: [(&str, &str, usize, usize); 3] = [
    (
        "value-scan",
        r#"for $t in doc()//title where $t = "Data on the Web" return $t"#,
        6,
        40,
    ),
    (
        "selection",
        r#"for $b in doc()//book where $b/publisher = "Addison-Wesley" and $b/year > 1991 return ($b/title, $b/year)"#,
        6,
        40,
    ),
    (
        "mqf-join",
        r#"for $t in doc()//title, $a in doc()//author where mqf($t, $a) return $t"#,
        4,
        40,
    ),
];

struct Args {
    quick: bool,
    record: Option<String>,
    check: bool,
    shards: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        record: None,
        check: false,
        shards: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--record" => {
                args.record = Some(it.next().ok_or("--record needs a phase label")?);
            }
            "--shards" => {
                args.shards = it
                    .next()
                    .ok_or("--shards needs a count")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

struct Measurement {
    name: &'static str,
    iters: usize,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    qps: f64,
    results: usize,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).ceil() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn measure(
    engine: &Engine,
    budget: &EvalBudget,
    name: &'static str,
    query: &str,
    iters: usize,
) -> Result<Measurement, String> {
    // One warmup run outside the timed window primes the value index
    // and the allocator so records measure steady-state latency.
    let warm = engine
        .run_with_budget(query, budget)
        .map_err(|e| format!("{name}: {e}"))?;
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = engine
            .run_with_budget(query, budget)
            .map_err(|e| format!("{name}: {e}"))?;
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
        if out.len() != warm.len() {
            return Err(format!(
                "{name}: nondeterministic result size {} vs {}",
                out.len(),
                warm.len()
            ));
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Ok(Measurement {
        name,
        iters,
        mean_ms: mean,
        p50_ms: percentile(&samples, 0.50),
        p99_ms: percentile(&samples, 0.99),
        qps: if mean > 0.0 { 1e3 / mean } else { 0.0 },
        results: warm.len(),
    })
}

/// The write-path workload: one small edit batch (a value rewrite
/// plus a leaf insert) committed through the epoch-batched incremental
/// maintenance path. Every commit must take [`CommitStrategy::Patch`]
/// — a fallback to rebuild on a two-edit batch is a defect, not a
/// slow sample — so the recorded latency is honestly the patch path:
/// snapshot clone, overlay commit, and index splice, end to end.
fn measure_updates(doc: &Arc<Document>, iters: usize) -> Result<Measurement, String> {
    let titles = doc.nodes_labeled("title");
    if titles.is_empty() {
        return Err("update-patch: corpus has no title nodes".into());
    }
    let mut samples = Vec::with_capacity(iters);
    let mut edits = 0usize;
    for i in 0..iters {
        let title = titles[(i * 7919) % titles.len()];
        let text = doc
            .first_child(title)
            .ok_or("update-patch: title without text")?;
        let parent = doc
            .parent(title)
            .ok_or("update-patch: title without parent")?;
        let t0 = Instant::now();
        let mut up = doc
            .begin_update()
            .map_err(|e| format!("update-patch: {e}"))?;
        up.apply(&Edit::ReplaceValue {
            target: text,
            value: format!("Rewritten Title {i}"),
        })
        .map_err(|e| format!("update-patch: {e}"))?;
        up.apply(&Edit::InsertChild {
            parent,
            node: NewNode::Leaf {
                label: "note".to_string(),
                text: format!("bench edit {i}"),
            },
        })
        .map_err(|e| format!("update-patch: {e}"))?;
        let (_next, stats) = up.commit();
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
        if stats.strategy != CommitStrategy::Patch {
            return Err(format!(
                "update-patch: small batch fell back to {:?}",
                stats.strategy
            ));
        }
        edits += stats.edits;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Ok(Measurement {
        name: "update-patch",
        iters,
        mean_ms: mean,
        p50_ms: percentile(&samples, 0.50),
        p99_ms: percentile(&samples, 0.99),
        qps: if mean > 0.0 { 1e3 / mean } else { 0.0 },
        results: edits,
    })
}

/// The SQL-backend twins of the `selection` and `mqf-join` workloads:
/// the same logical plans, hand-lowered to the `sqlq` subset exactly as
/// `nalix::backend::sql::lower` emits them, run over the relational
/// shredding. `(name, query, mega_iters, quick_iters)`.
fn sql_workloads() -> Vec<(&'static str, sqlq::SqlQuery, usize, usize)> {
    use sqlq::{FromItem, PathAxis, Pred, Projection, Scalar, SqlCmp, SqlQuery};
    let child = |alias: &str, label: &str| Scalar::Nodes {
        alias: alias.to_string(),
        axis: PathAxis::Child,
        labels: vec![label.to_string()],
    };
    let selection = SqlQuery {
        projection: Projection::Columns(vec![child("b", "title"), child("b", "year")]),
        from: vec![FromItem {
            alias: "b".to_string(),
            labels: vec!["book".to_string()],
        }],
        preds: vec![
            Pred::Cmp {
                op: SqlCmp::Eq,
                lhs: child("b", "publisher"),
                rhs: Scalar::Str("Addison-Wesley".to_string()),
            },
            Pred::Cmp {
                op: SqlCmp::Gt,
                lhs: child("b", "year"),
                rhs: Scalar::Num(1991.0),
            },
        ],
        order_by: vec![],
    };
    let mqf_join = SqlQuery {
        projection: Projection::Columns(vec![Scalar::Val("t".to_string())]),
        from: vec![
            FromItem {
                alias: "t".to_string(),
                labels: vec!["title".to_string()],
            },
            FromItem {
                alias: "a".to_string(),
                labels: vec!["author".to_string()],
            },
        ],
        preds: vec![Pred::Mqf(vec!["t".to_string(), "a".to_string()])],
        order_by: vec![],
    };
    vec![
        ("selection-sql", selection, 6, 40),
        ("mqf-join-sql", mqf_join, 4, 40),
    ]
}

/// [`measure`]'s SQL-backend counterpart: same warmup, sampling, and
/// determinism check, against the shredding instead of the engine.
fn measure_sql(
    shred: &relstore::Shredding,
    name: &'static str,
    query: &sqlq::SqlQuery,
    iters: usize,
) -> Result<Measurement, String> {
    let limits = sqlq::ExecLimits::default();
    let warm = sqlq::execute(shred, query, &limits).map_err(|e| format!("{name}: {e}"))?;
    let warm_len = warm.strings(shred).len();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = sqlq::execute(shred, query, &limits).map_err(|e| format!("{name}: {e}"))?;
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
        let n = out.strings(shred).len();
        if n != warm_len {
            return Err(format!(
                "{name}: nondeterministic result size {n} vs {warm_len}"
            ));
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Ok(Measurement {
        name,
        iters,
        mean_ms: mean,
        p50_ms: percentile(&samples, 0.50),
        p99_ms: percentile(&samples, 0.99),
        qps: if mean > 0.0 { 1e3 / mean } else { 0.0 },
        results: warm_len,
    })
}

fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

fn render_record(
    phase: &str,
    corpus: &str,
    nodes: usize,
    shards: usize,
    ms: &[Measurement],
) -> String {
    let mut queries = Vec::new();
    for m in ms {
        queries.push((
            m.name.to_owned(),
            Json::Obj(vec![
                ("iters".into(), Json::Num(m.iters as f64)),
                ("mean_ms".into(), Json::Num(round3(m.mean_ms))),
                ("p50_ms".into(), Json::Num(round3(m.p50_ms))),
                ("p99_ms".into(), Json::Num(round3(m.p99_ms))),
                ("qps".into(), Json::Num(round3(m.qps))),
                ("results".into(), Json::Num(m.results as f64)),
            ]),
        ));
    }
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    Json::Obj(vec![
        ("phase".into(), Json::Str(phase.into())),
        ("corpus".into(), Json::Str(corpus.into())),
        ("nodes".into(), Json::Num(nodes as f64)),
        ("shards".into(), Json::Num(shards as f64)),
        ("unix_time".into(), Json::Num(unix as f64)),
        ("queries".into(), Json::Obj(queries)),
    ])
    .render()
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn num(j: &Json) -> Option<f64> {
    match j {
        Json::Num(n) => Some(*n),
        _ => None,
    }
}

/// Pretty-print the records array one record per line — diff-friendly
/// and still valid JSON.
fn render_file(records: &[String]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(r);
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn bench_file_path() -> std::path::PathBuf {
    // The binary runs from anywhere inside the workspace; the record
    // lives at the workspace root, two levels above the bench crate.
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join("BENCH_EVAL.json")
}

fn check_against(baseline: &Json, ms: &[Measurement]) -> Result<(), String> {
    let phase = baseline
        .get("phase")
        .and_then(Json::as_str)
        .unwrap_or("<unlabelled>");
    let queries = baseline
        .get("queries")
        .ok_or("baseline record has no queries object")?;
    let mut failures = Vec::new();
    for m in ms {
        let Some(base) = queries.get(m.name) else {
            eprintln!("check: no baseline for {} (new workload), skipping", m.name);
            continue;
        };
        let base_qps = base.get("qps").and_then(num).unwrap_or(0.0);
        let base_p99 = base.get("p99_ms").and_then(num).unwrap_or(f64::MAX);
        let base_mean = base.get("mean_ms").and_then(num).unwrap_or(0.0);
        if base_qps > 0.0
            && m.qps < base_qps * (1.0 - TOLERANCE)
            && m.mean_ms > base_mean + MEAN_SLACK_MS
        {
            failures.push(format!(
                "{}: throughput regressed {:.1} → {:.1} qps (>{}%)",
                m.name,
                base_qps,
                m.qps,
                (TOLERANCE * 100.0) as u32
            ));
        }
        if m.p99_ms > base_p99 * (1.0 + TOLERANCE) + P99_SLACK_MS {
            failures.push(format!(
                "{}: p99 regressed {} → {} ms (>{}% + {}ms slack)",
                m.name,
                fmt_ms(base_p99),
                fmt_ms(m.p99_ms),
                (TOLERANCE * 100.0) as u32,
                P99_SLACK_MS
            ));
        }
    }
    if failures.is_empty() {
        eprintln!("check: OK against baseline phase \"{phase}\"");
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn mega_corpus() -> Document {
    // 100× the default DBLP config: ~7.3M nodes.
    generate(&DblpConfig {
        books: 240_000,
        articles: 480_000,
        seed: 0xDB1F,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("eval_perf: {e}");
            eprintln!("usage: eval_perf [--quick] [--shards N] [--record <phase>] [--check]");
            return ExitCode::FAILURE;
        }
    };
    let corpus_name = if args.quick { "quick" } else { "mega" };
    eprintln!("building {corpus_name} corpus …");
    let t0 = Instant::now();
    let doc = if args.quick {
        generate(&DblpConfig::default())
    } else {
        mega_corpus()
    };
    let nodes = doc.stats().total_nodes();
    eprintln!("corpus: {} nodes in {:.1?}", nodes, t0.elapsed());

    let doc = Arc::new(doc);
    let engine = Engine::new(Arc::clone(&doc));
    let budget = EvalBudget::default().with_shards(args.shards);

    let mut measurements = Vec::new();
    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>12} {:>10} {:>9}",
        "workload", "iters", "mean_ms", "p50_ms", "p99_ms", "qps", "results"
    );
    for (name, query, mega_iters, quick_iters) in WORKLOADS {
        let iters = if args.quick { quick_iters } else { mega_iters };
        match measure(&engine, &budget, name, query, iters) {
            Ok(m) => {
                println!(
                    "{:<12} {:>6} {:>12} {:>12} {:>12} {:>10.1} {:>9}",
                    m.name,
                    m.iters,
                    fmt_ms(m.mean_ms),
                    fmt_ms(m.p50_ms),
                    fmt_ms(m.p99_ms),
                    m.qps,
                    m.results
                );
                measurements.push(m);
            }
            Err(e) => {
                eprintln!("eval_perf: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The write path rides along after the read workloads: same
    // corpus, same record shape, one row per run.
    let update_iters = if args.quick { 40 } else { 4 };
    match measure_updates(&doc, update_iters) {
        Ok(m) => {
            println!(
                "{:<12} {:>6} {:>12} {:>12} {:>12} {:>10.1} {:>9}",
                m.name,
                m.iters,
                fmt_ms(m.mean_ms),
                fmt_ms(m.p50_ms),
                fmt_ms(m.p99_ms),
                m.qps,
                m.results
            );
            measurements.push(m);
        }
        Err(e) => {
            eprintln!("eval_perf: {e}");
            return ExitCode::FAILURE;
        }
    }
    // The SQL backend's rows close the table. The shredding is built
    // once, outside the timed window, mirroring the lazily cached
    // shredding a warm server holds.
    let t0 = Instant::now();
    let shred = relstore::Shredding::build(&doc);
    eprintln!("shredding: {} rows in {:.1?}", shred.len(), t0.elapsed());
    for (name, query, mega_iters, quick_iters) in sql_workloads() {
        let iters = if args.quick { quick_iters } else { mega_iters };
        match measure_sql(&shred, name, &query, iters) {
            Ok(m) => {
                println!(
                    "{:<12} {:>6} {:>12} {:>12} {:>12} {:>10.1} {:>9}",
                    m.name,
                    m.iters,
                    fmt_ms(m.mean_ms),
                    fmt_ms(m.p50_ms),
                    fmt_ms(m.p99_ms),
                    m.qps,
                    m.results
                );
                measurements.push(m);
            }
            Err(e) => {
                eprintln!("eval_perf: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let path = bench_file_path();
    if args.check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("eval_perf: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let parsed = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("eval_perf: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let baseline = parsed.as_array().and_then(|records| {
            records
                .iter()
                .rfind(|r| r.get("corpus").and_then(Json::as_str) == Some(corpus_name))
        });
        let Some(baseline) = baseline else {
            eprintln!("eval_perf: no committed {corpus_name} record to check against");
            return ExitCode::FAILURE;
        };
        if let Err(e) = check_against(baseline, &measurements) {
            eprintln!("eval_perf: PERF REGRESSION\n{e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(phase) = args.record {
        let record = render_record(&phase, corpus_name, nodes, args.shards, &measurements);
        let mut records: Vec<String> = Vec::new();
        match std::fs::read_to_string(&path) {
            Ok(text) => match Json::parse(&text) {
                Ok(j) => {
                    for r in j.as_array().unwrap_or(&[]) {
                        records.push(r.render());
                    }
                }
                Err(e) => {
                    eprintln!("eval_perf: existing {} unparseable: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!("eval_perf: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        records.push(record);
        if let Err(e) = std::fs::write(&path, render_file(&records)) {
            eprintln!("eval_perf: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("recorded phase \"{phase}\" → {}", path.display());
    }

    ExitCode::SUCCESS
}
