//! Per-query latency report at the paper's corpus scale.
//!
//! The paper (Sec. 5.1): "we measured the time NaLIX took for query
//! translation and the time Timber took for query evaluation … Both
//! numbers were consistently very small (less than one second)". This
//! binary prints both for one representative query per feature class.
//!
//! ```console
//! $ cargo run --release -p bench --bin latency
//! ```

use bench::{paper_corpus, BENCH_QUERIES};
use nalix::{Nalix, Outcome};

fn main() {
    let doc = paper_corpus();
    eprintln!(
        "corpus: {} nodes ({} books, {} articles)",
        doc.stats().total_nodes(),
        doc.nodes_labeled("book").len(),
        doc.nodes_labeled("article").len()
    );
    let nalix = Nalix::new(doc.clone());
    println!(
        "{:>12} {:>12} {:>8}   query",
        "translate", "evaluate", "results"
    );
    for q in BENCH_QUERIES {
        let t0 = std::time::Instant::now();
        match nalix.query(q) {
            Outcome::Translated(t) => {
                let translate = t0.elapsed();
                let t1 = std::time::Instant::now();
                match nalix.execute(&t) {
                    Ok(out) => println!(
                        "{:>12.3?} {:>12.3?} {:>8}   {q}",
                        translate,
                        t1.elapsed(),
                        out.len()
                    ),
                    Err(e) => println!("evaluation error: {e}   {q}"),
                }
            }
            Outcome::Rejected(r) => {
                println!("rejected ({} error(s))   {q}", r.errors.len())
            }
        }
    }
    println!(
        "\n(paper claim: both translation and evaluation \"consistently very \
         small (less than one second)\")"
    );
}
