//! Regenerates **Table 7** of the paper: average precision and recall
//! decomposed by whether the final query was *specified* correctly
//! (matched the task intent) and *parsed* correctly (no dependency-parse
//! corruption).
//!
//! ```console
//! $ cargo run --release -p bench --bin table7 [--quick]
//! ```
//!
//! Paper reference values:
//!
//! | population                                | avg. P | avg. R | queries |
//! |-------------------------------------------|--------|--------|---------|
//! | all queries                               | 83.0%  | 90.1%  | 162     |
//! | all queries specified correctly           | 91.4%  | 97.8%  | 120     |
//! | all queries specified and parsed correctly| 95.1%  | 97.6%  | 112     |
//!
//! "If one considers only the 112 of 162 queries that were specified
//! and parsed correctly, then the error rate is roughly reduced by 75%."

use userstudy::{run_experiment, ExperimentConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    eprintln!(
        "running the user study: {} participants × 9 tasks …",
        cfg.participants
    );
    let results = run_experiment(&cfg);

    println!(
        "Table 7 — average precision and recall ({} simulated participants, seed {})",
        cfg.participants, cfg.seed
    );
    println!(
        "{:<48} {:>9} {:>9} {:>9}",
        "", "avg.prec", "avg.rec", "queries"
    );
    let paper = [(83.0, 90.1, 162), (91.4, 97.8, 120), (95.1, 97.6, 112)];
    for (row, (pp, pr, pn)) in results.table7.iter().zip(paper) {
        println!(
            "{:<48} {:>8.1}% {:>8.1}% {:>9}   (paper: {:.1}% / {:.1}% / {})",
            row.label,
            100.0 * row.avg_precision,
            100.0 * row.avg_recall,
            row.total_queries,
            pp,
            pr,
            pn
        );
    }

    // The paper's headline: filtering mis-specified and mis-parsed
    // queries removes ~75% of the residual error.
    let all = &results.table7[0];
    let clean = &results.table7[2];
    let err_all = (1.0 - all.avg_precision) + (1.0 - all.avg_recall);
    let err_clean = (1.0 - clean.avg_precision) + (1.0 - clean.avg_recall);
    if err_all > 0.0 {
        println!(
            "\nerror rate reduction from filtering: {:.0}% (paper: ≈75%)",
            100.0 * (1.0 - err_clean / err_all)
        );
    }
}
