//! Substrate benchmarks: XML text parsing/serialisation and document
//! construction at the paper's corpus scale, plus keyword search.

use bench::paper_corpus;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use keyword::KeywordEngine;
use xmldb::Document;

fn bench_xml_roundtrip(c: &mut Criterion) {
    let doc = paper_corpus();
    let xml = doc.to_xml(doc.root());
    let mut g = c.benchmark_group("xml");
    g.sample_size(10);
    g.bench_function("serialize-73k-nodes", |b| {
        b.iter(|| black_box(doc.to_xml(doc.root()).len()))
    });
    g.bench_function("parse-73k-nodes", |b| {
        b.iter(|| {
            let d = Document::parse_str(black_box(&xml)).expect("parses");
            black_box(d.len())
        })
    });
    g.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("xml");
    g.sample_size(10);
    g.bench_function("generate-dblp-paper-scale", |b| {
        b.iter(|| black_box(paper_corpus().len()))
    });
    g.finish();
}

fn bench_keyword_search(c: &mut Criterion) {
    let doc = paper_corpus();
    let engine = KeywordEngine::new(&doc);
    let queries = [
        "Suciu title",
        "book title author",
        "Addison-Wesley 1991 year title",
    ];
    let mut g = c.benchmark_group("keyword");
    g.sample_size(10);
    for q in queries {
        g.bench_function(q.replace(' ', "-"), |b| {
            b.iter(|| {
                let hits = engine.search(black_box(q));
                black_box(hits.len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_xml_roundtrip,
    bench_corpus_generation,
    bench_keyword_search
);
criterion_main!(benches);
