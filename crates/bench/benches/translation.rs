//! Translation-path micro-benchmarks: English sentence → Schema-Free
//! XQuery, per pipeline stage.
//!
//! The paper reports that "the time NaLIX took for query translation …
//! was consistently very small (less than one second)"; these benches
//! quantify that claim for this implementation (expect microseconds to
//! low milliseconds per query).

use bench::{corpus, BENCH_QUERIES};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nalix::{classify::classify, validate::validate, Nalix};

fn bench_dependency_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("translation/parse");
    for (i, q) in BENCH_QUERIES.iter().enumerate() {
        g.bench_function(format!("q{i}"), |b| {
            b.iter(|| nlparser::parse(black_box(q)).expect("parses"))
        });
    }
    g.finish();
}

fn bench_classify_validate(c: &mut Criterion) {
    let doc = corpus(1);
    let catalog = nalix::catalog::Catalog::build(&doc);
    let trees: Vec<_> = BENCH_QUERIES
        .iter()
        .map(|q| nlparser::parse(q).expect("parses"))
        .collect();
    c.bench_function("translation/classify+validate", |b| {
        b.iter(|| {
            for t in &trees {
                let v = validate(classify(black_box(t)), &catalog);
                black_box(v.is_valid());
            }
        })
    });
}

fn bench_full_translation(c: &mut Criterion) {
    let doc = corpus(1);
    let nalix = Nalix::new(doc.clone());
    let mut g = c.benchmark_group("translation/full");
    for (i, q) in BENCH_QUERIES.iter().enumerate() {
        g.bench_function(format!("q{i}"), |b| {
            b.iter(|| {
                let out = nalix.query(black_box(q));
                assert!(out.is_translated());
                black_box(out)
            })
        });
    }
    g.finish();
}

fn bench_catalog_build(c: &mut Criterion) {
    let doc = bench::paper_corpus();
    c.bench_function("translation/catalog-build-73k-nodes", |b| {
        b.iter(|| nalix::catalog::Catalog::build(black_box(&doc)))
    });
}

criterion_group!(
    benches,
    bench_dependency_parse,
    bench_classify_validate,
    bench_full_translation,
    bench_catalog_build
);
criterion_main!(benches);
