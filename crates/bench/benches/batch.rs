//! Batch-throughput benchmarks: the nine XMP tasks on a shared `Nalix`
//! across thread-pool sizes, plus the translation cache in isolation.
//!
//! Complements the `batch` binary (which measures one large batch and
//! verifies parallel/serial agreement); these benches take repeated
//! samples of smaller batches for variance-aware numbers.

use bench::{corpus, xmp_questions};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nalix::{BatchRunner, Nalix};

fn bench_batch_threads(c: &mut Criterion) {
    let doc = corpus(4);
    let nalix = std::sync::Arc::new(Nalix::new(doc.clone()));
    let questions: Vec<&str> = xmp_questions().iter().map(|(_, q)| *q).collect();
    // Warm both caches so the samples measure steady-state evaluation.
    for q in &questions {
        let _ = nalix.ask(q);
    }
    let mut g = c.benchmark_group("batch/xmp9");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let runner = BatchRunner::new(nalix.clone(), threads);
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                let replies = runner.run(black_box(&questions));
                black_box(replies.len());
            })
        });
    }
    g.finish();
}

fn bench_translation_cache(c: &mut Criterion) {
    let doc = corpus(1);
    let questions = xmp_questions();
    let mut g = c.benchmark_group("batch/translation-cache");
    g.bench_function("cold", |b| {
        let nalix = Nalix::new(doc.clone());
        b.iter(|| {
            nalix.clear_cache();
            for (_, q) in &questions {
                black_box(nalix.query(black_box(q)).is_translated());
            }
        })
    });
    g.bench_function("warm", |b| {
        let nalix = Nalix::new(doc.clone());
        for (_, q) in &questions {
            let _ = nalix.query(q);
        }
        b.iter(|| {
            for (_, q) in &questions {
                black_box(nalix.query(black_box(q)).is_translated());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_batch_threads, bench_translation_cache);
criterion_main!(benches);
