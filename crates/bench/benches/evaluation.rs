//! End-to-end query-evaluation benchmarks, including the
//! conjunct-pushdown ablation.
//!
//! The paper ran against a deliberately small corpus (1.44 MB) because
//! "slow system response times resulted in frustration and fatigue";
//! these benches check that our engine scales to (and beyond) that
//! corpus, and quantify the pushdown optimisation that makes
//! multi-variable schema-free queries feasible at all.

use bench::{corpus, paper_corpus, BENCH_QUERIES};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nalix::{Nalix, Outcome};
use xquery::{Engine, EvalBudget};

/// The hand-written stress queries below deliberately materialise far
/// more candidate tuples than anything the NaLIX translator emits (the
/// aggregation is quadratic in books, the ablation's late-filter arm a
/// full cross product), so they need more headroom than the default
/// 4M-tuple safety budget sized for translated queries.
fn stress_budget() -> EvalBudget {
    EvalBudget::default().with_max_tuples(256_000_000)
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("evaluation/scaling");
    g.sample_size(10);
    for scale in [1usize, 4, 16] {
        let doc = corpus(scale);
        let nalix = Nalix::new(doc.clone());
        let translated: Vec<_> = BENCH_QUERIES
            .iter()
            .map(|q| match nalix.query(q) {
                Outcome::Translated(t) => t,
                Outcome::Rejected(r) => panic!("{q}: {:?}", r.errors),
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::new("all-7-queries", doc.len()),
            &doc.len(),
            |b, _| {
                b.iter(|| {
                    for t in &translated {
                        let out = nalix.execute(black_box(t)).expect("evaluates");
                        black_box(out.len());
                    }
                })
            },
        );
    }
    g.finish();
}

fn bench_paper_corpus_queries(c: &mut Criterion) {
    let doc = paper_corpus();
    let engine = Engine::new(doc.clone());
    let queries = [
        (
            "selection",
            "for $b in doc()//book where $b/publisher = \"Addison-Wesley\" and $b/year > 1991 \
             return ($b/title, $b/year)",
        ),
        (
            "mqf-join",
            "for $t in doc()//title, $a in doc()//author where mqf($t, $a) return $t",
        ),
        (
            "aggregation",
            "for $b in doc()//book \
             let $p := { for $b2 in doc()//book where $b2/title = $b/title return $b2/year } \
             return min($p)",
        ),
        (
            "sorting",
            "for $b in doc()//book order by $b/title return $b/title",
        ),
    ];
    let mut g = c.benchmark_group("evaluation/paper-corpus");
    g.sample_size(10);
    let budget = stress_budget();
    for (name, q) in queries {
        g.bench_function(name, |b| {
            b.iter(|| {
                let out = engine.run_with_budget(black_box(q), &budget).expect("runs");
                black_box(out.len())
            })
        });
    }
    g.finish();
}

/// Ablation: the same 3-variable mqf query with the `where` clause kept
/// as one opaque conjunct (forcing late filtering) versus the natural
/// conjunctive form the pushdown can decompose. The opaque form wraps
/// the conjunction in `not(not(…))`, which the splitter cannot see
/// through, so every cross-product tuple is materialised first.
fn bench_pushdown_ablation(c: &mut Criterion) {
    // Small corpus: the late-filtering variant is quadratic-ish.
    let doc = corpus(1);
    let engine = Engine::new(doc.clone());
    let pushed = "for $t in doc()//title, $a in doc()//author, $b in doc()//book \
                  where mqf($t, $a) and mqf($t, $b) and $b/year > 1991 return $t";
    let opaque = "for $t in doc()//title, $a in doc()//author, $b in doc()//book \
                  where not(not(mqf($t, $a) and mqf($t, $b) and $b/year > 1991)) return $t";
    let budget = stress_budget();
    // Same answers either way.
    assert_eq!(
        engine
            .run_with_budget(pushed, &budget)
            .expect("pushed")
            .len(),
        engine
            .run_with_budget(opaque, &budget)
            .expect("opaque")
            .len()
    );
    let mut g = c.benchmark_group("evaluation/pushdown-ablation");
    g.sample_size(10);
    g.bench_function("conjuncts-pushed", |b| {
        b.iter(|| black_box(engine.run_with_budget(pushed, &budget).expect("runs").len()))
    });
    g.bench_function("late-filter(ablation)", |b| {
        b.iter(|| black_box(engine.run_with_budget(opaque, &budget).expect("runs").len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scaling,
    bench_paper_corpus_queries,
    bench_pushdown_ablation
);
criterion_main!(benches);
