//! MLCA micro-benchmarks and the index-ablation comparison.
//!
//! The `mqf()` predicate decides, per candidate tuple, whether nodes are
//! *meaningfully* related. The production implementation answers the
//! exclusivity probe ("does any node with this label sit strictly below
//! the LCA towards the partner?") with a binary search over the label
//! index — `O(log n)`; the ablation baseline scans the subtree —
//! `O(subtree)`.
//!
//! Measured honestly: for *point probes* on this corpus the two are
//! comparable (the probed subtrees are small records, so a 10-node scan
//! rivals two binary searches over a 7k-entry index). The index's real
//! payoff is in **partner enumeration** (`meaningful_partners_indexed`)
//! and worst-case large subtrees — the end-to-end effect shows up in
//! `evaluation/pushdown-ablation` (≈2700× on a 3-variable join) and in
//! the 28 s → 0.3 s aggregation-query improvement recorded in
//! DESIGN.md §6.

use bench::paper_corpus;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xmldb::{Document, NodeId};
use xquery::mlca::meaningfully_related;

/// Naive exclusivity probe: walk the subtree instead of using the label
/// index.
fn meaningfully_related_naive(doc: &Document, a: NodeId, b: NodeId) -> bool {
    if a == b {
        return true;
    }
    let c = doc.lca(a, b);
    let label_in_subtree_scan = |label: xmldb::Symbol, root: NodeId| -> bool {
        doc.descendants(root)
            .chain(std::iter::once(root))
            .any(|n| doc.label_sym(n) == label)
    };
    if let Some(cb) = doc.child_toward(c, b) {
        if label_in_subtree_scan(doc.label_sym(a), cb) {
            return false;
        }
    }
    if let Some(ca) = doc.child_toward(c, a) {
        if label_in_subtree_scan(doc.label_sym(b), ca) {
            return false;
        }
    }
    true
}

fn pairs(doc: &Document) -> Vec<(NodeId, NodeId)> {
    let titles = doc.nodes_labeled("title");
    let authors = doc.nodes_labeled("author");
    // A spread of near and far pairs.
    let mut out = Vec::new();
    for i in (0..titles.len()).step_by(97) {
        for j in (0..authors.len()).step_by(131) {
            out.push((titles[i], authors[j]));
        }
    }
    out
}

fn bench_probe_indexed(c: &mut Criterion) {
    let doc = paper_corpus();
    let ps = pairs(&doc);
    c.bench_function("mlca/probe-indexed", |b| {
        b.iter(|| {
            let mut hits = 0;
            for &(x, y) in &ps {
                if meaningfully_related(black_box(&doc), x, y) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_probe_naive_ablation(c: &mut Criterion) {
    let doc = paper_corpus();
    let ps = pairs(&doc);
    // Correctness cross-check before timing the ablation.
    for &(x, y) in &ps {
        assert_eq!(
            meaningfully_related(&doc, x, y),
            meaningfully_related_naive(&doc, x, y)
        );
    }
    c.bench_function("mlca/probe-naive-scan(ablation)", |b| {
        b.iter(|| {
            let mut hits = 0;
            for &(x, y) in &ps {
                if meaningfully_related_naive(black_box(&doc), x, y) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_mqf_query(c: &mut Criterion) {
    let doc = paper_corpus();
    let engine = xquery::Engine::new(doc.clone());
    c.bench_function("mlca/mqf-join-query-73k-nodes", |b| {
        b.iter(|| {
            let out = engine
                .run(
                    "for $t in doc()//title, $a in doc()//author \
                     where mqf($t, $a) and contains($a, \"Suciu\") return $t",
                )
                .expect("query runs");
            black_box(out.len())
        })
    });
}

criterion_group!(
    benches,
    bench_probe_indexed,
    bench_probe_naive_ablation,
    bench_mqf_query
);
criterion_main!(benches);
