//! Runner configuration and the deterministic test RNG.

/// Per-test configuration. Only `cases` is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Config { cases }
    }
}

/// Deterministic splitmix64 generator seeded per test (from the test's
/// name, so every property sees a distinct but reproducible stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed derived from a test name (FNV-1a), so streams differ across
    /// tests but are stable across runs.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::new(h)
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(TestRng::for_test("x").next_u64(), c.next_u64());
    }

    #[test]
    fn default_config_positive() {
        assert!(Config::default().cases > 0);
    }
}
