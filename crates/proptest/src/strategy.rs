//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test values.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one concrete value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (regenerating up to a bounded
    /// number of times, then panicking with `reason`).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Build a recursive strategy: `self` generates leaves, and `f`
    /// wraps an inner strategy into one that generates one more level.
    /// `depth` bounds the recursion; the other two parameters (desired
    /// size, expected branch factor) are accepted for compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            // 1-in-4 chance of bottoming out early at each level keeps
            // generated sizes reasonable.
            cur = Union::with_weights(vec![(1, leaf.clone()), (3, deeper)]).boxed();
        }
        cur
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// Uniform (or weighted) choice between strategies of one value type.
/// Built by [`crate::prop_oneof!`].
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> Union<V> {
    /// Equal-weight choice.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof of zero strategies");
        Union::with_weights(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice.
    pub fn with_weights(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof with zero total weight");
        Union { options, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut x = rng.below(self.total as u64) as u32;
        for (w, s) in &self.options {
            if x < *w {
                return s.generate(rng);
            }
            x -= w;
        }
        unreachable!("weights sum mismatch")
    }
}

// ---------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

// ---------------------------------------------------------------------
// Strings: a pattern literal is a strategy producing matching strings
// ---------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::new(1);
        let s = (0i32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::new(2);
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn union_uniformish() {
        let mut rng = TestRng::new(3);
        let s = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        struct T(Vec<T>);
        fn size(t: &T) -> usize {
            1 + t.0.iter().map(size).sum::<usize>()
        }
        let leaf = Just(()).prop_map(|_| T(vec![]));
        let s = leaf.prop_recursive(4, 64, 5, |inner| {
            crate::collection::vec(inner, 0..4usize).prop_map(T)
        });
        let mut rng = TestRng::new(4);
        for _ in 0..50 {
            let t = s.generate(&mut rng);
            assert!(size(&t) < 4_000);
        }
    }
}
