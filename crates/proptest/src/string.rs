//! Generation of strings matching a small regex subset.
//!
//! Supported syntax — enough for every pattern this repository uses:
//! - `.` any printable ASCII character
//! - `[abc]`, `[a-z0-9]` character classes (ranges and singletons)
//! - `{m}`, `{m,n}` repetition of the preceding atom
//! - any other character matches itself literally

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Dot,
    Class(Vec<(char, char)>),
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in {pattern:?}"
                );
                i += 1; // closing ]
                Atom::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let m: usize = body.trim().parse().expect("quantifier count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        out.push(Piece { atom, min, max });
    }
    out
}

fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Dot => (0x20u8 + rng.below(0x5f) as u8) as char,
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                .sum();
            let mut x = rng.below(total);
            for (lo, hi) in ranges {
                let span = *hi as u64 - *lo as u64 + 1;
                if x < span {
                    return char::from_u32(*lo as u32 + x as u32).expect("class char");
                }
                x -= span;
            }
            unreachable!("class spans mismatch")
        }
    }
}

/// Generate a string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let n = p.min + rng.below((p.max - p.min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(gen_char(&p.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = generate_matching("[a-z]{2,10}", &mut rng);
            assert!((2..=10).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn dot_any_length() {
        let mut rng = TestRng::new(8);
        for _ in 0..50 {
            let s = generate_matching(".{0,120}", &mut rng);
            assert!(s.len() <= 120);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn single_class_defaults_to_one() {
        let mut rng = TestRng::new(9);
        let s = generate_matching("[a-c]", &mut rng);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::new(10);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
    }
}
