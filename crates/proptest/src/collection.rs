//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A size specification for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

/// Conversion into [`SizeRange`] (ranges or a fixed size).
pub trait IntoSizeRange {
    /// Convert.
    fn into_size_range(self) -> SizeRange;
}

impl IntoSizeRange for Range<usize> {
    fn into_size_range(self) -> SizeRange {
        assert!(self.start < self.end, "empty size range");
        SizeRange {
            lo: self.start,
            hi_inclusive: self.end - 1,
        }
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn into_size_range(self) -> SizeRange {
        SizeRange {
            lo: *self.start(),
            hi_inclusive: *self.end(),
        }
    }
}

impl IntoSizeRange for usize {
    fn into_size_range(self) -> SizeRange {
        SizeRange {
            lo: self,
            hi_inclusive: self,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let n = self.size.lo + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into_size_range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respected() {
        let mut rng = TestRng::new(5);
        let s = vec(0u8..10, 2..5usize);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
