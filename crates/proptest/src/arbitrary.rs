//! `any::<T>()` — standard strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Draw one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::new(9);
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }
}
