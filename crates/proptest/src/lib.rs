//! A vendored, dependency-free stand-in for the subset of the
//! `proptest` crate API this workspace uses.
//!
//! The build environment has no crates.io access, so the real proptest
//! cannot be fetched. This shim keeps every `proptest! { … }` test
//! source-compatible: strategies (ranges, tuples, `Just`, simple
//! regex-class strings, `collection::vec`, `option::of`,
//! `prop_oneof!`, `prop_map` / `prop_filter` / `prop_recursive`),
//! a deterministic runner, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case panics with its inputs Debug-printed
//!   where the assertion macros include them;
//! - the default case count is 64 (override with `PROPTEST_CASES`);
//! - string strategies support character classes and `{m,n}` repetition
//!   only, which covers every pattern used in this repository.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Run named property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that evaluates `body` over `Config::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($p:pat in $s:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property test (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($s) ),+
        ])
    };
}
