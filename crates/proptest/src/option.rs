//! Option strategies (`of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<S::Value>`; `None` one time in four.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Some` values of `inner` (with occasional `None`).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_both_variants() {
        let mut rng = TestRng::new(6);
        let s = of(0u8..10);
        let vals: Vec<Option<u8>> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }
}
