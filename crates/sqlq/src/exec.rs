//! A panic-free, std-only executor for the SQL subset, evaluating over
//! a [`relstore::Shredding`].
//!
//! The plan is nested loops in `FROM` order with **conjunct pushdown**:
//! every predicate runs as soon as the aliases it binds locally are all
//! bound (correlated outer aliases are bound by definition), and
//! `mqf(…)` decomposes into its pairwise checks — meaningfulness is
//! monotone, so a failing pair prunes the whole subtree of tuples, the
//! same strategy the XQuery engine's FLWOR evaluator uses. Candidate
//! rows come from the per-label postings (pre-sorted, so tuples
//! enumerate in document order without sorting).
//!
//! An `mqf` pair additionally narrows the partner's candidate list to
//! a contiguous postings window before the loop even starts: a
//! meaningful partner must lie inside the subtree of the highest
//! ancestor of the already-bound node whose path-child contains no
//! partner-labeled row (the monotone half of the MLCA test), so the
//! join enumerates only indexed partners instead of the label cross
//! product — the relational mirror of the engine's MLCA partner
//! enumeration.
//!
//! Value semantics mirror the XQuery engine item for item: scalars are
//! sequence-valued, comparisons are existential and numeric when both
//! sides parse as numbers, aggregates reproduce `count`/`sum`/`avg`/
//! `min`/`max` including empty-input and type-error behaviour, and
//! output strings atomize exactly as the engine's `strings()` does.

use crate::ast::{FromItem, PathAxis, Pred, Projection, Scalar, SqlAgg, SqlCmp, SqlQuery, StrFn};
use relstore::Shredding;
use std::cell::Cell;
use std::cmp::Ordering;
use std::fmt;

/// Executor failure: a malformed query (unknown alias), a type error
/// (`sum` over non-numeric values), or an exhausted tuple budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// A scalar or predicate referenced an alias no `FROM` item binds.
    UnknownAlias(String),
    /// An aggregate met a value outside its domain.
    TypeError(String),
    /// The tuple budget ran out before the query finished.
    Budget(u64),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::UnknownAlias(a) => write!(f, "unknown alias `{a}`"),
            SqlError::TypeError(m) => write!(f, "type error: {m}"),
            SqlError::Budget(n) => write!(f, "tuple budget of {n} exhausted"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Resource limits of one execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecLimits {
    /// Abort with [`SqlError::Budget`] after this many enumerated
    /// binding tuples (`None` = unlimited).
    pub max_tuples: Option<u64>,
}

/// A single value (the executor's item type).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlVal {
    /// A row of the `node` table, by pre.
    Node(u32),
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
}

impl SqlVal {
    /// The value's string form (nodes atomize through the shredding).
    pub fn render(&self, shred: &Shredding) -> String {
        match self {
            SqlVal::Node(pre) => shred.atomize(*pre),
            SqlVal::Str(s) => s.clone(),
            SqlVal::Num(n) => crate::pretty::format_number(*n),
        }
    }

    fn numeric(&self, shred: &Shredding) -> Option<f64> {
        match self {
            SqlVal::Num(n) => Some(*n),
            SqlVal::Str(s) => s.trim().parse().ok(),
            SqlVal::Node(pre) => shred.atomize(*pre).trim().parse().ok(),
        }
    }
}

/// Compare two values with the engine's `compare_items` semantics:
/// numeric when both sides are numeric, lexicographic otherwise.
pub fn compare_vals(shred: &Shredding, a: &SqlVal, b: &SqlVal) -> Ordering {
    let sa = a.render(shred);
    let sb = b.render(shred);
    let num = |v: &SqlVal, s: &str| -> Option<f64> {
        match v {
            SqlVal::Num(n) => Some(*n),
            _ => s.trim().parse().ok(),
        }
    };
    match (num(a, &sa), num(b, &sb)) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
        _ => sa.cmp(&sb),
    }
}

/// One result row: the values of each `SELECT` item (sequence-valued).
type RowValues = Vec<Vec<SqlVal>>;

/// The result set of a query.
#[derive(Debug, Clone)]
pub struct SqlOutput {
    projection_concat: bool,
    rows: Vec<RowValues>,
    tuples: u64,
}

impl SqlOutput {
    /// Number of result rows (binding tuples that survived the
    /// predicates).
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Total binding tuples enumerated to answer the query, subqueries
    /// included (the quantity [`ExecLimits::max_tuples`] bounds).
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Flatten to the answer strings, matching the XQuery engine's
    /// `strings()` over the equivalent FLWOR: a `Columns` projection
    /// emits every item value separately; a `Concat` projection emits
    /// one concatenated string per row.
    pub fn strings(&self, shred: &Shredding) -> Vec<String> {
        let mut out = Vec::new();
        for row in &self.rows {
            if self.projection_concat {
                let mut s = String::new();
                for vals in row {
                    for v in vals {
                        s.push_str(&v.render(shred));
                    }
                }
                out.push(s);
            } else {
                for vals in row {
                    for v in vals {
                        out.push(v.render(shred));
                    }
                }
            }
        }
        out
    }
}

/// Execute `q` against `shred`.
pub fn execute(
    shred: &Shredding,
    q: &SqlQuery,
    limits: &ExecLimits,
) -> Result<SqlOutput, SqlError> {
    let exec = Exec {
        shred,
        limits: *limits,
        tuples: Cell::new(0),
    };
    let mut env = Env::default();
    let rows = exec.enumerate(q, &mut env)?;
    let mut keyed: Vec<(Vec<Vec<SqlVal>>, Vec<u32>)> = Vec::with_capacity(rows.len());
    for tuple in rows {
        let mut env = Env::default();
        env.push_tuple(q, &tuple);
        let mut keys = Vec::with_capacity(q.order_by.len());
        for k in &q.order_by {
            keys.push(exec.scalar(&k.key, &env)?);
        }
        keyed.push((keys, tuple));
    }
    if !q.order_by.is_empty() {
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, spec) in q.order_by.iter().enumerate() {
                let (a, b) = (ka.get(i), kb.get(i));
                let o = exec.compare_key(
                    a.map(Vec::as_slice).unwrap_or(&[]),
                    b.map(Vec::as_slice).unwrap_or(&[]),
                );
                let o = if spec.desc { o.reverse() } else { o };
                if o != Ordering::Equal {
                    return o;
                }
            }
            Ordering::Equal
        });
    }
    let mut rows_out = Vec::with_capacity(keyed.len());
    let items = match &q.projection {
        Projection::Columns(items) | Projection::Concat(items) => items,
    };
    for (_, tuple) in keyed {
        let mut env = Env::default();
        env.push_tuple(q, &tuple);
        let mut row = Vec::with_capacity(items.len());
        for item in items {
            row.push(exec.scalar(item, &env)?);
        }
        rows_out.push(row);
    }
    Ok(SqlOutput {
        projection_concat: matches!(q.projection, Projection::Concat(_)),
        rows: rows_out,
        tuples: exec.tuples.get(),
    })
}

/// Alias bindings, innermost last (subquery aliases shadow outer ones).
#[derive(Debug, Default, Clone)]
struct Env {
    bound: Vec<(String, u32)>,
}

impl Env {
    fn get(&self, alias: &str) -> Option<u32> {
        self.bound
            .iter()
            .rev()
            .find(|(a, _)| a == alias)
            .map(|&(_, pre)| pre)
    }

    fn push_tuple(&mut self, q: &SqlQuery, tuple: &[u32]) {
        for (f, &pre) in q.from.iter().zip(tuple) {
            self.bound.push((f.alias.clone(), pre));
        }
    }

    fn truncate(&mut self, len: usize) {
        self.bound.truncate(len);
    }
}

/// A predicate check scheduled at the binding depth where it first
/// becomes evaluable.
enum Check<'q> {
    Pred(&'q Pred),
    MqfPair(&'q str, &'q str),
}

struct Exec<'s> {
    shred: &'s Shredding,
    limits: ExecLimits,
    tuples: Cell<u64>,
}

impl<'s> Exec<'s> {
    fn charge(&self) -> Result<(), SqlError> {
        let n = self.tuples.get() + 1;
        self.tuples.set(n);
        match self.limits.max_tuples {
            Some(cap) if n > cap => Err(SqlError::Budget(cap)),
            _ => Ok(()),
        }
    }

    fn compare_key(&self, a: &[SqlVal], b: &[SqlVal]) -> Ordering {
        match (a.first(), b.first()) {
            (None, None) => Ordering::Equal,
            (None, Some(_)) => Ordering::Less,
            (Some(_), None) => Ordering::Greater,
            (Some(x), Some(y)) => compare_vals(self.shred, x, y),
        }
    }

    /// Enumerate the binding tuples of `q` (pres per `FROM` item, in
    /// document order), applying each predicate at the earliest depth
    /// where its locally bound aliases are complete.
    fn enumerate(&self, q: &SqlQuery, env: &mut Env) -> Result<Vec<Vec<u32>>, SqlError> {
        // Depth of each local alias.
        let depth_of =
            |alias: &str| -> Option<usize> { q.from.iter().position(|f| f.alias == alias) };
        // Schedule: checks[d] runs right after from[d] binds.
        let mut checks: Vec<Vec<Check<'_>>> = (0..q.from.len()).map(|_| Vec::new()).collect();
        let mut always: Vec<&Pred> = Vec::new(); // no local aliases at all
        for p in &q.preds {
            if let Pred::Mqf(aliases) = p {
                // Pairwise decomposition: each pair runs as soon as its
                // later member binds (outer-bound members at depth 0).
                let mut pairwise = false;
                for (i, a) in aliases.iter().enumerate() {
                    for b in aliases.iter().skip(i + 1) {
                        let d = depth_of(a).unwrap_or(0).max(depth_of(b).unwrap_or(0));
                        if let Some(slot) = checks.get_mut(d) {
                            slot.push(Check::MqfPair(a, b));
                            pairwise = true;
                        }
                    }
                }
                if pairwise || aliases.len() < 2 {
                    continue;
                }
            }
            let locals = pred_local_aliases(p, &|a| depth_of(a).is_some());
            let depth = locals.iter().filter_map(|a| depth_of(a)).max();
            match depth {
                Some(d) => {
                    if let Some(slot) = checks.get_mut(d) {
                        slot.push(Check::Pred(p));
                    }
                }
                None => always.push(p),
            }
        }

        // Candidate rows per FROM item: merged postings of its labels.
        let mut candidates: Vec<Vec<u32>> = Vec::with_capacity(q.from.len());
        for f in &q.from {
            candidates.push(self.candidates(f));
        }

        let base = env.bound.len();
        let mut out: Vec<Vec<u32>> = Vec::new();
        // Uncorrelated constant predicates gate the whole enumeration.
        for p in &always {
            if !self.pred(p, env)? {
                env.truncate(base);
                return Ok(out);
            }
        }
        // `stack[d]` is the next candidate index at depth `d`; `ends[d]`
        // is where that depth's mqf partner window closes (computed on
        // entry from the bindings above it).
        let (s0, e0) = self.mqf_bounds(q, 0, &checks, &candidates, env);
        let mut stack: Vec<usize> = vec![s0];
        let mut ends: Vec<usize> = vec![e0];
        'outer: while let Some(&idx) = stack.last() {
            let d = stack.len() - 1;
            let Some(cands) = candidates.get(d) else {
                break;
            };
            if idx >= *ends.last().unwrap_or(&0) {
                stack.pop();
                ends.pop();
                env.truncate(base + d);
                if let Some(last) = stack.last_mut() {
                    *last += 1;
                }
                continue;
            }
            let pre = cands[idx];
            self.charge()?;
            env.truncate(base + d);
            env.bound.push((q.from[d].alias.clone(), pre));
            // Run this depth's checks.
            for c in checks.get(d).map(Vec::as_slice).unwrap_or(&[]) {
                let ok = match c {
                    Check::Pred(p) => self.pred(p, env)?,
                    Check::MqfPair(a, b) => {
                        let (ra, rb) = (self.resolve(a, env)?, self.resolve(b, env)?);
                        self.shred.meaningfully_related(ra, rb)
                    }
                };
                if !ok {
                    if let Some(last) = stack.last_mut() {
                        *last += 1;
                    }
                    continue 'outer;
                }
            }
            if d + 1 == q.from.len() {
                out.push(env.bound[base..].iter().map(|&(_, pre)| pre).collect());
                if let Some(last) = stack.last_mut() {
                    *last += 1;
                }
            } else {
                let (s, e) = self.mqf_bounds(q, d + 1, &checks, &candidates, env);
                stack.push(s);
                ends.push(e);
            }
        }
        env.truncate(base);
        Ok(out)
    }

    /// The candidate-index window `[start, end)` at `depth`, narrowed
    /// by the mqf pairs scheduled there whose other member is already
    /// bound in `env`. A meaningful partner of a bound row must lie in
    /// the subtree of the highest ancestor whose path-child toward the
    /// bound row contains no row with the candidates' label — above
    /// that, `meaningfully_related` fails the path-child count for
    /// every candidate, and it only fails harder further up
    /// (monotonicity). Rows outside the window therefore cannot pass
    /// the pair check that still runs per binding; the window is pure
    /// pruning, never the decision.
    fn mqf_bounds(
        &self,
        q: &SqlQuery,
        depth: usize,
        checks: &[Vec<Check<'_>>],
        candidates: &[Vec<u32>],
        env: &Env,
    ) -> (usize, usize) {
        let full = (0, candidates.get(depth).map_or(0, Vec::len));
        let Some(me) = q.from.get(depth) else {
            return full;
        };
        // Only a single-label item gives the walk one well-defined
        // label to count; multi-label items keep the full list.
        let [label] = me.labels.as_slice() else {
            return full;
        };
        let Some(my_label) = self.shred.lookup_label(label) else {
            return full;
        };
        let mut window: Option<(u32, u32)> = None;
        for c in checks.get(depth).map(Vec::as_slice).unwrap_or(&[]) {
            let Check::MqfPair(a, b) = c else { continue };
            let other: &str = match (*a == me.alias, *b == me.alias) {
                (true, false) => b,
                (false, true) => a,
                _ => continue,
            };
            let Some(bound) = env.get(other) else {
                continue;
            };
            // Walk up from the bound row while the path-child stays
            // free of candidate-labeled rows.
            let mut anc = bound;
            loop {
                let p = self.shred.parent_pre(anc);
                if p == relstore::NIL_PRE || self.shred.count_label_in_subtree(my_label, anc) > 0 {
                    break;
                }
                anc = p;
            }
            let (lo, hi) = (anc, self.shred.extent(anc));
            window = Some(match window {
                None => (lo, hi),
                Some((l, h)) => (l.max(lo), h.min(hi)),
            });
        }
        let Some((lo, hi)) = window else {
            return full;
        };
        let cands = candidates.get(depth).map(Vec::as_slice).unwrap_or(&[]);
        (
            cands.partition_point(|&x| x < lo),
            cands.partition_point(|&x| x <= hi),
        )
    }

    fn candidates(&self, f: &FromItem) -> Vec<u32> {
        let mut lists: Vec<&[u32]> = Vec::with_capacity(f.labels.len());
        for l in &f.labels {
            if let Some(id) = self.shred.lookup_label(l) {
                lists.push(self.shred.postings(id));
            }
        }
        match lists.len() {
            0 => Vec::new(),
            1 => lists[0].to_vec(),
            _ => {
                let mut merged: Vec<u32> = lists.concat();
                merged.sort_unstable();
                merged
            }
        }
    }

    fn resolve(&self, alias: &str, env: &Env) -> Result<u32, SqlError> {
        env.get(alias)
            .ok_or_else(|| SqlError::UnknownAlias(alias.to_owned()))
    }

    fn scalar(&self, s: &Scalar, env: &Env) -> Result<Vec<SqlVal>, SqlError> {
        match s {
            Scalar::Pre(a) => Ok(vec![SqlVal::Num(f64::from(self.resolve(a, env)?))]),
            Scalar::Val(a) => Ok(vec![SqlVal::Node(self.resolve(a, env)?)]),
            Scalar::Nodes {
                alias,
                axis,
                labels,
            } => {
                let anchor = self.resolve(alias, env)?;
                let hi = self.shred.extent(anchor);
                let mut pres: Vec<u32> = Vec::new();
                for l in labels {
                    if let Some(id) = self.shred.lookup_label(l) {
                        let p = self.shred.postings(id);
                        let start = p.partition_point(|&x| x <= anchor);
                        let end = p.partition_point(|&x| x <= hi);
                        for &pre in p.get(start..end).unwrap_or(&[]) {
                            match axis {
                                PathAxis::Descendant => pres.push(pre),
                                PathAxis::Child => {
                                    if self.shred.parent_pre(pre) == anchor {
                                        pres.push(pre);
                                    }
                                }
                            }
                        }
                    }
                }
                pres.sort_unstable();
                Ok(pres.into_iter().map(SqlVal::Node).collect())
            }
            Scalar::Str(v) => Ok(vec![SqlVal::Str(v.clone())]),
            Scalar::Num(n) => Ok(vec![SqlVal::Num(*n)]),
            Scalar::Agg { func, query } => self.aggregate(*func, query, env),
        }
    }

    fn aggregate(
        &self,
        func: SqlAgg,
        query: &SqlQuery,
        env: &Env,
    ) -> Result<Vec<SqlVal>, SqlError> {
        let mut env = env.clone();
        let tuples = self.enumerate(query, &mut env)?;
        // Collect the aggregated column in tuple order (matters for
        // min/max tie-breaking, which keeps the first best item).
        let items = match &query.projection {
            Projection::Columns(items) | Projection::Concat(items) => items,
        };
        let mut vals: Vec<SqlVal> = Vec::new();
        let base = env.bound.len();
        // Tuple order must match the subquery's ORDER BY (the lowering
        // appends pre tiebreakers); enumerate() yields document order
        // already, which is exactly that.
        for tuple in &tuples {
            env.truncate(base);
            env.push_tuple(query, tuple);
            for item in items {
                vals.extend(self.scalar(item, &env)?);
            }
        }
        env.truncate(base);
        match func {
            SqlAgg::Count => Ok(vec![SqlVal::Num(vals.len() as f64)]),
            SqlAgg::Sum => {
                let mut total = 0.0;
                for v in &vals {
                    total += v.numeric(self.shred).ok_or_else(|| {
                        SqlError::TypeError(format!(
                            "sum() over non-numeric value `{}`",
                            v.render(self.shred)
                        ))
                    })?;
                }
                Ok(vec![SqlVal::Num(total)])
            }
            SqlAgg::Avg => {
                if vals.is_empty() {
                    return Ok(vec![]);
                }
                let mut total = 0.0;
                for v in &vals {
                    total += v.numeric(self.shred).ok_or_else(|| {
                        SqlError::TypeError(format!(
                            "avg() over non-numeric value `{}`",
                            v.render(self.shred)
                        ))
                    })?;
                }
                Ok(vec![SqlVal::Num(total / vals.len() as f64)])
            }
            SqlAgg::Min | SqlAgg::Max => {
                let want = if matches!(func, SqlAgg::Min) {
                    Ordering::Less
                } else {
                    Ordering::Greater
                };
                let mut iter = vals.into_iter();
                let Some(mut best) = iter.next() else {
                    return Ok(vec![]);
                };
                for v in iter {
                    if compare_vals(self.shred, &v, &best) == want {
                        best = v;
                    }
                }
                Ok(vec![best])
            }
        }
    }

    fn pred(&self, p: &Pred, env: &Env) -> Result<bool, SqlError> {
        match p {
            Pred::Cmp { op, lhs, rhs } => {
                let l = self.scalar(lhs, env)?;
                let r = self.scalar(rhs, env)?;
                for a in &l {
                    for b in &r {
                        let ord = compare_vals(self.shred, a, b);
                        let ok = match op {
                            SqlCmp::Eq => ord == Ordering::Equal,
                            SqlCmp::Ne => ord != Ordering::Equal,
                            SqlCmp::Lt => ord == Ordering::Less,
                            SqlCmp::Le => ord != Ordering::Greater,
                            SqlCmp::Gt => ord == Ordering::Greater,
                            SqlCmp::Ge => ord != Ordering::Less,
                        };
                        if ok {
                            return Ok(true);
                        }
                    }
                }
                Ok(false)
            }
            Pred::StrFn { func, lhs, rhs } => {
                let first = |s: &Scalar| -> Result<String, SqlError> {
                    Ok(self
                        .scalar(s, env)?
                        .first()
                        .map(|v| v.render(self.shred))
                        .unwrap_or_default())
                };
                let a = first(lhs)?;
                let b = first(rhs)?;
                Ok(match func {
                    StrFn::Contains => a.contains(&b),
                    StrFn::StartsWith => a.starts_with(&b),
                    StrFn::EndsWith => a.ends_with(&b),
                })
            }
            Pred::Mqf(aliases) => {
                let mut rows = Vec::with_capacity(aliases.len());
                for a in aliases {
                    rows.push(self.resolve(a, env)?);
                }
                Ok(self.shred.set_meaningfully_related(&rows))
            }
            Pred::ChildOf { child, parent } => {
                let (c, p) = (self.resolve(child, env)?, self.resolve(parent, env)?);
                Ok(self.shred.parent_pre(c) == p)
            }
            Pred::Within { inner, outer } => {
                let (i, o) = (self.resolve(inner, env)?, self.resolve(outer, env)?);
                Ok(o < i && self.shred.contains_or_self(o, i))
            }
            Pred::And(parts) => {
                for part in parts {
                    if !self.pred(part, env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Pred::Or(parts) => {
                for part in parts {
                    if self.pred(part, env)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Pred::Not(inner) => Ok(!self.pred(inner, env)?),
            Pred::Exists { query, negated } => {
                let mut env = env.clone();
                let rows = self.enumerate(query, &mut env)?;
                Ok(rows.is_empty() == *negated)
            }
        }
    }
}

/// The aliases a predicate references that the current query's own
/// `FROM` clause binds (`is_local` decides membership). Correlated
/// references to outer aliases are excluded — they are always bound.
fn pred_local_aliases<'p>(p: &'p Pred, is_local: &dyn Fn(&str) -> bool) -> Vec<&'p str> {
    let mut out = Vec::new();
    collect_pred_aliases(p, &mut out);
    out.retain(|a| is_local(a));
    out.dedup();
    out
}

fn collect_pred_aliases<'p>(p: &'p Pred, out: &mut Vec<&'p str>) {
    match p {
        Pred::Cmp { lhs, rhs, .. } | Pred::StrFn { lhs, rhs, .. } => {
            collect_scalar_aliases(lhs, out);
            collect_scalar_aliases(rhs, out);
        }
        Pred::Mqf(aliases) => out.extend(aliases.iter().map(String::as_str)),
        Pred::ChildOf { child, parent } => {
            out.push(child);
            out.push(parent);
        }
        Pred::Within { inner, outer } => {
            out.push(inner);
            out.push(outer);
        }
        Pred::And(parts) | Pred::Or(parts) => {
            for part in parts {
                collect_pred_aliases(part, out);
            }
        }
        Pred::Not(inner) => collect_pred_aliases(inner, out),
        Pred::Exists { query, .. } => collect_query_outer_aliases(query, out),
    }
}

fn collect_scalar_aliases<'p>(s: &'p Scalar, out: &mut Vec<&'p str>) {
    match s {
        Scalar::Pre(a) | Scalar::Val(a) => out.push(a),
        Scalar::Nodes { alias, .. } => out.push(alias),
        Scalar::Str(_) | Scalar::Num(_) => {}
        Scalar::Agg { query, .. } => collect_query_outer_aliases(query, out),
    }
}

/// Aliases a subquery references but does not bind itself — its
/// correlation points into the enclosing query.
fn collect_query_outer_aliases<'p>(q: &'p SqlQuery, out: &mut Vec<&'p str>) {
    let mut inner: Vec<&str> = Vec::new();
    match &q.projection {
        Projection::Columns(items) | Projection::Concat(items) => {
            for i in items {
                collect_scalar_aliases(i, &mut inner);
            }
        }
    }
    for p in &q.preds {
        collect_pred_aliases(p, &mut inner);
    }
    for k in &q.order_by {
        collect_scalar_aliases(&k.key, &mut inner);
    }
    let local: Vec<&str> = q.local_aliases();
    out.extend(inner.into_iter().filter(|a| !local.contains(a)));
}
