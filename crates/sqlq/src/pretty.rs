//! Render a [`SqlQuery`] as SQL text (the form served by `/query` and
//! snapshotted by the golden tests).

use crate::ast::{FromItem, Pred, Projection, Scalar, SqlQuery};
use std::fmt::Write;

/// Pretty-print a query, multi-line, two-space indent per subquery
/// level.
pub fn pretty(q: &SqlQuery) -> String {
    let mut out = String::new();
    write_query(&mut out, q, 0, None);
    out
}

fn pad(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_query(out: &mut String, q: &SqlQuery, depth: usize, agg: Option<crate::ast::SqlAgg>) {
    pad(out, depth);
    out.push_str("SELECT ");
    if let Some(f) = agg {
        let _ = write!(out, "{f}(");
    }
    match &q.projection {
        Projection::Columns(items) => {
            for (i, s) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_scalar(out, s, depth);
            }
        }
        Projection::Concat(items) => {
            out.push_str("concat(");
            for (i, s) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_scalar(out, s, depth);
            }
            out.push(')');
        }
    }
    if agg.is_some() {
        out.push(')');
    }
    out.push('\n');
    pad(out, depth);
    out.push_str("FROM ");
    for (i, f) in q.from.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "node AS {}", f.alias);
    }
    out.push('\n');
    let mut first = true;
    for f in &q.from {
        write_conjunct(out, depth, &mut first, |out| write_label_pred(out, f));
    }
    for p in &q.preds {
        write_conjunct(out, depth, &mut first, |out| write_pred(out, p, depth));
    }
    if !q.order_by.is_empty() {
        pad(out, depth);
        out.push_str("ORDER BY ");
        for (i, k) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_scalar(out, &k.key, depth);
            if k.desc {
                out.push_str(" DESC");
            }
        }
        out.push('\n');
    }
}

/// `WHERE` on the first conjunct, aligned `AND` on the rest.
fn write_conjunct(
    out: &mut String,
    depth: usize,
    first: &mut bool,
    body: impl FnOnce(&mut String),
) {
    pad(out, depth);
    if *first {
        out.push_str("WHERE ");
        *first = false;
    } else {
        out.push_str("  AND ");
    }
    body(out);
    out.push('\n');
}

fn write_label_pred(out: &mut String, f: &FromItem) {
    match f.labels.as_slice() {
        [one] => {
            let _ = write!(out, "{}.label = {}", f.alias, quoted(one));
        }
        many => {
            let _ = write!(out, "{}.label IN (", f.alias);
            for (i, l) in many.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&quoted(l));
            }
            out.push(')');
        }
    }
}

fn quoted(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// XPath-1.0-flavoured number formatting, kept in step with the XQuery
/// engine so both backends print identical literals.
pub fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_scalar(out: &mut String, s: &Scalar, depth: usize) {
    match s {
        Scalar::Pre(a) => {
            let _ = write!(out, "{a}.pre");
        }
        Scalar::Val(a) => {
            let _ = write!(out, "strval({a})");
        }
        Scalar::Nodes {
            alias,
            axis,
            labels,
        } => {
            // Rendered as a correlated column set; the executor view is
            // the containment join documented in BACKENDS.md.
            let axis = match axis {
                crate::ast::PathAxis::Child => "child",
                crate::ast::PathAxis::Descendant => "descendant",
            };
            let _ = write!(out, "strval({axis}({alias}, ");
            for (i, l) in labels.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&quoted(l));
            }
            out.push_str("))");
        }
        Scalar::Str(v) => out.push_str(&quoted(v)),
        Scalar::Num(n) => out.push_str(&format_number(*n)),
        Scalar::Agg { func, query } => {
            out.push_str("(\n");
            write_query(out, query, depth + 1, Some(*func));
            pad(out, depth);
            out.push(')');
        }
    }
}

fn write_pred(out: &mut String, p: &Pred, depth: usize) {
    match p {
        Pred::Cmp { op, lhs, rhs } => {
            write_scalar(out, lhs, depth);
            let _ = write!(out, " {op} ");
            write_scalar(out, rhs, depth);
        }
        Pred::StrFn { func, lhs, rhs } => {
            let _ = write!(out, "{func}(");
            write_scalar(out, lhs, depth);
            out.push_str(", ");
            write_scalar(out, rhs, depth);
            out.push(')');
        }
        Pred::Mqf(aliases) => {
            out.push_str("mqf(");
            out.push_str(&aliases.join(", "));
            out.push(')');
        }
        Pred::ChildOf { child, parent } => {
            let _ = write!(out, "{child}.parent_pre = {parent}.pre");
        }
        Pred::Within { inner, outer } => {
            let _ = write!(
                out,
                "({outer}.pre < {inner}.pre AND {inner}.pre <= {outer}.extent)"
            );
        }
        Pred::And(parts) => {
            out.push('(');
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" AND ");
                }
                write_pred(out, part, depth);
            }
            out.push(')');
        }
        Pred::Or(parts) => {
            out.push('(');
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" OR ");
                }
                write_pred(out, part, depth);
            }
            out.push(')');
        }
        Pred::Not(inner) => {
            out.push_str("NOT ");
            write_pred(out, inner, depth);
        }
        Pred::Exists { query, negated } => {
            if *negated {
                out.push_str("NOT ");
            }
            out.push_str("EXISTS (\n");
            write_query(out, query, depth + 1, None);
            pad(out, depth);
            out.push(')');
        }
    }
}
