#![warn(missing_docs)]
// The executor sits on the serving path of `POST /query` with
// `"backend": "sql"`; a panic would take the whole request down, so the
// escape hatches are denied exactly as in the other serving-path
// crates.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # sqlq — the SQL subset of the NaLIX SQL backend
//!
//! Three pieces, used together by `nalix::backend::sql`:
//!
//! - [`ast`] — the query AST: exactly the `SELECT … FROM node AS … WHERE
//!   … ORDER BY …` shapes the translator's FLWOR plans lower to, plus
//!   the dialect predicate `mqf(…)` (the MLCA meaningfulness test, whose
//!   relational expansion `docs/BACKENDS.md` spells out).
//! - [`pretty()`] — renders a query as SQL text (served by `/query`,
//!   snapshotted by the golden tests).
//! - [`exec`] — a panic-free nested-loop executor over a
//!   [`relstore::Shredding`], with conjunct pushdown and the XQuery
//!   engine's value semantics (existential general comparison,
//!   numeric-when-both-parse ordering, engine-identical aggregates and
//!   atomization), so both backends produce the same answer sets.

pub mod ast;
pub mod exec;
pub mod pretty;

pub use ast::{
    FromItem, OrderSpec, PathAxis, Pred, Projection, Scalar, SqlAgg, SqlCmp, SqlQuery, StrFn,
};
pub use exec::{compare_vals, execute, ExecLimits, SqlError, SqlOutput, SqlVal};
pub use pretty::pretty;

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::Shredding;

    fn shred(xml: &str) -> Shredding {
        Shredding::build(&xmldb::Document::parse_str(xml).unwrap())
    }

    fn val(a: &str) -> Scalar {
        Scalar::Val(a.into())
    }

    fn from(alias: &str, labels: &[&str]) -> FromItem {
        FromItem {
            alias: alias.into(),
            labels: labels.iter().map(|l| (*l).to_owned()).collect(),
        }
    }

    fn run(shred: &Shredding, q: &SqlQuery) -> Vec<String> {
        execute(shred, q, &ExecLimits::default())
            .unwrap()
            .strings(shred)
    }

    const BIB: &str = "<bib>\
        <book><title>TCP/IP Illustrated</title><price>65.95</price><year>1994</year></book>\
        <book><title>Advanced Unix</title><price>65.95</price><year>1992</year></book>\
        <book><title>Data on the Web</title><price>39.95</price><year>2000</year></book>\
        </bib>";

    #[test]
    fn selection_with_constant_filter() {
        let s = shred(BIB);
        let q = SqlQuery {
            projection: Projection::Columns(vec![val("v1")]),
            from: vec![from("v1", &["title"]), from("v2", &["price"])],
            preds: vec![
                Pred::Mqf(vec!["v1".into(), "v2".into()]),
                Pred::Cmp {
                    op: SqlCmp::Lt,
                    lhs: val("v2"),
                    rhs: Scalar::Num(50.0),
                },
            ],
            order_by: vec![],
        };
        assert_eq!(run(&s, &q), vec!["Data on the Web"]);
    }

    #[test]
    fn order_by_sorts_numerically_and_desc_reverses() {
        let s = shred(BIB);
        let mut q = SqlQuery {
            projection: Projection::Columns(vec![val("v1")]),
            from: vec![from("v1", &["year"])],
            preds: vec![],
            order_by: vec![OrderSpec {
                key: val("v1"),
                desc: false,
            }],
        };
        assert_eq!(run(&s, &q), vec!["1992", "1994", "2000"]);
        q.order_by[0].desc = true;
        assert_eq!(run(&s, &q), vec!["2000", "1994", "1992"]);
    }

    #[test]
    fn uncorrelated_min_subquery_selects_cheapest_book() {
        let s = shred(BIB);
        let q = SqlQuery {
            projection: Projection::Columns(vec![val("v1")]),
            from: vec![from("v1", &["title"]), from("v2", &["price"])],
            preds: vec![
                Pred::Mqf(vec!["v1".into(), "v2".into()]),
                Pred::Cmp {
                    op: SqlCmp::Eq,
                    lhs: val("v2"),
                    rhs: Scalar::Agg {
                        func: SqlAgg::Min,
                        query: Box::new(SqlQuery {
                            projection: Projection::Columns(vec![val("v3")]),
                            from: vec![from("v3", &["price"])],
                            preds: vec![],
                            order_by: vec![],
                        }),
                    },
                },
            ],
            order_by: vec![],
        };
        assert_eq!(run(&s, &q), vec!["Data on the Web"]);
    }

    #[test]
    fn correlated_count_subquery_sees_outer_alias() {
        // Each book carries exactly one price, so a correlated
        // `count(price within this book) = 1` keeps every title.
        let s = shred(BIB);
        let q = SqlQuery {
            projection: Projection::Columns(vec![val("v1")]),
            from: vec![from("v1", &["book"])],
            preds: vec![Pred::Cmp {
                op: SqlCmp::Eq,
                lhs: Scalar::Agg {
                    func: SqlAgg::Count,
                    query: Box::new(SqlQuery {
                        projection: Projection::Columns(vec![val("q1")]),
                        from: vec![from("q1", &["price"])],
                        preds: vec![Pred::Within {
                            inner: "q1".into(),
                            outer: "v1".into(),
                        }],
                        order_by: vec![],
                    }),
                },
                rhs: Scalar::Num(1.0),
            }],
            order_by: vec![],
        };
        assert_eq!(run(&s, &q).len(), 3);
    }

    #[test]
    fn count_aggregate_over_empty_input_is_zero() {
        let s = shred(BIB);
        let q = SqlQuery {
            projection: Projection::Columns(vec![Scalar::Agg {
                func: SqlAgg::Count,
                query: Box::new(SqlQuery {
                    projection: Projection::Columns(vec![val("v1")]),
                    from: vec![from("v1", &["isbn"])],
                    preds: vec![],
                    order_by: vec![],
                }),
            }]),
            from: vec![from("v0", &["bib"])],
            preds: vec![],
            order_by: vec![],
        };
        assert_eq!(run(&s, &q), vec!["0"]);
    }

    #[test]
    fn sum_over_non_numeric_is_a_type_error() {
        let s = shred(BIB);
        let q = SqlQuery {
            projection: Projection::Columns(vec![Scalar::Agg {
                func: SqlAgg::Sum,
                query: Box::new(SqlQuery {
                    projection: Projection::Columns(vec![val("v1")]),
                    from: vec![from("v1", &["title"])],
                    preds: vec![],
                    order_by: vec![],
                }),
            }]),
            from: vec![from("v0", &["bib"])],
            preds: vec![],
            order_by: vec![],
        };
        let err = execute(&s, &q, &ExecLimits::default()).unwrap_err();
        assert!(matches!(err, SqlError::TypeError(_)), "{err}");
    }

    #[test]
    fn child_and_within_joins() {
        let s = shred("<a><b><c>x</c></b><c>y</c></a>");
        let child = SqlQuery {
            projection: Projection::Columns(vec![val("v2")]),
            from: vec![from("v1", &["a"]), from("v2", &["c"])],
            preds: vec![Pred::ChildOf {
                child: "v2".into(),
                parent: "v1".into(),
            }],
            order_by: vec![],
        };
        assert_eq!(run(&s, &child), vec!["y"]);
        let within = SqlQuery {
            projection: Projection::Columns(vec![val("v2")]),
            from: vec![from("v1", &["a"]), from("v2", &["c"])],
            preds: vec![Pred::Within {
                inner: "v2".into(),
                outer: "v1".into(),
            }],
            order_by: vec![],
        };
        assert_eq!(run(&s, &within), vec!["x", "y"]);
    }

    #[test]
    fn not_exists_implements_universal_quantification() {
        // Books where *every* related price < 50 (i.e. NOT EXISTS a
        // related price >= 50): only the third book qualifies.
        let s = shred(BIB);
        let q = SqlQuery {
            projection: Projection::Columns(vec![val("v1")]),
            from: vec![from("v1", &["title"])],
            preds: vec![Pred::Exists {
                negated: true,
                query: Box::new(SqlQuery {
                    projection: Projection::Columns(vec![val("q1")]),
                    from: vec![from("q1", &["price"])],
                    preds: vec![
                        Pred::Mqf(vec!["q1".into(), "v1".into()]),
                        Pred::Cmp {
                            op: SqlCmp::Ge,
                            lhs: val("q1"),
                            rhs: Scalar::Num(50.0),
                        },
                    ],
                    order_by: vec![],
                }),
            }],
            order_by: vec![],
        };
        assert_eq!(run(&s, &q), vec!["Data on the Web"]);
    }

    #[test]
    fn nodes_scalar_reads_children_values() {
        let s = shred(BIB);
        let q = SqlQuery {
            projection: Projection::Columns(vec![Scalar::Nodes {
                alias: "v1".into(),
                axis: PathAxis::Child,
                labels: vec!["title".into()],
            }]),
            from: vec![from("v1", &["book"])],
            preds: vec![Pred::Cmp {
                op: SqlCmp::Eq,
                lhs: Scalar::Nodes {
                    alias: "v1".into(),
                    axis: PathAxis::Descendant,
                    labels: vec!["year".into()],
                },
                rhs: Scalar::Str("2000".into()),
            }],
            order_by: vec![],
        };
        assert_eq!(run(&s, &q), vec!["Data on the Web"]);
    }

    #[test]
    fn concat_projection_joins_values_per_row() {
        let s = shred(BIB);
        let q = SqlQuery {
            projection: Projection::Concat(vec![val("v1"), Scalar::Str(" / ".into()), val("v2")]),
            from: vec![from("v1", &["title"]), from("v2", &["year"])],
            preds: vec![Pred::Mqf(vec!["v1".into(), "v2".into()])],
            order_by: vec![],
        };
        assert_eq!(
            run(&s, &q),
            vec![
                "TCP/IP Illustrated / 1994",
                "Advanced Unix / 1992",
                "Data on the Web / 2000"
            ]
        );
    }

    #[test]
    fn str_fn_predicates() {
        let s = shred(BIB);
        let q = SqlQuery {
            projection: Projection::Columns(vec![val("v1")]),
            from: vec![from("v1", &["title"])],
            preds: vec![Pred::StrFn {
                func: StrFn::Contains,
                lhs: val("v1"),
                rhs: Scalar::Str("Web".into()),
            }],
            order_by: vec![],
        };
        assert_eq!(run(&s, &q), vec!["Data on the Web"]);
    }

    #[test]
    fn tuple_budget_aborts() {
        let s = shred(BIB);
        let q = SqlQuery {
            projection: Projection::Columns(vec![val("v1")]),
            from: vec![from("v1", &["title"]), from("v2", &["price"])],
            preds: vec![],
            order_by: vec![],
        };
        let err = execute(
            &s,
            &q,
            &ExecLimits {
                max_tuples: Some(2),
            },
        )
        .unwrap_err();
        assert_eq!(err, SqlError::Budget(2));
    }

    #[test]
    fn pretty_prints_the_subset() {
        let q = SqlQuery {
            projection: Projection::Columns(vec![val("v1")]),
            from: vec![from("v1", &["title"]), from("v2", &["price"])],
            preds: vec![
                Pred::Mqf(vec!["v1".into(), "v2".into()]),
                Pred::Cmp {
                    op: SqlCmp::Lt,
                    lhs: val("v2"),
                    rhs: Scalar::Num(50.0),
                },
            ],
            order_by: vec![OrderSpec {
                key: Scalar::Pre("v1".into()),
                desc: false,
            }],
        };
        let text = pretty(&q);
        assert_eq!(
            text,
            "SELECT strval(v1)\n\
             FROM node AS v1, node AS v2\n\
             WHERE v1.label = 'title'\n\
             \x20 AND v2.label = 'price'\n\
             \x20 AND mqf(v1, v2)\n\
             \x20 AND strval(v2) < 50\n\
             ORDER BY v1.pre\n"
        );
    }

    #[test]
    fn executor_matches_xquery_engine_on_a_joint_query() {
        // Differential check: the same logical query through the XQuery
        // engine and through the SQL executor.
        let doc = std::sync::Arc::new(xmldb::Document::parse_str(BIB).unwrap());
        let expr = xquery::parse(
            "for $t in doc()//title, $p in doc()//price \
             where mqf($t,$p) and $p < 50 return $t",
        )
        .unwrap();
        let engine = xquery::Engine::new(doc.clone());
        let seq = engine.eval_expr(&expr).unwrap();
        let xq = engine.strings(&seq);
        let s = Shredding::build(&doc);
        let q = SqlQuery {
            projection: Projection::Columns(vec![val("t")]),
            from: vec![from("t", &["title"]), from("p", &["price"])],
            preds: vec![
                Pred::Mqf(vec!["t".into(), "p".into()]),
                Pred::Cmp {
                    op: SqlCmp::Lt,
                    lhs: val("p"),
                    rhs: Scalar::Num(50.0),
                },
            ],
            order_by: vec![],
        };
        assert_eq!(run(&s, &q), xq);
    }
}
