//! The SQL subset the NaLIX SQL backend emits.
//!
//! One query = `SELECT … FROM node AS a, node AS b, … WHERE … ORDER BY
//! …` over the two relstore tables. The grammar is deliberately small —
//! exactly what the translator's FLWOR plans lower to (see
//! `docs/BACKENDS.md` for the full grammar and the mapping):
//!
//! - every `FROM` item scans the `node` table under a label predicate;
//! - joins are equi-joins on the interval columns (`parent_pre = pre`)
//!   or containment predicates (`pre BETWEEN … AND extent`), plus the
//!   dialect predicate `mqf(a, b, …)`;
//! - scalar access is `strval(a)` — the atomized string value, a
//!   containment join against the `value` table;
//! - aggregates are correlated scalar subqueries;
//! - universal quantification is `NOT EXISTS (…)`.

/// Comparison operators (general-comparison semantics: numeric when
/// both sides parse as numbers, lexicographic otherwise, existential
/// over multi-valued operands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlCmp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl std::fmt::Display for SqlCmp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SqlCmp::Eq => "=",
            SqlCmp::Ne => "<>",
            SqlCmp::Lt => "<",
            SqlCmp::Le => "<=",
            SqlCmp::Gt => ">",
            SqlCmp::Ge => ">=",
        })
    }
}

/// Aggregate functions of scalar subqueries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlAgg {
    /// `count(…)`
    Count,
    /// `sum(…)`
    Sum,
    /// `min(…)`
    Min,
    /// `max(…)`
    Max,
    /// `avg(…)`
    Avg,
}

impl std::fmt::Display for SqlAgg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SqlAgg::Count => "count",
            SqlAgg::Sum => "sum",
            SqlAgg::Min => "min",
            SqlAgg::Max => "max",
            SqlAgg::Avg => "avg",
        })
    }
}

/// String predicates (mapped from the XQuery `contains`/`starts-with`/
/// `ends-with` calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrFn {
    /// Substring containment.
    Contains,
    /// Prefix test.
    StartsWith,
    /// Suffix test.
    EndsWith,
}

impl std::fmt::Display for StrFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StrFn::Contains => "contains",
            StrFn::StartsWith => "starts_with",
            StrFn::EndsWith => "ends_with",
        })
    }
}

/// Axis of a correlated node-set access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathAxis {
    /// Direct children (`parent_pre` equi-join).
    Child,
    /// Proper descendants (interval containment).
    Descendant,
}

/// A scalar expression. Scalars are *sequence-valued* (zero or more
/// values), exactly as in the XQuery data model: a bound row yields one
/// value, a [`Scalar::Nodes`] access yields the matching rows' values,
/// an empty aggregate yields none.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// `alias.pre` — the row's document position (used for the
    /// source-order `ORDER BY` keys).
    Pre(String),
    /// `strval(alias)` — the row's atomized string value.
    Val(String),
    /// The labelled children or descendants of the alias's row — a
    /// containment join producing zero or more values, in pre order.
    Nodes {
        /// The anchoring alias.
        alias: String,
        /// Which axis.
        axis: PathAxis,
        /// Accepted labels (disjunctive).
        labels: Vec<String>,
    },
    /// A string literal.
    Str(String),
    /// A numeric literal.
    Num(f64),
    /// A correlated scalar subquery under an aggregate.
    Agg {
        /// The aggregate function.
        func: SqlAgg,
        /// The subquery producing the aggregated column.
        query: Box<SqlQuery>,
    },
}

/// A predicate (`WHERE` conjunct).
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// General comparison, existential over multi-valued scalars.
    Cmp {
        /// Operator.
        op: SqlCmp,
        /// Left operand.
        lhs: Scalar,
        /// Right operand.
        rhs: Scalar,
    },
    /// String predicate on the operands' first values.
    StrFn {
        /// Which predicate.
        func: StrFn,
        /// Left operand.
        lhs: Scalar,
        /// Right operand.
        rhs: Scalar,
    },
    /// The dialect predicate `mqf(a, b, …)`: all the aliases' rows are
    /// pairwise meaningfully related (MLCA test over the interval
    /// columns; `docs/BACKENDS.md` gives its relational expansion).
    Mqf(Vec<String>),
    /// Equi-join `child.parent_pre = parent.pre`.
    ChildOf {
        /// Child-side alias.
        child: String,
        /// Parent-side alias.
        parent: String,
    },
    /// Containment join: `inner` lies properly inside `outer`'s subtree
    /// (`outer.pre < inner.pre AND inner.pre <= outer.extent`).
    Within {
        /// The contained alias.
        inner: String,
        /// The containing alias.
        outer: String,
    },
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// `[NOT] EXISTS (subquery)`, correlated against the outer aliases.
    Exists {
        /// The subquery.
        query: Box<SqlQuery>,
        /// True for `NOT EXISTS`.
        negated: bool,
    },
}

/// One `FROM node AS alias` item with its label predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// The alias (unique within the query; subqueries may shadow).
    pub alias: String,
    /// Accepted labels (`label = 'x'` or `label IN (…)`).
    pub labels: Vec<String>,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    /// Key expression (its first value orders the row; rows without a
    /// value sort first).
    pub key: Scalar,
    /// Descending?
    pub desc: bool,
}

/// The `SELECT` list shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// Plain columns: each row emits every item value as its own
    /// output, in item order.
    Columns(Vec<Scalar>),
    /// `concat(…)`: each row emits a single string, the concatenation
    /// of every item value (the relational image of the translator's
    /// `element result { … }` wrapper).
    Concat(Vec<Scalar>),
}

/// A query of the subset.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlQuery {
    /// The `SELECT` list.
    pub projection: Projection,
    /// The `FROM` items, in binding order (= result enumeration order).
    pub from: Vec<FromItem>,
    /// `WHERE` conjuncts.
    pub preds: Vec<Pred>,
    /// `ORDER BY` keys, already including the source-order `pre`
    /// tiebreakers the lowering appends.
    pub order_by: Vec<OrderSpec>,
}

impl SqlQuery {
    /// All aliases bound by this query's own `FROM` clause.
    pub fn local_aliases(&self) -> Vec<&str> {
        self.from.iter().map(|f| f.alias.as_str()).collect()
    }
}
