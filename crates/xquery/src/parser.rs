//! Recursive-descent parser for the textual XQuery subset.
//!
//! Grammar (informal):
//!
//! ```text
//! Query      := ExprSingle
//! ExprSingle := Flwor | Quantified | OrExpr
//! Flwor      := (ForClause | LetClause)+ ("where" ExprSingle)?
//!               ("order" "by" OrderKey ("," OrderKey)*)? "return" ExprSingle
//! ForClause  := "for" "$"name "in" ExprSingle ("," "$"name "in" ExprSingle)*
//! LetClause  := "let" "$"name ":=" ExprSingle ("," "$"name ":=" ExprSingle)*
//! OrderKey   := ExprSingle ("ascending" | "descending")?
//! OrExpr     := AndExpr ("or" AndExpr)*
//! AndExpr    := CmpExpr ("and" CmpExpr)*
//! CmpExpr    := Primary (CmpOp Primary)?
//! Primary    := Path | Literal | FnCall | "element" name "{" Expr "}"
//!             | "(" Expr ("," Expr)* ")" | "{" ExprSingle "}"
//! Path       := ("doc" "(" Str? ")" | "$"name) (("/"|"//") NameTest)*
//! NameTest   := name | "*" | "(" name ("|" name)* ")"
//! ```
//!
//! The enclosed-expression braces `{ … }` appear in the paper's output
//! style (`let $vars1 := { for … return … }`) and are accepted as plain
//! grouping.

use crate::ast::{
    AggFunc, Binding, CmpOp, Expr, OrderDir, OrderKey, PathRoot, Quantifier, Step, StepAxis,
};
use crate::lexer::{lex, LexError, Token};
use std::fmt;

/// A parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Token index at which the error occurred (usize::MAX = end).
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XQuery parse error at token {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            at: usize::MAX,
            message: format!("lexical error: {e}"),
        }
    }
}

/// Parse a query string into an expression.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = lex(input)?;
    let mut p = P { tokens, pos: 0 };
    let e = p.expr_single()?;
    if p.pos != p.tokens.len() {
        return Err(p.err(format!("unexpected trailing token `{}`", p.tokens[p.pos])));
    }
    Ok(e)
}

struct P {
    tokens: Vec<Token>,
    pos: usize,
}

impl P {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{t}`, found {}",
                self.peek()
                    .map_or("end of input".to_owned(), |x| format!("`{x}`"))
            )))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Name(n)) if n == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected keyword `{kw}`, found {}",
                self.peek()
                    .map_or("end of input".to_owned(), |x| format!("`{x}`"))
            )))
        }
    }

    fn expect_var(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Var(v)) => Ok(v),
            other => Err(self.err(format!(
                "expected a variable, found {}",
                other.map_or("end of input".to_owned(), |x| format!("`{x}`"))
            ))),
        }
    }

    fn expect_name(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Name(n)) => Ok(n),
            other => Err(self.err(format!(
                "expected a name, found {}",
                other.map_or("end of input".to_owned(), |x| format!("`{x}`"))
            ))),
        }
    }

    // ------------------------------------------------------------------

    fn expr_single(&mut self) -> Result<Expr, ParseError> {
        if self.at_keyword("for") || self.at_keyword("let") {
            return self.flwor();
        }
        if self.at_keyword("some") || self.at_keyword("every") {
            // A quantifier keyword begins a quantified expression only
            // when followed by a variable.
            if matches!(self.peek2(), Some(Token::Var(_))) {
                return self.quantified();
            }
        }
        self.or_expr()
    }

    fn flwor(&mut self) -> Result<Expr, ParseError> {
        let mut bindings = Vec::new();
        loop {
            if self.eat_keyword("for") {
                loop {
                    let var = self.expect_var()?;
                    self.expect_keyword("in")?;
                    let source = self.expr_single()?;
                    bindings.push(Binding::For { var, source });
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            } else if self.eat_keyword("let") {
                loop {
                    let var = self.expect_var()?;
                    self.expect(&Token::Assign)?;
                    let value = self.expr_single()?;
                    bindings.push(Binding::Let { var, value });
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        if bindings.is_empty() {
            return Err(self.err("FLWOR must begin with `for` or `let`"));
        }
        let where_clause = if self.eat_keyword("where") {
            Some(Box::new(self.expr_single()?))
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.or_expr()?;
                let dir = if self.eat_keyword("descending") {
                    OrderDir::Descending
                } else {
                    let _ = self.eat_keyword("ascending");
                    OrderDir::Ascending
                };
                order_by.push(OrderKey { expr, dir });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_keyword("return")?;
        let ret = Box::new(self.expr_single()?);
        Ok(Expr::Flwor {
            bindings,
            where_clause,
            order_by,
            ret,
        })
    }

    fn quantified(&mut self) -> Result<Expr, ParseError> {
        let quant = if self.eat_keyword("some") {
            Quantifier::Some
        } else {
            self.expect_keyword("every")?;
            Quantifier::Every
        };
        let var = self.expect_var()?;
        self.expect_keyword("in")?;
        let source = Box::new(self.expr_single()?);
        self.expect_keyword("satisfies")?;
        let satisfies = Box::new(self.expr_single()?);
        Ok(Expr::Quantified {
            quant,
            var,
            source,
            satisfies,
        })
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.and_expr()?;
        if !self.at_keyword("or") {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat_keyword("or") {
            parts.push(self.and_expr()?);
        }
        Ok(Expr::Or(parts))
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.cmp_expr()?;
        if !self.at_keyword("and") {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat_keyword("and") {
            parts.push(self.cmp_expr()?);
        }
        Ok(Expr::And(parts))
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.primary()?;
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.primary()?;
        Ok(Expr::cmp(op, lhs, rhs))
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Token::Num(n)) => {
                self.pos += 1;
                Ok(Expr::Num(n))
            }
            Some(Token::Var(_)) => self.path_from_var(),
            Some(Token::LParen) => {
                self.pos += 1;
                let mut items = vec![self.expr_single()?];
                while self.eat(&Token::Comma) {
                    items.push(self.expr_single()?);
                }
                self.expect(&Token::RParen)?;
                Ok(match (items.pop(), items.is_empty()) {
                    (Some(only), true) => only,
                    (Some(last), false) => {
                        items.push(last);
                        Expr::Seq(items)
                    }
                    (None, _) => Expr::Seq(items),
                })
            }
            Some(Token::LBrace) => {
                self.pos += 1;
                let e = self.expr_single()?;
                self.expect(&Token::RBrace)?;
                Ok(e)
            }
            Some(Token::Name(name)) => {
                // doc(...) path root
                if name == "doc" && self.peek2() == Some(&Token::LParen) {
                    return self.path_from_doc();
                }
                // element constructor
                if name == "element" {
                    self.pos += 1;
                    let ename = self.expect_name()?;
                    self.expect(&Token::LBrace)?;
                    let mut content = vec![self.expr_single()?];
                    while self.eat(&Token::Comma) {
                        content.push(self.expr_single()?);
                    }
                    self.expect(&Token::RBrace)?;
                    return Ok(Expr::Element {
                        name: ename,
                        content,
                    });
                }
                // function call
                if self.peek2() == Some(&Token::LParen) {
                    return self.fn_call();
                }
                Err(self.err(format!("unexpected name `{name}` (not a function call)")))
            }
            other => Err(self.err(format!(
                "unexpected {}",
                other.map_or("end of input".to_owned(), |x| format!("`{x}`"))
            ))),
        }
    }

    fn fn_call(&mut self) -> Result<Expr, ParseError> {
        let name = self.expect_name()?;
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            args.push(self.expr_single()?);
            while self.eat(&Token::Comma) {
                args.push(self.expr_single()?);
            }
        }
        self.expect(&Token::RParen)?;
        let agg = |f: AggFunc, mut args: Vec<Expr>, p: &P| -> Result<Expr, ParseError> {
            match (args.pop(), args.is_empty()) {
                (Some(arg), true) => Ok(Expr::Agg {
                    func: f,
                    arg: Box::new(arg),
                }),
                _ => Err(p.err(format!("{f} takes exactly one argument"))),
            }
        };
        match name.as_str() {
            "count" => agg(AggFunc::Count, args, self),
            "sum" => agg(AggFunc::Sum, args, self),
            "min" => agg(AggFunc::Min, args, self),
            "max" => agg(AggFunc::Max, args, self),
            "avg" => agg(AggFunc::Avg, args, self),
            "not" => match (args.pop(), args.is_empty()) {
                (Some(arg), true) => Ok(Expr::Not(Box::new(arg))),
                _ => Err(self.err("not takes exactly one argument")),
            },
            "mqf" => Ok(Expr::Mqf(args)),
            _ => Ok(Expr::Call { name, args }),
        }
    }

    fn path_from_doc(&mut self) -> Result<Expr, ParseError> {
        self.expect_keyword("doc")?;
        self.expect(&Token::LParen)?;
        let uri = match self.peek().cloned() {
            Some(Token::Str(s)) => {
                self.pos += 1;
                Some(s)
            }
            _ => None,
        };
        self.expect(&Token::RParen)?;
        let steps = self.steps()?;
        Ok(Expr::Path {
            root: PathRoot::Doc(uri),
            steps,
        })
    }

    fn path_from_var(&mut self) -> Result<Expr, ParseError> {
        let var = self.expect_var()?;
        let steps = self.steps()?;
        Ok(Expr::Path {
            root: PathRoot::Var(var),
            steps,
        })
    }

    fn steps(&mut self) -> Result<Vec<Step>, ParseError> {
        let mut steps = Vec::new();
        loop {
            let axis = if self.eat(&Token::DoubleSlash) {
                StepAxis::Descendant
            } else if self.eat(&Token::Slash) {
                StepAxis::Child
            } else {
                break;
            };
            let names = match self.peek().cloned() {
                Some(Token::Name(n)) => {
                    self.pos += 1;
                    vec![n]
                }
                Some(Token::Star) => {
                    self.pos += 1;
                    Vec::new()
                }
                Some(Token::LParen) => {
                    self.pos += 1;
                    let mut names = vec![self.expect_name()?];
                    while self.eat(&Token::Pipe) {
                        names.push(self.expect_name()?);
                    }
                    self.expect(&Token::RParen)?;
                    names
                }
                other => {
                    return Err(self.err(format!(
                        "expected a name test, found {}",
                        other.map_or("end of input".to_owned(), |x| format!("`{x}`"))
                    )))
                }
            };
            steps.push(Step { axis, names });
        }
        Ok(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_flwor() {
        let e = parse("for $v in doc()//movie return $v").unwrap();
        match e {
            Expr::Flwor { bindings, ret, .. } => {
                assert_eq!(bindings.len(), 1);
                assert_eq!(bindings[0].var(), "v");
                assert_eq!(*ret, Expr::var("v"));
            }
            other => panic!("expected Flwor, got {other:?}"),
        }
    }

    #[test]
    fn parses_multi_binding_for() {
        let e = parse("for $a in doc()//x, $b in doc()//y return $a").unwrap();
        match e {
            Expr::Flwor { bindings, .. } => assert_eq!(bindings.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_where_with_mqf_and_comparison() {
        let e = parse(
            "for $d in doc()//director, $t in doc()//title \
             where mqf($d, $t) and $t = \"Traffic\" return $d",
        )
        .unwrap();
        match e {
            Expr::Flwor { where_clause, .. } => {
                let w = where_clause.unwrap();
                match *w {
                    Expr::And(ref parts) => {
                        assert_eq!(parts.len(), 2);
                        assert!(matches!(parts[0], Expr::Mqf(_)));
                        assert!(matches!(parts[1], Expr::Cmp { .. }));
                    }
                    ref other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_let_with_braced_flwor() {
        let e = parse(
            "for $v1 in doc()//director \
             let $vars1 := { for $v2 in doc()//movie where mqf($v1,$v2) return $v2 } \
             where count($vars1) > 1 return $v1",
        )
        .unwrap();
        match e {
            Expr::Flwor { bindings, .. } => {
                assert_eq!(bindings.len(), 2);
                assert!(matches!(bindings[1], Binding::Let { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_order_by() {
        let e =
            parse("for $b in doc()//book order by $b/title descending return $b/title").unwrap();
        match e {
            Expr::Flwor { order_by, .. } => {
                assert_eq!(order_by.len(), 1);
                assert_eq!(order_by[0].dir, OrderDir::Descending);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_quantified() {
        let e = parse(
            "for $b in doc()//book where some $a in $b/author satisfies contains($a, \"Suciu\") return $b/title",
        )
        .unwrap();
        match e {
            Expr::Flwor { where_clause, .. } => {
                assert!(matches!(*where_clause.unwrap(), Expr::Quantified { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_disjunctive_name_test() {
        let e = parse("for $x in doc()//(book|article) return $x").unwrap();
        match e {
            Expr::Flwor { bindings, .. } => match &bindings[0] {
                Binding::For { source, .. } => match source {
                    Expr::Path { steps, .. } => {
                        assert_eq!(steps[0].names, vec!["book", "article"]);
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_wildcard_step() {
        let e = parse("for $x in doc()//book/* return $x").unwrap();
        match e {
            Expr::Flwor { bindings, .. } => match &bindings[0] {
                Binding::For { source, .. } => match source {
                    Expr::Path { steps, .. } => assert!(steps[1].is_wildcard()),
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_element_constructor() {
        let e =
            parse("for $b in doc()//book return element result { $b/title, $b/author }").unwrap();
        match e {
            Expr::Flwor { ret, .. } => match *ret {
                Expr::Element {
                    ref name,
                    ref content,
                } => {
                    assert_eq!(name, "result");
                    assert_eq!(content.len(), 2);
                }
                ref other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_doc_with_uri() {
        let e = parse("for $v in doc(\"movie.xml\")//movie return $v").unwrap();
        match e {
            Expr::Flwor { bindings, .. } => match &bindings[0] {
                Binding::For { source, .. } => match source {
                    Expr::Path {
                        root: PathRoot::Doc(Some(uri)),
                        ..
                    } => assert_eq!(uri, "movie.xml"),
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregate_arity_is_checked() {
        assert!(parse("for $x in doc()//a where count($x, $x) > 0 return $x").is_err());
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse("for $v in doc()//a return $v extra").is_err());
    }

    #[test]
    fn rejects_missing_return() {
        assert!(parse("for $v in doc()//a where $v = 1").is_err());
    }

    #[test]
    fn parses_nested_flwor_in_return() {
        let e = parse(
            "for $a in doc()//author return (for $b in doc()//book where mqf($a,$b) return $b/title)",
        )
        .unwrap();
        match e {
            Expr::Flwor { ret, .. } => assert!(matches!(*ret, Expr::Flwor { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_not_and_negated_comparison() {
        let e = parse("for $x in doc()//a where not($x = 1) return $x").unwrap();
        match e {
            Expr::Flwor { where_clause, .. } => {
                assert!(matches!(*where_clause.unwrap(), Expr::Not(_)))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn round_trips_figure9_query() {
        // The full translation of Query 2 (paper Figure 9).
        let q = r#"
        for $v1 in doc("movie.xml")//director, $v4 in doc("movie.xml")//director
        let $vars1 := { for $v5 in doc("movie.xml")//director, $v2 in doc("movie.xml")//movie
                        where mqf($v2,$v5) and $v5 = $v1 return $v2 }
        let $vars2 := { for $v6 in doc("movie.xml")//director, $v3 in doc("movie.xml")//movie
                        where mqf($v3,$v6) and $v6 = $v4 return $v3 }
        where count($vars1) = count($vars2) and $v4 = "Ron Howard"
        return $v1"#;
        let e = parse(q).unwrap();
        match e {
            Expr::Flwor { bindings, .. } => assert_eq!(bindings.len(), 4),
            other => panic!("{other:?}"),
        }
    }
}
