#![warn(missing_docs)]
// The evaluator sits on the NL→answer hot path: a malformed or
// adversarial query must come back as a structured error, never a
// process abort (paper Sec. 4 — NaLIX always answers with feedback).
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # xquery — a Schema-Free XQuery engine
//!
//! The target language of the NaLIX translation: an XQuery-subset engine
//! extended with the `mqf()` (*meaningful query focus*) predicate of
//! Schema-Free XQuery (Li, Yang & Jagadish, VLDB 2004), evaluated over
//! the [`xmldb`] store.
//!
//! ## Supported language
//!
//! - FLWOR expressions: `for`/`let` (interleaved, multiple bindings),
//!   `where`, `order by … [ascending|descending]`, `return`; arbitrary
//!   nesting (a `let` may bind `{ for … return … }`).
//! - Path expressions: `doc("…")//name`, `$v/name`, `$v//name`, the
//!   wildcard `*`, and **disjunctive name tests** `(a|b)` — the form the
//!   NaLIX term expansion produces when several element names match a
//!   query word.
//! - General comparisons `= != < <= > >=` with numeric coercion,
//!   existential over sequences (XPath 1.0 style).
//! - Logic: `and`, `or`, `not(…)`.
//! - Aggregates: `count sum min max avg`; `distinct-values`.
//! - Quantifiers: `some|every $x in E satisfies E`.
//! - String functions: `contains starts-with ends-with string-length`.
//! - Computed element constructors: `element name { … }`.
//! - **`mqf($a, $b, …)`** — true iff the bound nodes are pairwise
//!   *meaningfully related* under the MLCA semantics (see [`mlca`]).
//!
//! ## Quick start
//!
//! ```
//! use xmldb::datasets::movies::movies;
//! use xquery::Engine;
//!
//! let doc = movies();
//! let engine = Engine::new(doc);
//! let out = engine
//!     .run("for $d in doc()//director, $t in doc()//title \
//!           where mqf($d, $t) and $t = \"Traffic\" return $d")
//!     .unwrap();
//! assert_eq!(out.len(), 1);
//! assert_eq!(engine.item_string(&out[0]), "Steven Soderbergh");
//! ```
//!
//! The `mqf` clause is what makes the query *schema-free*: the director
//! and the title are matched through their structural relationship (same
//! `movie`), with no path from the root spelled out.
//!
//! ## Observability
//!
//! Every [`Engine`] owns an
//! [`obs::MetricsRegistry`] ([`Engine::new`] creates a fresh one;
//! [`Engine::with_metrics`] shares an existing handle). Each evaluation records an `eval` stage
//! span plus work counters — tuples materialized, value-index and mqf
//! activity, recursion high-water mark:
//!
//! ```
//! use xmldb::datasets::movies::movies;
//! use xquery::Engine;
//!
//! let doc = movies();
//! let engine = Engine::new(doc);
//! engine.run("for $t in doc()//title return $t").unwrap();
//! let snap = engine.metrics().snapshot();
//! assert_eq!(snap.stage(obs::Stage::Eval).spans(), 1);
//! assert!(snap.counter(obs::Counter::EvalTuples) > 0);
//! ```

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod mlca;
pub mod parser;
pub mod pretty;
pub mod value;

pub use ast::{
    AggFunc, Binding, CmpOp, Expr, OrderDir, OrderKey, PathRoot, Quantifier, Step, StepAxis,
};
pub use eval::{Engine, EvalBudget, EvalError, ExhaustedResource};
pub use lexer::{LexError, Token};
pub use parser::{parse, ParseError};
pub use value::{Item, Sequence};
