//! Pretty-printer rendering expressions in the style of the paper's
//! Figure 9 (clauses on their own lines, nested FLWORs in braces).

use crate::ast::{Binding, Expr, OrderDir, PathRoot, Step, StepAxis};
use std::fmt::Write;

/// Render an expression as formatted XQuery text.
pub fn pretty(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(expr, 0, &mut out);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_expr(expr: &Expr, level: usize, out: &mut String) {
    match expr {
        Expr::Flwor {
            bindings,
            where_clause,
            order_by,
            ret,
        } => {
            // Group consecutive for/let bindings into single clauses.
            let mut i = 0;
            while i < bindings.len() {
                match &bindings[i] {
                    Binding::For { .. } => {
                        indent(out, level);
                        out.push_str("for ");
                        let mut first = true;
                        while i < bindings.len() {
                            if let Binding::For { var, source } = &bindings[i] {
                                if !first {
                                    out.push_str(", ");
                                }
                                first = false;
                                let _ = write!(out, "${var} in ");
                                write_inline(source, level, out);
                                i += 1;
                            } else {
                                break;
                            }
                        }
                        out.push('\n');
                    }
                    Binding::Let { var, value } => {
                        indent(out, level);
                        let _ = write!(out, "let ${var} := ");
                        write_inline(value, level, out);
                        out.push('\n');
                        i += 1;
                    }
                }
            }
            if let Some(w) = where_clause {
                indent(out, level);
                out.push_str("where ");
                write_inline(w, level, out);
                out.push('\n');
            }
            if !order_by.is_empty() {
                indent(out, level);
                out.push_str("order by ");
                for (j, k) in order_by.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    write_inline(&k.expr, level, out);
                    if k.dir == OrderDir::Descending {
                        out.push_str(" descending");
                    }
                }
                out.push('\n');
            }
            indent(out, level);
            out.push_str("return ");
            write_inline(ret, level, out);
        }
        other => {
            indent(out, level);
            write_inline(other, level, out);
        }
    }
}

fn write_inline(expr: &Expr, level: usize, out: &mut String) {
    match expr {
        Expr::Flwor { .. } => {
            // Nested FLWOR in braces, Figure-9 style.
            out.push_str("{\n");
            write_expr(expr, level + 1, out);
            out.push('\n');
            indent(out, level);
            out.push('}');
        }
        Expr::Path { root, steps } => {
            match root {
                PathRoot::Doc(Some(uri)) => {
                    let _ = write!(out, "doc(\"{uri}\")");
                }
                PathRoot::Doc(None) => out.push_str("doc()"),
                PathRoot::Var(v) => {
                    let _ = write!(out, "${v}");
                }
            }
            for s in steps {
                write_step(s, out);
            }
        }
        Expr::Str(s) => {
            let _ = write!(out, "\"{s}\"");
        }
        Expr::Num(n) => {
            let _ = write!(out, "{}", crate::value::format_number(*n));
        }
        Expr::Cmp { op, lhs, rhs } => {
            write_inline(lhs, level, out);
            let _ = write!(out, " {op} ");
            write_inline(rhs, level, out);
        }
        Expr::And(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                write_inline(p, level, out);
            }
        }
        Expr::Or(parts) => {
            out.push('(');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" or ");
                }
                write_inline(p, level, out);
            }
            out.push(')');
        }
        Expr::Not(inner) => {
            out.push_str("not (");
            write_inline(inner, level, out);
            out.push(')');
        }
        Expr::Agg { func, arg } => {
            let _ = write!(out, "{func}(");
            write_inline(arg, level, out);
            out.push(')');
        }
        Expr::Mqf(args) => {
            out.push_str("mqf(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_inline(a, level, out);
            }
            out.push(')');
        }
        Expr::Quantified {
            quant,
            var,
            source,
            satisfies,
        } => {
            // Parenthesised so the output stays parseable when the
            // quantifier is an operand of `and`/`or`: the grammar (like
            // real XQuery) only admits a bare quantified expression at
            // ExprSingle level.
            out.push('(');
            let _ = write!(out, "{quant} ${var} in ");
            write_inline(source, level, out);
            out.push_str(" satisfies ");
            write_inline(satisfies, level, out);
            out.push(')');
        }
        Expr::Seq(parts) => {
            out.push('(');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(p, level, out);
            }
            out.push(')');
        }
        Expr::Element { name, content } => {
            let _ = write!(out, "element {name} {{ ");
            for (i, c) in content.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(c, level, out);
            }
            out.push_str(" }");
        }
        Expr::Call { name, args } => {
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(a, level, out);
            }
            out.push(')');
        }
    }
}

fn write_step(step: &Step, out: &mut String) {
    out.push_str(match step.axis {
        StepAxis::Child => "/",
        StepAxis::Descendant => "//",
    });
    match step.names.len() {
        0 => out.push('*'),
        1 => out.push_str(&step.names[0]),
        _ => {
            out.push('(');
            out.push_str(&step.names.join("|"));
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Pretty-printed output must re-parse to the same AST.
    fn round_trip(q: &str) {
        let e1 = parse(q).unwrap();
        let text = pretty(&e1);
        let e2 = parse(&text).unwrap_or_else(|err| panic!("re-parse failed: {err}\n{text}"));
        assert_eq!(e1, e2, "\npretty output:\n{text}");
    }

    #[test]
    fn round_trips_simple_flwor() {
        round_trip("for $v in doc()//movie return $v");
    }

    #[test]
    fn round_trips_where_and_order() {
        round_trip(
            "for $b in doc()//book where $b/year > 1991 and $b/publisher = \"Addison-Wesley\" \
             order by $b/title descending return $b/title",
        );
    }

    #[test]
    fn round_trips_nested_let() {
        round_trip(
            "for $v1 in doc(\"movie.xml\")//director \
             let $vars1 := { for $v2 in doc(\"movie.xml\")//movie where mqf($v2,$v1) return $v2 } \
             where count($vars1) >= 2 return $v1",
        );
    }

    #[test]
    fn round_trips_quantifier_and_functions() {
        round_trip(
            "for $b in doc()//book where some $a in $b/author satisfies \
             contains($a, \"Suciu\") return element r { $b/title, count($b/author) }",
        );
    }

    #[test]
    fn round_trips_disjunction_and_wildcard() {
        round_trip("for $x in doc()//(book|article) return count($x/*)");
    }

    #[test]
    fn figure9_text_shape() {
        let q = r#"for $v1 in doc("movie.xml")//director, $v4 in doc("movie.xml")//director
        let $vars1 := { for $v5 in doc("movie.xml")//director, $v2 in doc("movie.xml")//movie
                        where mqf($v2,$v5) and $v5 = $v1 return $v2 }
        where count($vars1) = 2 and $v4 = "Ron Howard"
        return $v1"#;
        let e = parse(q).unwrap();
        let text = pretty(&e);
        assert!(text.contains("for $v1 in doc(\"movie.xml\")//director, $v4 in"));
        assert!(text.contains("let $vars1 := {"));
        assert!(text.contains("where count($vars1) = 2 and $v4 = \"Ron Howard\""));
        assert!(text.trim_end().ends_with("return $v1"));
    }
}
