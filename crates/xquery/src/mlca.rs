//! Meaningful Lowest Common Ancestor (MLCA) semantics — the engine of
//! the Schema-Free XQuery `mqf()` predicate.
//!
//! ## The idea (paper, Sec. 2)
//!
//! Keywords expressed together must match nodes that are "close
//! together" in a *structurally meaningful* way. For the query "find the
//! director of Gone with the Wind" the title must bind to a *movie*
//! title, not a *book* title, because only the former has a meaningful
//! structural relationship with a director — and this must fall out of
//! the data, not of schema knowledge.
//!
//! ## The rule
//!
//! Let `a`, `b` be nodes and `c = lca(a, b)`. The pair is **meaningfully
//! related** iff no node with `a`'s label occurs strictly closer to `b`
//! than `c` allows, and vice versa. Formally, `(a, b)` is *not*
//! meaningful iff there exists `a'` with `label(a') = label(a)` such
//! that `lca(a', b)` is a proper descendant of `c` (or symmetrically a
//! `b'` for `a`).
//!
//! Since `lca(a', b)` is a proper descendant of `c` exactly when `a'`
//! lies inside the subtree of the child of `c` on the path towards `b`,
//! the test reduces to two *label-in-subtree* probes, each O(log n) via
//! the document's label index ([`xmldb::Document::count_label_in_subtree`]).
//!
//! ### Consequences (all covered by tests below)
//!
//! - A `director` pairs with the `title` of *its own* movie, never with
//!   a title of a sibling movie, and never with a `book` title when some
//!   movie title exists nearer the director.
//! - Ancestor/descendant pairs are meaningful (nothing can be nearer).
//! - Two distinct nodes with the *same* label are never meaningful
//!   (each is "nearer to itself"); such pairs are related by *value
//!   joins* instead, which is exactly how NaLIX translates them.
//!
//! A set of nodes is meaningfully related iff all its unordered pairs
//! are — the n-way `mqf($v1 … $vn)` used in translated queries.

use xmldb::{Document, NodeId, SubtreeProbeCursor};

/// Is the pair `(a, b)` meaningfully related under MLCA semantics?
///
/// `a == b` is trivially meaningful.
pub fn meaningfully_related(doc: &Document, a: NodeId, b: NodeId) -> bool {
    if a == b {
        return true;
    }
    let c = doc.lca(a, b);
    // Probe the b-side: a node labelled like `a` strictly below `c`
    // towards `b` would be nearer to `b` than `a` is.
    if let Some(cb) = doc.child_toward(c, b) {
        if doc.count_label_in_subtree(doc.label_sym(a), cb) > 0 {
            return false;
        }
    }
    // Symmetric probe on the a-side.
    if let Some(ca) = doc.child_toward(c, a) {
        if doc.count_label_in_subtree(doc.label_sym(b), ca) > 0 {
            return false;
        }
    }
    true
}

/// Is the whole set pairwise meaningfully related?
pub fn set_meaningfully_related(doc: &Document, nodes: &[NodeId]) -> bool {
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            if !meaningfully_related(doc, a, b) {
                return false;
            }
        }
    }
    true
}

/// All nodes labelled `with_label` that are meaningfully related to
/// `anchor`, in document order. This is the `mqf`-as-generator view used
/// by the keyword-ish example applications. Linear in the label's node
/// count; use [`meaningful_partners_indexed`] on large documents.
pub fn meaningful_partners(doc: &Document, anchor: NodeId, with_label: &str) -> Vec<NodeId> {
    doc.nodes_labeled(with_label)
        .iter()
        .copied()
        .filter(|&n| meaningfully_related(doc, anchor, n))
        .collect()
}

/// Index-driven partner enumeration: all nodes with label `label` that
/// are meaningfully related to `anchor`, typically in O(depth · log n +
/// answers) instead of scanning every `label` node.
///
/// The algorithm walks `anchor`'s ancestors outward, range-scanning the
/// label index for candidates in each newly exposed subtree ring, and
/// stops early using the **blocking property** of MLCA: if any
/// `label`-node exists in the subtree of ancestor `A` of the anchor,
/// then for every candidate `b` whose LCA with the anchor lies strictly
/// above `A`, that node blocks the pair — it carries `b`'s label and
/// sits inside `child_toward(lca, anchor)`'s subtree (which contains
/// `A`'s), so `lca(anchor, that node)` is a proper descendant of the
/// LCA and the pair is not meaningful. Hence once a ring's ancestor
/// subtree contains the label at all, no farther ring can contribute.
///
/// The per-candidate [`meaningfully_related`] test is still applied, so
/// the result is exactly the set the naive scan produces (asserted by
/// tests and by the `mlca` property tests).
pub fn meaningful_partners_indexed(
    doc: &Document,
    anchor: NodeId,
    label: xmldb::Symbol,
) -> Vec<NodeId> {
    meaningful_partners_indexed_from(doc, anchor, label, &mut PartnerProbe::default())
}

/// Reusable probe state for [`meaningful_partners_indexed_from`]: one
/// postings cursor per probe site (the candidate ring, the blocking
/// probe against the anchor's label, and the blocking probe against the
/// partner label). A sweep that enumerates partners for many anchors in
/// (roughly) document order reuses one `PartnerProbe` so every postings
/// search gallops from where the previous anchor's search ended —
/// amortized O(log distance) instead of a cold O(log n) binary search
/// per probe. State is a pure performance hint; results are identical
/// for any cursor positions. Only meaningful while the anchor label and
/// partner label stay fixed: use one probe per (anchor label, partner
/// label) pair.
#[derive(Debug, Default, Clone, Copy)]
pub struct PartnerProbe {
    ring: SubtreeProbeCursor,
    anchor_label: SubtreeProbeCursor,
    partner_label: SubtreeProbeCursor,
}

/// [`meaningful_partners_indexed`] with caller-held probe state — the
/// form the FLWOR evaluator uses inside `mqf()` join loops, where the
/// anchors arrive in document order and cursor reuse makes the postings
/// probes near-sequential.
pub fn meaningful_partners_indexed_from(
    doc: &Document,
    anchor: NodeId,
    label: xmldb::Symbol,
    probe: &mut PartnerProbe,
) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut prev: Option<NodeId> = None;
    let chain = std::iter::once(anchor).chain(doc.ancestors(anchor));
    for anc in chain {
        let ring = doc.labeled_in_subtree_from(label, anc, &mut probe.ring);
        for &cand in ring {
            // Skip the inner subtree already processed.
            if let Some(p) = prev {
                if doc.is_ancestor_or_self(p, cand) {
                    continue;
                }
            }
            if meaningfully_related_from(doc, anchor, cand, probe) {
                out.push(cand);
            }
        }
        if !ring.is_empty() {
            break; // blocking property: farther rings cannot contribute
        }
        prev = Some(anc);
    }
    out.sort_by_key(|&n| doc.pre(n));
    out
}

/// [`meaningfully_related`] with cursor-accelerated label probes. The
/// cursors are per-label: `probe.anchor_label` tracks `label(a)`'s
/// postings and `probe.partner_label` tracks `label(b)`'s, which is
/// exactly the fixed-label situation of the partner sweep above.
fn meaningfully_related_from(
    doc: &Document,
    a: NodeId,
    b: NodeId,
    probe: &mut PartnerProbe,
) -> bool {
    if a == b {
        return true;
    }
    let c = doc.lca(a, b);
    if let Some(cb) = doc.child_toward(c, b) {
        if doc.count_label_in_subtree_from(doc.label_sym(a), cb, &mut probe.anchor_label) > 0 {
            return false;
        }
    }
    if let Some(ca) = doc.child_toward(c, a) {
        if doc.count_label_in_subtree_from(doc.label_sym(b), ca, &mut probe.partner_label) > 0 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::datasets::movies::{movies, movies_and_books};
    use xmldb::Document;

    #[test]
    fn director_relates_to_own_title_only() {
        let d = movies();
        let titles = d.nodes_labeled("title");
        let dirs = d.nodes_labeled("director");
        // Figure 1 order: pairs (i, i) are same-movie.
        for (i, &dir) in dirs.iter().enumerate() {
            for (j, &t) in titles.iter().enumerate() {
                assert_eq!(
                    meaningfully_related(&d, dir, t),
                    i == j,
                    "director {i} vs title {j}"
                );
            }
        }
    }

    #[test]
    fn ancestor_descendant_pairs_are_meaningful() {
        let d = movies();
        let m = d.nodes_labeled("movie")[0];
        let t = d.nodes_labeled("title")[0];
        assert!(meaningfully_related(&d, m, t));
        assert!(meaningfully_related(&d, t, m));
        let root = d.root();
        assert!(meaningfully_related(&d, root, t));
    }

    #[test]
    fn same_label_distinct_nodes_are_not_meaningful() {
        let d = movies();
        let titles = d.nodes_labeled("title");
        assert!(!meaningfully_related(&d, titles[0], titles[1]));
        assert!(meaningfully_related(&d, titles[0], titles[0]));
    }

    #[test]
    fn movie_relates_to_its_year_group() {
        let d = movies();
        let years = d.nodes_labeled("year");
        let movies_ = d.nodes_labeled("movie");
        // First two movies are under year 2000; last three under 2001.
        assert!(meaningfully_related(&d, movies_[0], years[0]));
        assert!(!meaningfully_related(&d, movies_[0], years[1]));
        assert!(meaningfully_related(&d, movies_[4], years[1]));
    }

    #[test]
    fn gone_with_the_wind_disambiguation() {
        // The motivating example of the paper's Sec. 2: when a title
        // occurs under both movie and book, mqf(director, title) must
        // pick the movie title. Here: a book also titled "Traffic" —
        // the director of Traffic relates to the movie's title node,
        // not the book's.
        let d = movies_and_books();
        let traffic_titles: Vec<_> = d
            .nodes_labeled("title")
            .iter()
            .copied()
            .filter(|&t| d.string_value(t) == "Traffic")
            .collect();
        assert_eq!(traffic_titles.len(), 2);
        let (movie_title, book_title) = {
            let is_movie = |t: NodeId| d.ancestors(t).any(|a| d.label(a) == "movie");
            if is_movie(traffic_titles[0]) {
                (traffic_titles[0], traffic_titles[1])
            } else {
                (traffic_titles[1], traffic_titles[0])
            }
        };
        let soderbergh = d
            .nodes_labeled("director")
            .iter()
            .copied()
            .find(|&n| d.string_value(n) == "Steven Soderbergh")
            .unwrap();
        assert!(meaningfully_related(&d, soderbergh, movie_title));
        assert!(!meaningfully_related(&d, soderbergh, book_title));
    }

    #[test]
    fn book_author_relates_to_book_title() {
        let d = movies_and_books();
        let knuth = d
            .nodes_labeled("author")
            .iter()
            .copied()
            .find(|&n| d.string_value(n) == "Knuth")
            .unwrap();
        let taocp = d
            .nodes_labeled("title")
            .iter()
            .copied()
            .find(|&n| d.string_value(n) == "The Art of Computer Programming")
            .unwrap();
        assert!(meaningfully_related(&d, knuth, taocp));
    }

    #[test]
    fn set_relatedness_requires_all_pairs() {
        let d = movies();
        let t0 = d.nodes_labeled("title")[0];
        let dir0 = d.nodes_labeled("director")[0];
        let dir1 = d.nodes_labeled("director")[1];
        let m0 = d.nodes_labeled("movie")[0];
        assert!(set_meaningfully_related(&d, &[t0, dir0, m0]));
        assert!(!set_meaningfully_related(&d, &[t0, dir1, m0]));
        assert!(set_meaningfully_related(&d, &[t0]));
        assert!(set_meaningfully_related(&d, &[]));
    }

    #[test]
    fn partners_enumerates_exactly_the_related_nodes() {
        let d = movies();
        let dir0 = d.nodes_labeled("director")[0];
        let partners = meaningful_partners(&d, dir0, "title");
        assert_eq!(partners.len(), 1);
        assert_eq!(
            d.string_value(partners[0]),
            "How the Grinch Stole Christmas"
        );
    }

    #[test]
    fn schema_inversion_is_transparent() {
        // The paper: "it does not matter whether the schema has director
        // under movie or vice versa (movies could have been classified
        // based on their directors)". Build the inverted schema and
        // check mqf still pairs the right title with the right director.
        let d = Document::parse_str(
            "<movies>\
               <director><name>Ron Howard</name>\
                 <movie><title>A Beautiful Mind</title></movie>\
                 <movie><title>How the Grinch Stole Christmas</title></movie>\
               </director>\
               <director><name>Peter Jackson</name>\
                 <movie><title>The Lord of the Rings</title></movie>\
               </director>\
             </movies>",
        )
        .unwrap();
        let jackson = d.nodes_labeled("director")[1];
        let titles = d.nodes_labeled("title");
        assert!(!meaningfully_related(&d, jackson, titles[0]));
        assert!(meaningfully_related(&d, jackson, titles[2]));
    }

    #[test]
    fn indexed_partners_equal_naive_scan() {
        let docs = [
            movies(),
            movies_and_books(),
            xmldb::datasets::dblp::generate(&xmldb::datasets::dblp::DblpConfig::small()),
        ];
        for d in &docs {
            let labels: Vec<String> = d.labels().iter().map(|s| (*s).to_owned()).collect();
            // every node as anchor would be slow on the dblp corpus;
            // sample in strides
            let anchors: Vec<_> = (0..d.len()).step_by(17).collect();
            for &ai in &anchors {
                let a = xmldb::NodeId::from_index(ai);
                if d.node(a).is_text() {
                    continue;
                }
                for label in &labels {
                    let Some(sym) = d.lookup(label) else { continue };
                    let fast = meaningful_partners_indexed(d, a, sym);
                    let naive = meaningful_partners(d, a, label);
                    assert_eq!(fast, naive, "anchor {a} ({}), label {label}", d.label(a));
                }
            }
        }
    }

    #[test]
    fn indexed_partners_same_label_is_self() {
        let d = movies();
        let t = d.nodes_labeled("title")[2];
        let sym = d.lookup("title").unwrap();
        assert_eq!(meaningful_partners_indexed(&d, t, sym), vec![t]);
    }

    #[test]
    fn indexed_partners_missing_label_is_empty() {
        let d = movies();
        let dir = d.nodes_labeled("director")[0];
        // "book" never occurs in the movies-only document
        assert!(d.lookup("book").is_none());
        // a label that exists but has no meaningful partner from a
        // sibling subtree
        let sym = d.lookup("director").unwrap();
        let partners = meaningful_partners_indexed(&d, dir, sym);
        assert_eq!(partners, vec![dir]);
    }

    #[test]
    fn deep_nesting_meet_in_the_middle() {
        let d = Document::parse_str(
            "<lib><shelf><box><book><title>T1</title></book></box>\
             <box><book><title>T2</title><isbn>1</isbn></book></box></shelf></lib>",
        )
        .unwrap();
        let isbn = d.nodes_labeled("isbn")[0];
        let titles = d.nodes_labeled("title");
        assert!(!meaningfully_related(&d, isbn, titles[0]));
        assert!(meaningfully_related(&d, isbn, titles[1]));
    }
}
