//! Runtime values: items, sequences, atomization and comparison.

use xmldb::{Document, NodeId};

/// A constructed element value, produced by computed element
/// constructors. Unlike [`Item::Node`], these do not live in the
/// document arena — they are ephemeral result structures.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstructedElem {
    /// Element name.
    pub name: String,
    /// Content items in order.
    pub children: Vec<Item>,
}

/// A single item of a sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A node of the engine's document.
    Node(NodeId),
    /// A string.
    Str(String),
    /// A double (all numerics are doubles, as in XPath 1.0).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// A constructed element.
    Elem(ConstructedElem),
}

/// A (possibly empty) sequence of items — the result of every
/// expression evaluation.
pub type Sequence = Vec<Item>;

impl Item {
    /// Atomized string value.
    ///
    /// Elements with **mixed content** (own text plus child elements,
    /// like the paper's `<year>2000 <movie>…</movie></year>` or an
    /// inverted schema's `<director>Kira <movie>…</movie></director>`)
    /// atomize to their *direct* text: that is the value the element
    /// itself carries, and it is what comparisons like
    /// `$director = "Kira"` must see. Elements without own text keep
    /// the XPath whole-subtree string value.
    pub fn string_value(&self, doc: &Document) -> String {
        self.atom_value(doc).into_owned()
    }

    /// Atomized value, borrowed from the document's string heap when the
    /// item is a node whose value lives there verbatim (text nodes,
    /// attributes, single-text leaf elements — the overwhelming
    /// majority). The allocation-free form of [`Item::string_value`];
    /// comparisons and index probes go through this.
    pub fn atom_value<'a>(&'a self, doc: &'a Document) -> std::borrow::Cow<'a, str> {
        use std::borrow::Cow;
        match self {
            Item::Node(id) => doc.atom_value(*id),
            Item::Str(s) => Cow::Borrowed(s.as_str()),
            Item::Num(n) => Cow::Owned(format_number(*n)),
            Item::Bool(b) => Cow::Owned(b.to_string()),
            Item::Elem(e) => Cow::Owned(
                e.children
                    .iter()
                    .map(|c| c.string_value(doc))
                    .collect::<Vec<_>>()
                    .join(""),
            ),
        }
    }

    /// Atomized numeric value, when the item looks like a number.
    pub fn numeric_value(&self, doc: &Document) -> Option<f64> {
        match self {
            Item::Num(n) => Some(*n),
            Item::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => self.atom_value(doc).trim().parse().ok(),
        }
    }

    /// True for node items.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Item::Node(id) => Some(*id),
            _ => None,
        }
    }
}

/// XPath-1.0-flavoured number formatting: integers print without a
/// decimal point.
pub fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Compare two atomized items: numerically when both sides are numeric,
/// lexicographically otherwise. Returns an ordering usable for both
/// general comparisons and `order by`.
pub fn compare_items(doc: &Document, a: &Item, b: &Item) -> std::cmp::Ordering {
    // Atomize each side once, borrowed where possible, and derive the
    // numeric view from the same string — the hot path of predicate
    // scans performs zero allocations per comparison.
    let sa = a.atom_value(doc);
    let sb = b.atom_value(doc);
    let num = |item: &Item, s: &str| -> Option<f64> {
        match item {
            Item::Num(n) => Some(*n),
            Item::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => s.trim().parse().ok(),
        }
    };
    match (num(a, &sa), num(b, &sb)) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
        _ => sa.cmp(&sb),
    }
}

/// The effective boolean value of a sequence (XPath style): empty is
/// false; a single boolean is itself; a single number is `!= 0` and not
/// NaN; anything else (nodes, strings, longer sequences) is "non-empty".
pub fn effective_boolean(seq: &Sequence) -> bool {
    match seq.len() {
        0 => false,
        1 => match &seq[0] {
            Item::Bool(b) => *b,
            Item::Num(n) => *n != 0.0 && !n.is_nan(),
            Item::Str(s) => !s.is_empty(),
            Item::Node(_) | Item::Elem(_) => true,
        },
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::Document;

    fn doc() -> Document {
        Document::parse_str("<r><a>10</a><b>text</b></r>").unwrap()
    }

    #[test]
    fn node_string_value() {
        let d = doc();
        let a = d.nodes_labeled("a")[0];
        assert_eq!(Item::Node(a).string_value(&d), "10");
    }

    #[test]
    fn numeric_coercion_from_node() {
        let d = doc();
        let a = d.nodes_labeled("a")[0];
        let b = d.nodes_labeled("b")[0];
        assert_eq!(Item::Node(a).numeric_value(&d), Some(10.0));
        assert_eq!(Item::Node(b).numeric_value(&d), None);
    }

    #[test]
    fn format_number_integers() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(3.5), "3.5");
        assert_eq!(format_number(-2.0), "-2");
    }

    #[test]
    fn compare_numeric_beats_lexicographic() {
        let d = doc();
        // "9" < "10" numerically, though "10" < "9" lexicographically.
        let o = compare_items(&d, &Item::Str("9".into()), &Item::Str("10".into()));
        assert_eq!(o, std::cmp::Ordering::Less);
    }

    #[test]
    fn compare_strings() {
        let d = doc();
        let o = compare_items(&d, &Item::Str("apple".into()), &Item::Str("banana".into()));
        assert_eq!(o, std::cmp::Ordering::Less);
    }

    #[test]
    fn effective_boolean_rules() {
        assert!(!effective_boolean(&vec![]));
        assert!(effective_boolean(&vec![Item::Bool(true)]));
        assert!(!effective_boolean(&vec![Item::Bool(false)]));
        assert!(!effective_boolean(&vec![Item::Num(0.0)]));
        assert!(effective_boolean(&vec![Item::Num(2.0)]));
        assert!(!effective_boolean(&vec![Item::Str(String::new())]));
        assert!(effective_boolean(&vec![Item::Str("x".into())]));
        assert!(effective_boolean(&vec![
            Item::Bool(false),
            Item::Bool(false)
        ]));
    }

    #[test]
    fn constructed_elem_string_value() {
        let d = doc();
        let e = Item::Elem(ConstructedElem {
            name: "result".into(),
            children: vec![Item::Str("a".into()), Item::Num(1.0)],
        });
        assert_eq!(e.string_value(&d), "a1");
    }
}
