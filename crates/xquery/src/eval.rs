//! The FLWOR evaluator.
//!
//! Evaluation is tuple-at-a-time, the classic nested-loops
//! interpretation of FLWOR: `for` clauses extend a stream of variable
//! environments, `let` binds whole sequences, `where` filters,
//! `order by` sorts the surviving tuples, and `return` concatenates the
//! per-tuple results. This is exactly how the paper's translated queries
//! (Fig. 9) are meant to be read, and it keeps `mqf()` a simple
//! per-tuple predicate.

use crate::ast::{AggFunc, Binding, CmpOp, Expr, OrderDir, PathRoot, Quantifier, Step, StepAxis};
use crate::mlca::set_meaningfully_related;
use crate::parser::{parse, ParseError};
use crate::value::{compare_items, effective_boolean, ConstructedElem, Item, Sequence};
use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};
use xmldb::{Document, NodeId, NodeKind};

/// Flatten nested conjunctions into a conjunct list.
fn flatten_and<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::And(parts) = e {
        for p in parts {
            flatten_and(p, out);
        }
    } else {
        out.push(e);
    }
}

/// Errors raised during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Reference to a variable with no binding in scope.
    UnboundVariable(String),
    /// An operation received an item of the wrong type.
    TypeError(String),
    /// Call to a function the engine does not know.
    UnknownFunction(String),
    /// Built-in called with the wrong number of arguments.
    WrongArity {
        /// The function.
        name: String,
        /// Expected argument count.
        expected: usize,
        /// Actual argument count.
        got: usize,
    },
    /// The query text failed to parse.
    Parse(ParseError),
    /// A resource guard tripped: the query was abandoned rather than
    /// allowed to hang, overflow the stack, or materialize an unbounded
    /// result (see [`EvalBudget`]).
    ResourceExhausted {
        /// Which limit was hit.
        resource: ExhaustedResource,
        /// The configured limit, rendered for the message.
        limit: String,
    },
}

/// The kind of limit an [`EvalError::ResourceExhausted`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustedResource {
    /// Expression recursion depth.
    Depth,
    /// Wall-clock deadline.
    Time,
    /// FLWOR tuple / candidate cardinality.
    Tuples,
}

impl fmt::Display for ExhaustedResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExhaustedResource::Depth => "recursion depth",
            ExhaustedResource::Time => "time",
            ExhaustedResource::Tuples => "result size",
        })
    }
}

/// Resource limits for one evaluation.
///
/// The guards exist so a pathological translation degrades to a
/// structured [`EvalError::ResourceExhausted`] instead of a hang or a
/// stack overflow: `max_depth` bounds expression recursion, `time_limit`
/// is a wall-clock deadline, and `max_tuples` caps how many FLWOR
/// candidate tuples the nested-loops evaluator may materialize. All
/// three are checked at FLWOR iteration boundaries (and `max_depth` on
/// every recursive descent), so the overshoot past a tripped limit is at
/// most one binding step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalBudget {
    /// Maximum expression recursion depth.
    pub max_depth: usize,
    /// Optional wall-clock deadline, measured from evaluation start.
    pub time_limit: Option<Duration>,
    /// Maximum number of FLWOR candidate tuples materialized. The cap is
    /// global across shards: every shard charges the same atomic ledger.
    pub max_tuples: usize,
    /// Worker shards for large FLWOR loops *within* one query: `1`
    /// evaluates serially, `n > 1` splits big binding-expansion and
    /// return loops into `n` contiguous chunks evaluated on scoped
    /// worker threads, and `0` (the default) picks the machine's
    /// available parallelism for large loops. Results are stitched back
    /// in chunk order, so output is byte-identical to serial evaluation.
    pub shards: usize,
}

impl Default for EvalBudget {
    /// Generous defaults: far above anything the NaLIX translator emits
    /// (its queries nest a handful of levels and the corpora hold tens
    /// of thousands of nodes), but low enough that a runaway cartesian
    /// product dies in milliseconds rather than minutes.
    fn default() -> Self {
        EvalBudget {
            max_depth: 128,
            time_limit: None,
            max_tuples: 4_000_000,
            shards: 0,
        }
    }
}

impl EvalBudget {
    /// Builder-style recursion-depth override.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Builder-style wall-clock deadline override.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Builder-style tuple-cardinality override.
    pub fn with_max_tuples(mut self, tuples: usize) -> Self {
        self.max_tuples = tuples;
        self
    }

    /// Builder-style shard-count override (see [`EvalBudget::shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// Hard ceiling on worker shards per FLWOR loop, whatever the budget
/// asks for.
const MAX_SHARDS: usize = 64;

/// Minimum loop length before `shards: 0` (auto) engages worker
/// threads; explicit shard counts apply from 2 items up, so tests can
/// force the parallel path on small documents.
const AUTO_SHARD_MIN_ITEMS: usize = 4096;

/// Resolve how many shards a loop over `n` items should use.
fn plan_shards(budget: &EvalBudget, n: usize) -> usize {
    let want = match budget.shards {
        0 => {
            if n >= AUTO_SHARD_MIN_ITEMS {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            } else {
                1
            }
        }
        s => s,
    };
    want.min(n).clamp(1, MAX_SHARDS)
}

/// The tuple ledger one evaluation's shards share: a single atomic
/// counter every shard charges, so `max_tuples` is a *global* cap — a
/// query sharded eight ways trips the same limit at the same total
/// cardinality as a serial run (give or take the in-flight charges of
/// the other shards, bounded by one binding step each).
struct Ledger {
    tuples: std::sync::atomic::AtomicUsize,
}

impl Ledger {
    fn new() -> Self {
        Ledger {
            tuples: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    fn total(&self) -> usize {
        self.tuples.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Per-evaluation guard state: the budget, the resolved deadline, the
/// shared tuple [`Ledger`], and thread-local statistics cells. One
/// guard lives on the stack of `eval_with_budget`; each worker shard
/// builds its own from a [`GuardSeed`] (the `Sync` parts), keeping the
/// `Cell`s strictly thread-local while the tuple cap stays global.
struct Guard<'b> {
    budget: &'b EvalBudget,
    deadline: Option<Instant>,
    ledger: &'b Ledger,
    /// Deepest recursion seen — flushed to the metrics registry as
    /// [`obs::MaxGauge::EvalDepthHighWater`] once per evaluation.
    max_depth: Cell<usize>,
    /// `mqf()` checks performed — accumulated here (a plain stack cell,
    /// no atomics) because checks run per candidate tuple; flushed as
    /// [`obs::Counter::MqfChecks`] once per evaluation.
    mqf_checks: Cell<u64>,
    /// Indexed partner enumerations, flushed as
    /// [`obs::Counter::MqfPartnerLookups`] once per evaluation.
    mqf_partner_lookups: Cell<u64>,
}

/// The `Send + Sync` parts of a [`Guard`], handed to worker shards so
/// each can build a thread-local guard against the shared ledger.
#[derive(Clone, Copy)]
struct GuardSeed<'b> {
    budget: &'b EvalBudget,
    deadline: Option<Instant>,
    ledger: &'b Ledger,
}

impl<'b> GuardSeed<'b> {
    fn guard(self) -> Guard<'b> {
        Guard {
            budget: self.budget,
            deadline: self.deadline,
            ledger: self.ledger,
            max_depth: Cell::new(0),
            mqf_checks: Cell::new(0),
            mqf_partner_lookups: Cell::new(0),
        }
    }
}

/// A shard guard's statistics, merged into the parent guard after the
/// shard joins.
struct ShardStats {
    max_depth: usize,
    mqf_checks: u64,
    mqf_partner_lookups: u64,
}

impl<'b> Guard<'b> {
    fn new(budget: &'b EvalBudget, ledger: &'b Ledger) -> Self {
        GuardSeed {
            budget,
            deadline: budget
                .time_limit
                .and_then(|d| Instant::now().checked_add(d)),
            ledger,
        }
        .guard()
    }

    /// The shareable parts, for spawning worker shards.
    fn seed(&self) -> GuardSeed<'b> {
        GuardSeed {
            budget: self.budget,
            deadline: self.deadline,
            ledger: self.ledger,
        }
    }

    /// This guard's local statistics (a shard reports them at join).
    fn stats(&self) -> ShardStats {
        ShardStats {
            max_depth: self.max_depth.get(),
            mqf_checks: self.mqf_checks.get(),
            mqf_partner_lookups: self.mqf_partner_lookups.get(),
        }
    }

    /// Merge a joined shard's statistics into this guard.
    fn absorb(&self, s: &ShardStats) {
        self.max_depth.set(self.max_depth.get().max(s.max_depth));
        self.mqf_checks.set(self.mqf_checks.get() + s.mqf_checks);
        self.mqf_partner_lookups
            .set(self.mqf_partner_lookups.get() + s.mqf_partner_lookups);
    }

    /// Depth check at every recursive descent into `eval_inner`.
    fn check_depth(&self, depth: usize) -> Result<(), EvalError> {
        if depth > self.max_depth.get() {
            self.max_depth.set(depth);
        }
        if depth > self.budget.max_depth {
            return Err(EvalError::ResourceExhausted {
                resource: ExhaustedResource::Depth,
                limit: format!("{} levels", self.budget.max_depth),
            });
        }
        Ok(())
    }

    /// Charge `n` candidate tuples against the shared ledger and
    /// re-check the deadline. Called at FLWOR iteration boundaries,
    /// where all the multiplicative work happens.
    fn charge_tuples(&self, n: usize) -> Result<(), EvalError> {
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(EvalError::ResourceExhausted {
                    resource: ExhaustedResource::Time,
                    limit: format!("{:?}", self.budget.time_limit.unwrap_or_default()),
                });
            }
        }
        let prev = self
            .ledger
            .tuples
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        if prev.saturating_add(n) > self.budget.max_tuples {
            return Err(EvalError::ResourceExhausted {
                resource: ExhaustedResource::Tuples,
                limit: format!("{} tuples", self.budget.max_tuples),
            });
        }
        Ok(())
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            EvalError::TypeError(m) => write!(f, "type error: {m}"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function {n}()"),
            EvalError::WrongArity {
                name,
                expected,
                got,
            } => write!(f, "{name}() expects {expected} argument(s), got {got}"),
            EvalError::Parse(e) => write!(f, "{e}"),
            EvalError::ResourceExhausted { resource, limit } => {
                write!(f, "evaluation exceeded the {resource} limit ({limit})")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ParseError> for EvalError {
    fn from(e: ParseError) -> Self {
        EvalError::Parse(e)
    }
}

/// A variable environment (one FLWOR tuple).
///
/// Represented as a persistent linked list: [`Env::bind`] is O(1) and
/// shares structure with the parent, which matters because the FLWOR
/// evaluator creates one environment per candidate tuple. Lookup walks
/// the (short — one entry per in-scope variable) chain, newest first,
/// so inner bindings shadow outer ones. The spine is `Arc`-linked so
/// environments can cross threads (the batch runner evaluates
/// independent queries on a shared engine).
#[derive(Debug, Clone, Default)]
pub struct Env {
    head: Option<std::sync::Arc<EnvNode>>,
}

#[derive(Debug)]
struct EnvNode {
    var: String,
    seq: Sequence,
    next: Option<std::sync::Arc<EnvNode>>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `var` to `seq`, returning the extended environment.
    pub fn bind(&self, var: &str, seq: Sequence) -> Env {
        Env {
            head: Some(std::sync::Arc::new(EnvNode {
                var: var.to_owned(),
                seq,
                next: self.head.clone(),
            })),
        }
    }

    /// Look up a binding.
    pub fn get(&self, var: &str) -> Option<&Sequence> {
        let mut cur = self.head.as_deref();
        while let Some(n) = cur {
            if n.var == var {
                return Some(&n.seq);
            }
            cur = n.next.as_deref();
        }
        None
    }

    /// Is `var` bound?
    pub fn contains(&self, var: &str) -> bool {
        self.get(var).is_some()
    }
}

/// The query engine, tied to one document (the paper's NaLIX "currently
/// only supports queries over a single document").
///
/// The engine is `Send + Sync`: evaluation itself only reads the
/// document, and the lazily built value index lives behind a sharded
/// `RwLock` cache, so one engine can serve many threads concurrently
/// (see `nalix::BatchRunner`).
///
/// The engine *shares ownership* of its document (`Arc<Document>`)
/// rather than borrowing it, so an engine is always `'static`: it can
/// be handed to plainly spawned threads, stored in registries, and
/// hot-swapped at runtime (see the `store` crate) without scoped-thread
/// gymnastics. Constructors accept anything convertible into an
/// `Arc<Document>` — an owned [`Document`] or an existing `Arc`.
pub struct Engine {
    doc: std::sync::Arc<Document>,
    /// Lazily built per-label value index (`label → value → nodes`),
    /// backing the equality-join fast path: a `for $v in doc()//L` whose
    /// `where` contains `$v = $bound` draws its candidates from here
    /// instead of scanning every `L` node. Keys are canonicalised the
    /// same way general comparison atomises (numbers normalised, other
    /// strings verbatim), so the index is exactly as selective as the
    /// `=` it accelerates.
    value_index: ValueIndexCache,
    /// Where evaluation spans, tuple counts, and index telemetry are
    /// recorded. Isolated per engine by default; share one with
    /// [`Engine::with_metrics`].
    metrics: std::sync::Arc<obs::MetricsRegistry>,
}

type ValueIndex = std::collections::HashMap<String, Vec<NodeId>>;

/// Number of lock shards in [`ValueIndexCache`]. Shard choice only
/// spreads lock contention, not data: each label's index lives wholly
/// in the shard its symbol hashes to.
const VALUE_INDEX_SHARDS: usize = 16;

/// Concurrent lazily-populated map `Symbol → Arc<ValueIndex>`.
///
/// Reads take a shard's read lock for a clone of the `Arc` only; index
/// construction happens outside any lock, so a slow build of one
/// label's index never blocks queries touching other labels (or even
/// other lookups of the same shard). If two threads race to build the
/// same label's index the first insert wins and the duplicate is
/// dropped — both are built from the same immutable document, so the
/// contents are identical.
struct ValueIndexCache {
    shards: [std::sync::RwLock<
        std::collections::HashMap<xmldb::Symbol, std::sync::Arc<ValueIndex>>,
    >; VALUE_INDEX_SHARDS],
}

impl Default for ValueIndexCache {
    fn default() -> Self {
        ValueIndexCache {
            shards: std::array::from_fn(|_| Default::default()),
        }
    }
}

impl ValueIndexCache {
    fn get_or_build(
        &self,
        sym: xmldb::Symbol,
        build: impl FnOnce() -> ValueIndex,
    ) -> std::sync::Arc<ValueIndex> {
        // A poisoned shard is recovered, not propagated: the map only
        // ever holds fully-built immutable indexes, so a panicking
        // writer cannot leave a half-written entry behind.
        let shard = &self.shards[sym.index() % VALUE_INDEX_SHARDS];
        if let Some(ix) = shard
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&sym)
        {
            return ix.clone();
        }
        let built = std::sync::Arc::new(build());
        shard
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(sym)
            .or_insert(built)
            .clone()
    }
}

/// Canonical key for equality-index lookups: matches the equality
/// semantics of [`compare_items`] (numeric values compare numerically,
/// others as exact strings).
fn canon_value(v: &str) -> String {
    match v.trim().parse::<f64>() {
        Ok(n) => crate::value::format_number(n),
        Err(_) => v.to_owned(),
    }
}

impl Engine {
    /// Create an engine over `doc` (which must be finalized), with its
    /// own isolated [`obs::MetricsRegistry`]. Accepts an owned
    /// [`Document`] or an `Arc<Document>`.
    pub fn new(doc: impl Into<std::sync::Arc<Document>>) -> Self {
        Engine::with_metrics(doc, std::sync::Arc::new(obs::MetricsRegistry::new()))
    }

    /// Create an engine recording into a caller-supplied registry —
    /// typically [`obs::global_handle()`] so evaluator spans land next
    /// to the process-global `xmldb`/`nlparser` counters.
    pub fn with_metrics(
        doc: impl Into<std::sync::Arc<Document>>,
        metrics: std::sync::Arc<obs::MetricsRegistry>,
    ) -> Self {
        let doc = doc.into();
        assert!(doc.is_finalized(), "engine requires a finalized document");
        Engine {
            doc,
            value_index: Default::default(),
            metrics,
        }
    }

    /// Create an engine over `doc` that inherits the value indexes of
    /// `prior` for every label *not* named in `dirty` (which must be
    /// sorted). This is the incremental-maintenance fast path of the
    /// write pipeline: node identities are stable across a node-level
    /// update, and the update overlay reports every label whose
    /// postings or atomised values might have changed as dirty, so the
    /// remaining per-label indexes are bit-identical to what a cold
    /// rebuild would produce and can be carried wholesale. Dirty labels
    /// simply rebuild lazily on first touch, as in a fresh engine.
    pub fn seeded_from(
        doc: impl Into<std::sync::Arc<Document>>,
        metrics: std::sync::Arc<obs::MetricsRegistry>,
        prior: &Engine,
        dirty: &[xmldb::Symbol],
    ) -> Self {
        let engine = Engine::with_metrics(doc, metrics);
        debug_assert!(dirty.is_sorted(), "dirty label list must be sorted");
        for (fresh, old) in engine
            .value_index
            .shards
            .iter()
            .zip(&prior.value_index.shards)
        {
            let old = old
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if old.is_empty() {
                continue;
            }
            let mut fresh = fresh
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (&sym, ix) in old.iter() {
                if dirty.binary_search(&sym).is_err() {
                    fresh.insert(sym, ix.clone());
                }
            }
        }
        engine
    }

    /// The registry this engine records into.
    pub fn metrics(&self) -> &obs::MetricsRegistry {
        &self.metrics
    }

    /// A clonable handle to this engine's registry.
    pub fn metrics_handle(&self) -> std::sync::Arc<obs::MetricsRegistry> {
        self.metrics.clone()
    }

    /// The (lazily built) value index for label `sym`. The returned
    /// `Arc` is a lock-free snapshot: callers with many lookups for the
    /// same label fetch it once and probe the map directly.
    fn value_index_for(&self, sym: xmldb::Symbol) -> std::sync::Arc<ValueIndex> {
        self.metrics.add(obs::Counter::ValueIndexLookups, 1);
        self.value_index.get_or_build(sym, || {
            self.metrics.add(obs::Counter::ValueIndexBuilds, 1);
            let mut m: ValueIndex = std::collections::HashMap::new();
            for &n in self.doc.nodes_with_symbol(sym) {
                let key = canon_value(&self.doc.atom_value(n));
                m.entry(key).or_default().push(n);
            }
            m
        })
    }

    /// The underlying document.
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    /// A shared handle to the underlying document.
    pub fn doc_handle(&self) -> std::sync::Arc<Document> {
        self.doc.clone()
    }

    /// Parse and evaluate a query string under the empty environment.
    pub fn run(&self, query: &str) -> Result<Sequence, EvalError> {
        self.run_with_budget(query, &EvalBudget::default())
    }

    /// Parse and evaluate a query string under an explicit budget.
    pub fn run_with_budget(&self, query: &str, budget: &EvalBudget) -> Result<Sequence, EvalError> {
        let expr = parse(query)?;
        self.eval_with_budget(&expr, &Env::new(), budget)
    }

    /// Evaluate a pre-built expression under the empty environment.
    pub fn eval_expr(&self, expr: &Expr) -> Result<Sequence, EvalError> {
        self.eval(expr, &Env::new())
    }

    /// Evaluate a pre-built expression under an explicit budget.
    pub fn eval_expr_with_budget(
        &self,
        expr: &Expr,
        budget: &EvalBudget,
    ) -> Result<Sequence, EvalError> {
        self.eval_with_budget(expr, &Env::new(), budget)
    }

    /// Atomized string value of an item (convenience re-export).
    pub fn item_string(&self, item: &Item) -> String {
        item.string_value(&self.doc)
    }

    /// String values of a whole sequence.
    pub fn strings(&self, seq: &Sequence) -> Vec<String> {
        seq.iter().map(|i| self.item_string(i)).collect()
    }

    /// Evaluate `expr` in `env` under the default [`EvalBudget`].
    pub fn eval(&self, expr: &Expr, env: &Env) -> Result<Sequence, EvalError> {
        self.eval_with_budget(expr, env, &EvalBudget::default())
    }

    /// Evaluate `expr` in `env` under an explicit budget.
    ///
    /// This is the single top-level entry every other evaluation method
    /// funnels through, so it owns the [`obs::Stage::Eval`] span: one
    /// span per evaluation, with the outcome, the wall time, the
    /// tuple-budget consumption, and the recursion-depth high-water
    /// mark all flushed to the engine's registry here.
    pub fn eval_with_budget(
        &self,
        expr: &Expr,
        env: &Env,
        budget: &EvalBudget,
    ) -> Result<Sequence, EvalError> {
        let span = self.metrics.span(obs::Stage::Eval);
        let ledger = Ledger::new();
        let guard = Guard::new(budget, &ledger);
        let out = self.eval_inner(expr, env, &guard, 0);
        self.metrics
            .add(obs::Counter::EvalTuples, ledger.total() as u64);
        self.metrics
            .add(obs::Counter::MqfChecks, guard.mqf_checks.get());
        self.metrics.add(
            obs::Counter::MqfPartnerLookups,
            guard.mqf_partner_lookups.get(),
        );
        self.metrics.record_max(
            obs::MaxGauge::EvalDepthHighWater,
            guard.max_depth.get() as u64,
        );
        span.finish(match &out {
            Ok(_) => obs::SpanOutcome::Ok,
            Err(EvalError::ResourceExhausted { .. }) => obs::SpanOutcome::ResourceExhausted,
            Err(_) => obs::SpanOutcome::EvalError,
        });
        out
    }

    /// The recursive evaluator. `depth` counts descents from the
    /// top-level entry point; the guard trips it against the budget
    /// before any per-node work.
    fn eval_inner(
        &self,
        expr: &Expr,
        env: &Env,
        guard: &Guard<'_>,
        depth: usize,
    ) -> Result<Sequence, EvalError> {
        guard.check_depth(depth)?;
        match expr {
            Expr::Str(s) => Ok(vec![Item::Str(s.clone())]),
            Expr::Num(n) => Ok(vec![Item::Num(*n)]),
            Expr::Path { root, steps } => self.eval_path(root, steps, env),
            Expr::Cmp { op, lhs, rhs } => {
                let l = self.eval_inner(lhs, env, guard, depth + 1)?;
                let r = self.eval_inner(rhs, env, guard, depth + 1)?;
                Ok(vec![Item::Bool(self.general_compare(*op, &l, &r))])
            }
            Expr::And(parts) => {
                for p in parts {
                    if !effective_boolean(&self.eval_inner(p, env, guard, depth + 1)?) {
                        return Ok(vec![Item::Bool(false)]);
                    }
                }
                Ok(vec![Item::Bool(true)])
            }
            Expr::Or(parts) => {
                for p in parts {
                    if effective_boolean(&self.eval_inner(p, env, guard, depth + 1)?) {
                        return Ok(vec![Item::Bool(true)]);
                    }
                }
                Ok(vec![Item::Bool(false)])
            }
            Expr::Not(inner) => {
                let v = self.eval_inner(inner, env, guard, depth + 1)?;
                Ok(vec![Item::Bool(!effective_boolean(&v))])
            }
            Expr::Agg { func, arg } => {
                let seq = self.eval_inner(arg, env, guard, depth + 1)?;
                self.aggregate(*func, &seq)
            }
            Expr::Mqf(args) => {
                guard.mqf_checks.set(guard.mqf_checks.get() + 1);
                let mut nodes = Vec::new();
                for a in args {
                    let seq = self.eval_inner(a, env, guard, depth + 1)?;
                    for item in seq {
                        match item {
                            Item::Node(id) => nodes.push(id),
                            other => {
                                return Err(EvalError::TypeError(format!(
                                    "mqf() expects nodes, got {}",
                                    other.string_value(&self.doc)
                                )))
                            }
                        }
                    }
                }
                Ok(vec![Item::Bool(set_meaningfully_related(
                    &self.doc, &nodes,
                ))])
            }
            Expr::Quantified {
                quant,
                var,
                source,
                satisfies,
            } => {
                let seq = self.eval_inner(source, env, guard, depth + 1)?;
                let mut any = false;
                let mut all = true;
                for item in seq {
                    let inner = env.bind(var, vec![item]);
                    let ok =
                        effective_boolean(&self.eval_inner(satisfies, &inner, guard, depth + 1)?);
                    any |= ok;
                    all &= ok;
                    // Short-circuit.
                    match quant {
                        Quantifier::Some if any => return Ok(vec![Item::Bool(true)]),
                        Quantifier::Every if !all => return Ok(vec![Item::Bool(false)]),
                        _ => {}
                    }
                }
                Ok(vec![Item::Bool(match quant {
                    Quantifier::Some => any,
                    Quantifier::Every => all,
                })])
            }
            Expr::Seq(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend(self.eval_inner(p, env, guard, depth + 1)?);
                }
                Ok(out)
            }
            Expr::Element { name, content } => {
                let mut children = Vec::new();
                for c in content {
                    children.extend(self.eval_inner(c, env, guard, depth + 1)?);
                }
                Ok(vec![Item::Elem(ConstructedElem {
                    name: name.clone(),
                    children,
                })])
            }
            Expr::Call { name, args } => self.call(name, args, env, guard, depth),
            Expr::Flwor {
                bindings,
                where_clause,
                order_by,
                ret,
            } => {
                // --- Conjunct pushdown -------------------------------
                // A naive nested-loops FLWOR multiplies the label-set
                // sizes of every `for` clause before the `where` filter
                // runs — 5-variable schema-free queries over a 73k-node
                // corpus would enumerate ~10^10 tuples. Instead, the
                // `where` clause is split into conjuncts and each
                // conjunct runs as soon as the variables it references
                // are bound; `mqf()` conjuncts are checked incrementally
                // over every bound subset (pairwise meaningfulness is
                // monotone: a failing subset can never succeed by adding
                // members). This is the evaluation strategy Timber's
                // structural-join plans implement natively.
                let mut conjuncts: Vec<&Expr> = Vec::new();
                if let Some(w) = where_clause.as_deref() {
                    flatten_and(w, &mut conjuncts);
                }

                // Partition conjuncts: mqf over simple variables gets
                // incremental treatment, everything else triggers once.
                let mut mqf_groups: Vec<Vec<&str>> = Vec::new();
                let mut plain_conjuncts: Vec<&Expr> = Vec::new();
                for c in &conjuncts {
                    if let Expr::Mqf(args) = c {
                        let simple: Option<Vec<&str>> = args
                            .iter()
                            .map(|a| match a {
                                Expr::Path {
                                    root: PathRoot::Var(v),
                                    steps,
                                } if steps.is_empty() => Some(v.as_str()),
                                _ => None,
                            })
                            .collect();
                        if let Some(vars) = simple {
                            mqf_groups.push(vars);
                            continue;
                        }
                    }
                    plain_conjuncts.push(c);
                }

                // Variable-to-variable equality conjuncts (`$a = $b`):
                // these drive the value-index join. Stored both ways
                // round.
                let mut eq_pairs: Vec<(&str, &str)> = Vec::new();
                for c in &plain_conjuncts {
                    if let Expr::Cmp {
                        op: CmpOp::Eq,
                        lhs,
                        rhs,
                    } = c
                    {
                        if let (
                            Expr::Path {
                                root: PathRoot::Var(a),
                                steps: sa,
                            },
                            Expr::Path {
                                root: PathRoot::Var(b),
                                steps: sb,
                            },
                        ) = (lhs.as_ref(), rhs.as_ref())
                        {
                            if sa.is_empty() && sb.is_empty() {
                                eq_pairs.push((a.as_str(), b.as_str()));
                                eq_pairs.push((b.as_str(), a.as_str()));
                            }
                        }
                    }
                }

                // Variable-to-literal equality conjuncts (`$v = "…"`,
                // `$v = 42`): when `$v` ranges over a label scan these
                // resolve through the value index — the candidate set is
                // one hash probe over the label's value column instead
                // of a scan over every labelled node. The canonical key
                // mirrors `compare_items` equality exactly, and the
                // conjunct itself still runs per tuple, so the pushdown
                // only narrows candidates, never changes results.
                let mut lit_eqs: Vec<(&str, String)> = Vec::new();
                for c in &plain_conjuncts {
                    if let Expr::Cmp {
                        op: CmpOp::Eq,
                        lhs,
                        rhs,
                    } = c
                    {
                        let pair = match (lhs.as_ref(), rhs.as_ref()) {
                            (
                                Expr::Path {
                                    root: PathRoot::Var(v),
                                    steps,
                                },
                                lit,
                            ) if steps.is_empty() => Some((v, lit)),
                            (
                                lit,
                                Expr::Path {
                                    root: PathRoot::Var(v),
                                    steps,
                                },
                            ) if steps.is_empty() => Some((v, lit)),
                            _ => None,
                        };
                        let key = match pair {
                            Some((_, Expr::Str(s))) => Some(canon_value(s)),
                            Some((_, Expr::Num(n))) => Some(crate::value::format_number(*n)),
                            _ => None,
                        };
                        if let (Some((v, _)), Some(k)) = (pair, key) {
                            lit_eqs.push((v.as_str(), k));
                        }
                    }
                }
                let lit_vars: Vec<&str> = lit_eqs.iter().map(|(v, _)| *v).collect();

                // --- Join-order planning -----------------------------
                // Greedy: place the smallest un-anchored label scan
                // first; after that prefer variables an mqf conjunct
                // anchors to something already bound (their candidates
                // come from the partner index, so their cost is
                // O(partners), independent of label-set size). This is
                // the order a cost-based optimizer would pick for
                // structural joins, and it is what keeps e.g.
                // title×author×book from scanning 4800 article titles
                // against every book.
                let exec = self.plan_order(bindings, &mqf_groups, &eq_pairs, &lit_vars, env);
                let ordered: Vec<&Binding> = exec.iter().map(|&i| &bindings[i]).collect();
                let var_names: Vec<&str> = ordered.iter().map(|b| b.var()).collect();

                // Trigger step of an expression: the last FLWOR binding
                // it depends on (0 = before any binding).
                let step_of = |e: &Expr| -> usize {
                    var_names
                        .iter()
                        .enumerate()
                        .rev()
                        .find(|(_, v)| e.references_var(v))
                        .map(|(i, _)| i + 1)
                        .unwrap_or(0)
                };
                let mut triggered: Vec<Vec<&Expr>> = vec![Vec::new(); ordered.len() + 1];
                for c in plain_conjuncts {
                    triggered[step_of(c)].push(c);
                }
                // Incremental mqf conjuncts: (simple-var args, steps at
                // which to re-check).
                let mqf_incremental: Vec<(Vec<&str>, Vec<usize>)> = mqf_groups
                    .into_iter()
                    .map(|vars| {
                        let mut steps: Vec<usize> = vars
                            .iter()
                            .map(|v| {
                                var_names
                                    .iter()
                                    .position(|n| n == v)
                                    .map(|i| i + 1)
                                    .unwrap_or(0)
                            })
                            .collect();
                        steps.sort_unstable();
                        steps.dedup();
                        (vars, steps)
                    })
                    .collect();

                // The per-tuple admission check for binding step `k`.
                // A closure (not a macro) so worker shards can run it
                // against their own thread-local guard.
                // `skip_mqf` names one group whose step-`k` re-check is
                // provably redundant: the binding's candidates were
                // enumerated from the partner index, which only yields
                // nodes meaningfully related to the anchor, and the
                // anchor was the group's sole previously-bound variable
                // — so every pair the check would test is already known
                // to hold.
                let admit = |e2: &Env,
                             k: usize,
                             g: &Guard<'_>,
                             skip_mqf: Option<usize>|
                 -> Result<bool, EvalError> {
                    for (gi, (vars, steps)) in mqf_incremental.iter().enumerate() {
                        if skip_mqf == Some(gi) {
                            continue;
                        }
                        if steps.contains(&k) && !self.partial_mqf(vars, e2, g)? {
                            return Ok(false);
                        }
                    }
                    for c in &triggered[k] {
                        if !effective_boolean(&self.eval_inner(c, e2, g, depth + 1)?) {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                };

                let mut stream: Vec<Env> = Vec::new();
                if admit(env, 0, guard, None)? {
                    stream.push(env.clone());
                }
                for (i, b) in ordered.iter().enumerate() {
                    let k = i + 1;
                    match b {
                        Binding::For { var, source } => {
                            // Index-driven candidate generation: when
                            // this variable ranges over `doc()//label`
                            // and an mqf conjunct ties it to an
                            // already-bound node, enumerate only the
                            // meaningful partners of that anchor instead
                            // of every `label` node — the difference
                            // between O(partners) and O(|label|) per
                            // tuple, and what keeps multi-variable
                            // schema-free queries tractable at the
                            // paper's corpus scale.
                            let fast_labels: Option<Vec<xmldb::Symbol>> = match source {
                                Expr::Path {
                                    root: PathRoot::Doc(_),
                                    steps,
                                } if steps.len() == 1
                                    && steps[0].axis == StepAxis::Descendant
                                    && !steps[0].names.is_empty() =>
                                {
                                    let syms: Vec<xmldb::Symbol> = steps[0]
                                        .names
                                        .iter()
                                        .filter_map(|n| self.doc.lookup(n))
                                        .collect();
                                    Some(syms)
                                }
                                _ => None,
                            };
                            let mqf_partners: Vec<(usize, &Vec<&str>)> = mqf_incremental
                                .iter()
                                .enumerate()
                                .filter(|(_, (vars, _))| vars.contains(&var.as_str()))
                                .map(|(gi, (vars, _))| (gi, vars))
                                .collect();

                            let eq_partners: Vec<&str> = eq_pairs
                                .iter()
                                .filter(|(a, _)| *a == var.as_str())
                                .map(|(_, b)| *b)
                                .collect();

                            // Hoist the value-index lookups out of the
                            // tuple loop: one cache round-trip (a lock
                            // acquisition under concurrency) per label
                            // per binding, not per candidate tuple.
                            let lit_keys: Vec<&str> = lit_eqs
                                .iter()
                                .filter(|(v, _)| *v == var.as_str())
                                .map(|(_, key)| key.as_str())
                                .collect();
                            let eq_indexes: Vec<std::sync::Arc<ValueIndex>> =
                                match (&fast_labels, eq_partners.is_empty() && lit_keys.is_empty())
                                {
                                    (Some(labels), false) => {
                                        labels.iter().map(|&l| self.value_index_for(l)).collect()
                                    }
                                    _ => Vec::new(),
                                };

                            // Literal-equality candidates do not depend
                            // on the tuple: one index probe covers the
                            // whole binding step. (Further literal
                            // conjuncts on the same variable still run
                            // per tuple; the first only narrows.)
                            let lit_candidates: Option<Vec<Item>> =
                                match (lit_keys.first(), eq_indexes.is_empty()) {
                                    (Some(&key), false) => {
                                        let mut c: Vec<NodeId> = eq_indexes
                                            .iter()
                                            .flat_map(|ix| ix.get(key).cloned().unwrap_or_default())
                                            .collect();
                                        c.sort_by_key(|&n| self.doc.pre(n));
                                        c.dedup();
                                        Some(c.into_iter().map(Item::Node).collect())
                                    }
                                    _ => None,
                                };

                            let labels_len = fast_labels.as_ref().map_or(0, Vec::len);

                            // Expand one tuple: generate this binding's
                            // candidates (literal probe, then equality
                            // join — most selective — then mqf partner
                            // enumeration), charge them, admit the
                            // survivors. Runs against the caller's
                            // guard on this thread or a shard's guard
                            // on a worker; `probes` carries the calling
                            // sweep's per-label partner cursors.
                            let expand = |e: &Env,
                                          g: &Guard<'_>,
                                          probes: &mut [crate::mlca::PartnerProbe],
                                          next: &mut Vec<Env>|
                             -> Result<(), EvalError> {
                                let mut candidates: Option<Vec<Item>> = lit_candidates.clone();
                                let mut skip_mqf: Option<usize> = None;
                                if candidates.is_none() && !eq_indexes.is_empty() {
                                    for &w in &eq_partners {
                                        let Some(seq) = e.get(w) else { continue };
                                        let [item] = seq.as_slice() else { continue };
                                        let key = canon_value(&item.atom_value(&self.doc));
                                        let mut c: Vec<NodeId> = eq_indexes
                                            .iter()
                                            .flat_map(|ix| {
                                                ix.get(&key).cloned().unwrap_or_default()
                                            })
                                            .collect();
                                        c.sort_by_key(|&n| self.doc.pre(n));
                                        c.dedup();
                                        candidates = Some(c.into_iter().map(Item::Node).collect());
                                        break;
                                    }
                                }
                                if candidates.is_none() {
                                    if let Some(labels) = &fast_labels {
                                        'anchor: for &(gi, vars) in &mqf_partners {
                                            for &v2 in vars.iter() {
                                                if v2 == var {
                                                    continue;
                                                }
                                                let Some(seq) = e.get(v2) else { continue };
                                                let [Item::Node(a)] = seq.as_slice() else {
                                                    continue;
                                                };
                                                // The index only yields
                                                // partners of `a`; when
                                                // `v2` is the group's sole
                                                // bound variable, the
                                                // step-k group re-check
                                                // would test exactly that
                                                // guaranteed pair.
                                                if vars
                                                    .iter()
                                                    .filter(|&&w| w != var && e.get(w).is_some())
                                                    .count()
                                                    == 1
                                                {
                                                    skip_mqf = Some(gi);
                                                }
                                                g.mqf_partner_lookups.set(
                                                    g.mqf_partner_lookups.get()
                                                        + labels.len() as u64,
                                                );
                                                let mut c: Vec<NodeId> = Vec::new();
                                                for (j, &l) in labels.iter().enumerate() {
                                                    c.extend(
                                                        crate::mlca::meaningful_partners_indexed_from(
                                                            &self.doc, *a, l, &mut probes[j],
                                                        ),
                                                    );
                                                }
                                                c.sort_by_key(|&n| self.doc.pre(n));
                                                c.dedup();
                                                candidates =
                                                    Some(c.into_iter().map(Item::Node).collect());
                                                break 'anchor;
                                            }
                                        }
                                    }
                                }
                                let items = match candidates {
                                    Some(c) => c,
                                    None => self.eval_inner(source, e, g, depth + 1)?,
                                };
                                g.charge_tuples(items.len())?;
                                for item in items {
                                    let e2 = e.bind(var, vec![item]);
                                    if admit(&e2, k, g, skip_mqf)? {
                                        next.push(e2);
                                    }
                                }
                                Ok(())
                            };

                            let shards = plan_shards(guard.budget, stream.len());
                            if shards > 1 {
                                self.metrics
                                    .add(obs::Counter::EvalShardSpawns, shards as u64);
                                let seed = guard.seed();
                                let expand = &expand;
                                let chunk = stream.len().div_ceil(shards);
                                let results: Vec<Result<(Vec<Env>, ShardStats), EvalError>> =
                                    std::thread::scope(|s| {
                                        let handles: Vec<_> = stream
                                            .chunks(chunk)
                                            .map(|c| {
                                                s.spawn(move || {
                                                    let g = seed.guard();
                                                    let mut probes = vec![
                                                        crate::mlca::PartnerProbe::default();
                                                        labels_len
                                                    ];
                                                    let mut next = Vec::new();
                                                    for e in c {
                                                        expand(e, &g, &mut probes, &mut next)?;
                                                    }
                                                    Ok((next, g.stats()))
                                                })
                                            })
                                            .collect();
                                        handles
                                            .into_iter()
                                            .map(|h| match h.join() {
                                                Ok(r) => r,
                                                Err(p) => std::panic::resume_unwind(p),
                                            })
                                            .collect()
                                    });
                                // Stitch in chunk (= serial) order; on
                                // failure report the earliest chunk's
                                // error, which is deterministic.
                                let mut next = Vec::new();
                                for r in results {
                                    let (part, stats) = r?;
                                    guard.absorb(&stats);
                                    next.extend(part);
                                }
                                stream = next;
                            } else {
                                let mut probes =
                                    vec![crate::mlca::PartnerProbe::default(); labels_len];
                                let mut next = Vec::new();
                                for e in &stream {
                                    expand(e, guard, &mut probes, &mut next)?;
                                }
                                stream = next;
                            }
                        }
                        Binding::Let { var, value } => {
                            let mut next = Vec::with_capacity(stream.len());
                            for e in &stream {
                                guard.charge_tuples(1)?;
                                let v = self.eval_inner(value, e, guard, depth + 1)?;
                                let e2 = e.bind(var, v);
                                if admit(&e2, k, guard, None)? {
                                    next.push(e2);
                                }
                            }
                            stream = next;
                        }
                    }
                }
                // The planner may have permuted the nested-loop order;
                // the surviving tuple *set* is identical, so restoring
                // the specified order is a sort on the bound nodes'
                // document positions, taken in source binding order.
                if exec.iter().enumerate().any(|(i, &j)| i != j) {
                    let original_names: Vec<&str> = bindings.iter().map(Binding::var).collect();
                    stream.sort_by_cached_key(|e| {
                        original_names
                            .iter()
                            .map(|n| match e.get(n).map(Vec::as_slice) {
                                Some([Item::Node(id)]) => self.doc.pre(*id) as u64,
                                _ => 0,
                            })
                            .collect::<Vec<u64>>()
                    });
                }
                if !order_by.is_empty() {
                    // Precompute keys (evaluation may error, so do it
                    // before sorting).
                    let mut keyed: Vec<(Vec<Sequence>, Env)> = Vec::with_capacity(stream.len());
                    for e in stream {
                        let mut keys = Vec::with_capacity(order_by.len());
                        for k in order_by {
                            keys.push(self.eval_inner(&k.expr, &e, guard, depth + 1)?);
                        }
                        keyed.push((keys, e));
                    }
                    keyed.sort_by(|(ka, _), (kb, _)| {
                        for (i, spec) in order_by.iter().enumerate() {
                            let o = self.compare_key(&ka[i], &kb[i]);
                            let o = match spec.dir {
                                OrderDir::Ascending => o,
                                OrderDir::Descending => o.reverse(),
                            };
                            if o != std::cmp::Ordering::Equal {
                                return o;
                            }
                        }
                        std::cmp::Ordering::Equal
                    });
                    stream = keyed.into_iter().map(|(_, e)| e).collect();
                }
                // The return clause is per-tuple and order-preserving,
                // so it shards the same way binding expansion does:
                // contiguous chunks, results concatenated in chunk
                // order — byte-identical to the serial loop.
                let emit = |e: &Env, g: &Guard<'_>| -> Result<Sequence, EvalError> {
                    g.charge_tuples(1)?;
                    self.eval_inner(ret, e, g, depth + 1)
                };
                let shards = plan_shards(guard.budget, stream.len());
                if shards > 1 {
                    self.metrics
                        .add(obs::Counter::EvalShardSpawns, shards as u64);
                    let seed = guard.seed();
                    let emit = &emit;
                    let chunk = stream.len().div_ceil(shards);
                    let results: Vec<Result<(Sequence, ShardStats), EvalError>> =
                        std::thread::scope(|s| {
                            let handles: Vec<_> = stream
                                .chunks(chunk)
                                .map(|c| {
                                    s.spawn(move || {
                                        let g = seed.guard();
                                        let mut part = Vec::new();
                                        for e in c {
                                            part.extend(emit(e, &g)?);
                                        }
                                        Ok((part, g.stats()))
                                    })
                                })
                                .collect();
                            handles
                                .into_iter()
                                .map(|h| match h.join() {
                                    Ok(r) => r,
                                    Err(p) => std::panic::resume_unwind(p),
                                })
                                .collect()
                        });
                    let mut out = Vec::new();
                    for r in results {
                        let (part, stats) = r?;
                        guard.absorb(&stats);
                        out.extend(part);
                    }
                    Ok(out)
                } else {
                    let mut out = Vec::new();
                    for e in &stream {
                        out.extend(emit(e, guard)?);
                    }
                    Ok(out)
                }
            }
        }
    }

    /// Greedy join-order planner for a FLWOR's bindings.
    ///
    /// Returns a permutation of binding indices. Invariants:
    /// - a binding never runs before another binding whose variable its
    ///   source expression references (data dependencies);
    /// - among runnable bindings, prefer (1) per-tuple paths like
    ///   `$b/author` (cheap), then (2) label scans that an mqf conjunct
    ///   anchors to an already-placed variable (candidates come from
    ///   the partner index), then (3) the *smallest* unanchored label
    ///   scan, and `let` bindings last (their values often aggregate
    ///   over the already-joined variables).
    pub(crate) fn plan_order(
        &self,
        bindings: &[Binding],
        mqf_groups: &[Vec<&str>],
        eq_pairs: &[(&str, &str)],
        lit_vars: &[&str],
        env: &Env,
    ) -> Vec<usize> {
        let names: Vec<&str> = bindings.iter().map(Binding::var).collect();
        let mut placed = vec![false; bindings.len()];
        let mut out = Vec::with_capacity(bindings.len());
        while out.len() < bindings.len() {
            let mut best: Option<(u64, usize)> = None;
            for i in 0..bindings.len() {
                if placed[i] {
                    continue;
                }
                let source = match &bindings[i] {
                    Binding::For { source, .. } => source,
                    Binding::Let { value, .. } => value,
                };
                // Data dependencies on not-yet-placed FLWOR variables.
                let deps_ok = names
                    .iter()
                    .enumerate()
                    .all(|(j, n)| placed[j] || j == i || !source.references_var(n));
                if !deps_ok {
                    continue;
                }
                let score: u64 = match &bindings[i] {
                    Binding::Let { .. } => 1 << 60,
                    Binding::For { var, source } => match source {
                        Expr::Path {
                            root: PathRoot::Doc(_),
                            steps,
                        } if steps.len() == 1
                            && steps[0].axis == StepAxis::Descendant
                            && !steps[0].names.is_empty() =>
                        {
                            let size: u64 = steps[0]
                                .names
                                .iter()
                                .map(|n| self.doc.nodes_labeled(n).len() as u64)
                                .sum();
                            let available = |v: &str| {
                                env.contains(v)
                                    || names.iter().enumerate().any(|(j, n)| placed[j] && *n == v)
                            };
                            let anchored =
                                mqf_groups.iter().any(|vars| {
                                    vars.contains(&var.as_str())
                                        && vars.iter().any(|v| *v != var && available(v))
                                }) || eq_pairs.iter().any(|(a, b)| a == var && available(b))
                                    || lit_vars.contains(&var.as_str());
                            if anchored {
                                1 << 10
                            } else {
                                (1 << 40) + size
                            }
                        }
                        _ => 1 << 20,
                    },
                };
                if best.is_none_or(|(s, _)| score < s) {
                    best = Some((score, i));
                }
            }
            let i = match best {
                Some((_, i)) => i,
                None => {
                    // Cyclic data dependencies among binding sources
                    // cannot come out of the translator, but a
                    // hand-written query can express them. Fall back to
                    // source order for the rest; evaluation then reports
                    // the unbound variable instead of planning dying.
                    for (j, p) in placed.iter_mut().enumerate() {
                        if !*p {
                            *p = true;
                            out.push(j);
                        }
                    }
                    continue;
                }
            };
            placed[i] = true;
            out.push(i);
        }
        out
    }

    /// Incremental mqf check over whichever of `vars` are bound in
    /// `env`. Sound because pairwise meaningfulness over a subset is
    /// necessary for the full set.
    fn partial_mqf(&self, vars: &[&str], env: &Env, guard: &Guard) -> Result<bool, EvalError> {
        guard.mqf_checks.set(guard.mqf_checks.get() + 1);
        let mut nodes: Vec<NodeId> = Vec::with_capacity(vars.len());
        for v in vars {
            let Some(seq) = env.get(v) else { continue };
            for item in seq {
                match item {
                    Item::Node(id) => nodes.push(*id),
                    other => {
                        return Err(EvalError::TypeError(format!(
                            "mqf() expects nodes, got {}",
                            other.string_value(&self.doc)
                        )))
                    }
                }
            }
        }
        Ok(set_meaningfully_related(&self.doc, &nodes))
    }

    fn compare_key(&self, a: &Sequence, b: &Sequence) -> std::cmp::Ordering {
        match (a.first(), b.first()) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(x), Some(y)) => compare_items(&self.doc, x, y),
        }
    }

    fn eval_path(&self, root: &PathRoot, steps: &[Step], env: &Env) -> Result<Sequence, EvalError> {
        // Starting context node set.
        let mut ctx: Vec<NodeId> = match root {
            PathRoot::Doc(_) => vec![self.doc.root()],
            PathRoot::Var(v) => {
                let seq = env
                    .get(v)
                    .ok_or_else(|| EvalError::UnboundVariable(v.clone()))?;
                if steps.is_empty() {
                    return Ok(seq.clone());
                }
                let mut nodes = Vec::with_capacity(seq.len());
                for item in seq {
                    match item {
                        Item::Node(id) => nodes.push(*id),
                        other => {
                            return Err(EvalError::TypeError(format!(
                                "path step applied to non-node value `{}`",
                                other.string_value(&self.doc)
                            )))
                        }
                    }
                }
                nodes
            }
        };
        let from_doc = matches!(root, PathRoot::Doc(_));
        for (si, step) in steps.iter().enumerate() {
            let mut next: Vec<NodeId> = Vec::new();
            for &n in &ctx {
                match step.axis {
                    StepAxis::Child => {
                        for c in self.doc.children(n) {
                            if self.step_matches(step, c) {
                                next.push(c);
                            }
                        }
                    }
                    StepAxis::Descendant => {
                        // `doc()//x` may match the root element itself
                        // (the document node is its parent); `$v//x`
                        // matches proper descendants only.
                        if si == 0 && from_doc && self.step_matches(step, n) {
                            next.push(n);
                        }
                        for c in self.doc.descendants(n) {
                            if self.step_matches(step, c) {
                                next.push(c);
                            }
                        }
                    }
                }
            }
            // Document order, no duplicates.
            next.sort_by_key(|&id| self.doc.pre(id));
            next.dedup();
            ctx = next;
        }
        Ok(ctx.into_iter().map(Item::Node).collect())
    }

    fn step_matches(&self, step: &Step, n: NodeId) -> bool {
        if self.doc.kind(n) == NodeKind::Text {
            return false;
        }
        if step.is_wildcard() {
            return true;
        }
        let label = self.doc.label(n);
        step.names.iter().any(|name| name == label)
    }

    fn general_compare(&self, op: CmpOp, lhs: &Sequence, rhs: &Sequence) -> bool {
        for a in lhs {
            for b in rhs {
                let ord = compare_items(&self.doc, a, b);
                let ok = match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                };
                if ok {
                    return true;
                }
            }
        }
        false
    }

    fn aggregate(&self, func: AggFunc, seq: &Sequence) -> Result<Sequence, EvalError> {
        match func {
            AggFunc::Count => Ok(vec![Item::Num(seq.len() as f64)]),
            AggFunc::Sum => {
                let mut total = 0.0;
                for item in seq {
                    total += item.numeric_value(&self.doc).ok_or_else(|| {
                        EvalError::TypeError(format!(
                            "sum() over non-numeric value `{}`",
                            item.string_value(&self.doc)
                        ))
                    })?;
                }
                Ok(vec![Item::Num(total)])
            }
            AggFunc::Avg => {
                if seq.is_empty() {
                    return Ok(vec![]);
                }
                let mut total = 0.0;
                for item in seq {
                    total += item.numeric_value(&self.doc).ok_or_else(|| {
                        EvalError::TypeError(format!(
                            "avg() over non-numeric value `{}`",
                            item.string_value(&self.doc)
                        ))
                    })?;
                }
                Ok(vec![Item::Num(total / seq.len() as f64)])
            }
            AggFunc::Min | AggFunc::Max => {
                if seq.is_empty() {
                    return Ok(vec![]);
                }
                let want = if matches!(func, AggFunc::Min) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                };
                let mut best = &seq[0];
                for item in &seq[1..] {
                    if compare_items(&self.doc, item, best) == want {
                        best = item;
                    }
                }
                Ok(vec![best.clone()])
            }
        }
    }

    fn call(
        &self,
        name: &str,
        args: &[Expr],
        env: &Env,
        guard: &Guard<'_>,
        depth: usize,
    ) -> Result<Sequence, EvalError> {
        let arity = |expected: usize| -> Result<(), EvalError> {
            if args.len() != expected {
                Err(EvalError::WrongArity {
                    name: name.to_owned(),
                    expected,
                    got: args.len(),
                })
            } else {
                Ok(())
            }
        };
        let first_string = |seq: &Sequence| -> String {
            seq.first()
                .map(|i| i.string_value(&self.doc))
                .unwrap_or_default()
        };
        match name {
            "contains" => {
                arity(2)?;
                let a = first_string(&self.eval_inner(&args[0], env, guard, depth + 1)?);
                let b = first_string(&self.eval_inner(&args[1], env, guard, depth + 1)?);
                Ok(vec![Item::Bool(a.contains(&b))])
            }
            "starts-with" => {
                arity(2)?;
                let a = first_string(&self.eval_inner(&args[0], env, guard, depth + 1)?);
                let b = first_string(&self.eval_inner(&args[1], env, guard, depth + 1)?);
                Ok(vec![Item::Bool(a.starts_with(&b))])
            }
            "ends-with" => {
                arity(2)?;
                let a = first_string(&self.eval_inner(&args[0], env, guard, depth + 1)?);
                let b = first_string(&self.eval_inner(&args[1], env, guard, depth + 1)?);
                Ok(vec![Item::Bool(a.ends_with(&b))])
            }
            "string-length" => {
                arity(1)?;
                let a = first_string(&self.eval_inner(&args[0], env, guard, depth + 1)?);
                Ok(vec![Item::Num(a.chars().count() as f64)])
            }
            "string" => {
                arity(1)?;
                let a = first_string(&self.eval_inner(&args[0], env, guard, depth + 1)?);
                Ok(vec![Item::Str(a)])
            }
            "number" => {
                arity(1)?;
                let seq = self.eval_inner(&args[0], env, guard, depth + 1)?;
                let n = seq
                    .first()
                    .and_then(|i| i.numeric_value(&self.doc))
                    .unwrap_or(f64::NAN);
                Ok(vec![Item::Num(n)])
            }
            "concat" => {
                let mut out = String::new();
                for a in args {
                    out.push_str(&first_string(&self.eval_inner(a, env, guard, depth + 1)?));
                }
                Ok(vec![Item::Str(out)])
            }
            "name" => {
                arity(1)?;
                let seq = self.eval_inner(&args[0], env, guard, depth + 1)?;
                match seq.first() {
                    Some(Item::Node(id)) => Ok(vec![Item::Str(self.doc.label(*id).to_owned())]),
                    Some(Item::Elem(e)) => Ok(vec![Item::Str(e.name.clone())]),
                    _ => Ok(vec![Item::Str(String::new())]),
                }
            }
            "data" => {
                arity(1)?;
                let seq = self.eval_inner(&args[0], env, guard, depth + 1)?;
                Ok(seq
                    .iter()
                    .map(|i| Item::Str(i.string_value(&self.doc)))
                    .collect())
            }
            "distinct-values" => {
                arity(1)?;
                let seq = self.eval_inner(&args[0], env, guard, depth + 1)?;
                let mut seen = std::collections::HashSet::new();
                let mut out = Vec::new();
                for item in seq {
                    let s = item.string_value(&self.doc);
                    if seen.insert(s.clone()) {
                        out.push(Item::Str(s));
                    }
                }
                Ok(out)
            }
            "empty" => {
                arity(1)?;
                let seq = self.eval_inner(&args[0], env, guard, depth + 1)?;
                Ok(vec![Item::Bool(seq.is_empty())])
            }
            "exists" => {
                arity(1)?;
                let seq = self.eval_inner(&args[0], env, guard, depth + 1)?;
                Ok(vec![Item::Bool(!seq.is_empty())])
            }
            "true" => {
                arity(0)?;
                Ok(vec![Item::Bool(true)])
            }
            "false" => {
                arity(0)?;
                Ok(vec![Item::Bool(false)])
            }
            other => Err(EvalError::UnknownFunction(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::datasets::bib::bib;
    use xmldb::datasets::movies::{movies, movies_and_books};

    fn run(doc: &Document, q: &str) -> Vec<String> {
        let e = Engine::new(doc.clone());
        let out = e
            .run(q)
            .unwrap_or_else(|err| panic!("query failed: {err}\n{q}"));
        e.strings(&out)
    }

    #[test]
    fn engine_and_env_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<Env>();
    }

    #[test]
    fn value_index_is_shared_across_threads() {
        let doc = movies();
        let e = Engine::new(doc.clone());
        let q = "for $m in doc(\"movies.xml\")//movie, $d in doc(\"movies.xml\")//director \
                 where $d = \"Ron Howard\" and mqf($m, $d) return $m/title";
        let serial = e.strings(&e.run(q).unwrap());
        let parallel: Vec<Vec<String>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| e.strings(&e.run(q).unwrap())))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for p in parallel {
            assert_eq!(p, serial);
        }
    }

    /// Plan the bindings of a parsed FLWOR and return the variable names
    /// in execution order.
    fn plan_of(doc: &Document, q: &str) -> Vec<String> {
        let e = Engine::new(doc.clone());
        let expr = parse(q).unwrap();
        let Expr::Flwor {
            bindings,
            where_clause,
            ..
        } = &expr
        else {
            panic!("not a FLWOR")
        };
        let mut conjuncts = Vec::new();
        if let Some(w) = where_clause.as_deref() {
            flatten_and(w, &mut conjuncts);
        }
        let mut mqf_groups: Vec<Vec<&str>> = Vec::new();
        let mut eq_pairs: Vec<(&str, &str)> = Vec::new();
        for c in &conjuncts {
            match c {
                Expr::Mqf(args) => {
                    mqf_groups.push(
                        args.iter()
                            .filter_map(|a| match a {
                                Expr::Path {
                                    root: PathRoot::Var(v),
                                    steps,
                                } if steps.is_empty() => Some(v.as_str()),
                                _ => None,
                            })
                            .collect(),
                    );
                }
                Expr::Cmp {
                    op: CmpOp::Eq,
                    lhs,
                    rhs,
                } => {
                    if let (
                        Expr::Path {
                            root: PathRoot::Var(a),
                            steps: sa,
                        },
                        Expr::Path {
                            root: PathRoot::Var(b),
                            steps: sb,
                        },
                    ) = (lhs.as_ref(), rhs.as_ref())
                    {
                        if sa.is_empty() && sb.is_empty() {
                            eq_pairs.push((a, b));
                            eq_pairs.push((b, a));
                        }
                    }
                }
                _ => {}
            }
        }
        let order = e.plan_order(bindings, &mqf_groups, &eq_pairs, &[], &Env::new());
        order
            .into_iter()
            .map(|i| bindings[i].var().to_owned())
            .collect()
    }

    #[test]
    fn planner_starts_with_smallest_label_scan() {
        let d = movies(); // 2 year, 5 movie, 5 title nodes
        let plan = plan_of(
            &d,
            "for $t in doc()//title, $y in doc()//year, $m in doc()//movie \
             where mqf($t, $y) and mqf($t, $m) return $t",
        );
        assert_eq!(plan[0], "y", "{plan:?}"); // the 2-node label first
    }

    #[test]
    fn planner_prefers_anchored_scans_after_the_first() {
        let d = movies();
        let plan = plan_of(
            &d,
            "for $t in doc()//title, $m in doc()//movie, $d in doc()//director \
             where mqf($t, $m) and mqf($m, $d) return $t",
        );
        // all labels have 5 nodes; after the first, the rest must be
        // anchored via mqf — every subsequent var shares an mqf group
        // with an earlier one
        assert_eq!(plan.len(), 3);
        let first = &plan[0];
        assert!(["t", "m", "d"].contains(&first.as_str()));
    }

    #[test]
    fn planner_respects_data_dependencies() {
        let d = bib();
        let plan = plan_of(
            &d,
            "for $b in doc()//book, $a in $b/author where $a = \"x\" return $b",
        );
        // $a's source references $b, so $b must come first even though
        // per-tuple paths are otherwise preferred.
        assert_eq!(plan, vec!["b", "a"]);
    }

    #[test]
    fn planner_puts_lets_last() {
        let d = bib();
        let plan = plan_of(
            &d,
            "for $b in doc()//book let $p := $b/price where count($p) > 0 return $b",
        );
        assert_eq!(plan, vec!["b", "p"]);
    }

    #[test]
    fn planner_output_order_is_preserved() {
        // Whatever the internal order, results come back in the
        // specification's nested-loop order.
        let d = movies();
        let out = run(
            &d,
            "for $t in doc()//title, $y in doc()//year \
             where mqf($t, $y) return ($t, $y)",
        );
        // titles in document order, each with its year
        assert_eq!(out.len(), 10);
        assert_eq!(out[0], "How the Grinch Stole Christmas");
        assert!(out[1].starts_with("2000"));
        let last_title = &out[8];
        assert_eq!(last_title, "The Lord of the Rings");
    }

    #[test]
    fn simple_path_query() {
        let d = movies();
        let out = run(&d, "for $t in doc()//title return $t");
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], "How the Grinch Stole Christmas");
    }

    #[test]
    fn root_matches_descendant_axis_from_doc() {
        let d = movies();
        let out = run(&d, "for $m in doc()//movies return $m/year");
        // root element itself matched; two year children.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn where_filters_by_value() {
        let d = movies();
        let out = run(
            &d,
            "for $dd in doc()//director where $dd = \"Ron Howard\" return $dd",
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn mqf_schema_free_join() {
        let d = movies();
        let out = run(
            &d,
            "for $dd in doc()//director, $t in doc()//title \
             where mqf($dd, $t) and $t = \"Traffic\" return $dd",
        );
        assert_eq!(out, vec!["Steven Soderbergh"]);
    }

    #[test]
    fn figure9_query2_full_translation() {
        // "Return every director who has directed as many movies as has
        // Ron Howard" — Figure 9's translated form, against Figure 1
        // data. Ron Howard directed 2, Steven Soderbergh directed 2.
        let d = movies();
        let q = r#"
        for $v1 in doc("movie.xml")//director, $v4 in doc("movie.xml")//director
        let $vars1 := { for $v5 in doc("movie.xml")//director, $v2 in doc("movie.xml")//movie
                        where mqf($v2,$v5) and $v5 = $v1 return $v2 }
        let $vars2 := { for $v6 in doc("movie.xml")//director, $v3 in doc("movie.xml")//movie
                        where mqf($v3,$v6) and $v6 = $v4 return $v3 }
        where count($vars1) = count($vars2) and $v4 = "Ron Howard"
        return $v1"#;
        let mut out = run(&d, q);
        out.sort();
        out.dedup();
        assert_eq!(out, vec!["Ron Howard", "Steven Soderbergh"]);
    }

    #[test]
    fn query3_title_value_join() {
        // "Return the directors of movies, where the title of each movie
        // is the same as the title of a book."
        let d = movies_and_books();
        let q = r#"
        for $d in doc()//director, $mt in doc()//title,
            $b in doc()//book, $bt in doc()//title
        where mqf($d, $mt) and mqf($b, $bt) and $mt = $bt and not($d = $bt)
        return $d"#;
        // Simpler faithful form: directors whose movie title equals some
        // book's title. The only shared title is "Traffic".
        let e = Engine::new(d.clone());
        let out = e.run(q).unwrap();
        let mut names = e.strings(&out);
        names.sort();
        names.dedup();
        assert!(names.contains(&"Steven Soderbergh".to_owned()), "{names:?}");
    }

    #[test]
    fn aggregates() {
        let d = bib();
        assert_eq!(run(&d, "count(doc()//book)"), vec!["4"]);
        assert_eq!(run(&d, "min(doc()//price)"), vec!["39.95"]);
        assert_eq!(run(&d, "max(doc()//price)"), vec!["129.95"]);
        assert_eq!(run(&d, "sum(doc()//year)"), vec!["7985"]);
        assert_eq!(run(&d, "avg(doc()//year)"), vec!["1996.25"]);
    }

    #[test]
    fn aggregate_of_empty_sequences() {
        let d = bib();
        assert_eq!(run(&d, "count(doc()//nothing)"), vec!["0"]);
        assert!(run(&d, "min(doc()//nothing)").is_empty());
        assert!(run(&d, "avg(doc()//nothing)").is_empty());
        assert_eq!(run(&d, "sum(doc()//nothing)"), vec!["0"]);
    }

    #[test]
    fn numeric_comparison_on_attribute_years() {
        let d = bib();
        let out = run(
            &d,
            "for $b in doc()//book where $b/year > 1991 return $b/title",
        );
        assert_eq!(out.len(), 4); // 1994, 1992, 2000, 1999 all qualify
    }

    #[test]
    fn order_by_ascending_and_descending() {
        let d = bib();
        let asc = run(
            &d,
            "for $b in doc()//book order by $b/title return $b/title",
        );
        let mut sorted = asc.clone();
        sorted.sort();
        assert_eq!(asc, sorted);
        let desc = run(
            &d,
            "for $b in doc()//book order by $b/title descending return $b/title",
        );
        let mut rev = desc.clone();
        rev.sort();
        rev.reverse();
        assert_eq!(desc, rev);
    }

    #[test]
    fn order_by_numeric_key() {
        let d = bib();
        let out = run(
            &d,
            "for $b in doc()//book order by $b/price return $b/price",
        );
        assert_eq!(out, vec!["39.95", "65.95", "65.95", "129.95"]);
    }

    #[test]
    fn quantifier_some() {
        let d = bib();
        let out = run(
            &d,
            "for $b in doc()//book \
             where some $a in $b/author satisfies contains($a/last, \"Suciu\") \
             return $b/title",
        );
        assert_eq!(out, vec!["Data on the Web"]);
    }

    #[test]
    fn quantifier_every() {
        let d = bib();
        let out = run(
            &d,
            "for $b in doc()//book \
             where every $a in $b/author satisfies contains($a/last, \"Stevens\") \
             return $b/title",
        );
        // Books with no authors vacuously satisfy `every`.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn let_binds_whole_sequence() {
        let d = bib();
        let out = run(
            &d,
            "for $b in doc()//book let $a := $b/author \
             where count($a) >= 2 return $b/title",
        );
        assert_eq!(out, vec!["Data on the Web"]);
    }

    #[test]
    fn nested_flwor_grouping() {
        // Min price per book title — the XMP Q10 shape.
        let d = bib();
        let out = run(
            &d,
            "for $b in doc()//book \
             let $p := { for $b2 in doc()//book where $b2/title = $b/title return $b2/price } \
             return element minprice { $b/title, min($p) }",
        );
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn element_constructor_flattens_to_string() {
        let d = bib();
        let e = Engine::new(d.clone());
        let out = e
            .run("for $b in doc()//book where $b/year = 1994 return element r { $b/title }")
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(e.item_string(&out[0]), "TCP/IP Illustrated");
    }

    #[test]
    fn string_functions() {
        let d = bib();
        assert_eq!(
            run(
                &d,
                "for $t in doc()//title where starts-with($t, \"Data\") return $t"
            ),
            vec!["Data on the Web"]
        );
        assert_eq!(
            run(
                &d,
                "for $t in doc()//title where ends-with($t, \"Illustrated\") return $t"
            ),
            vec!["TCP/IP Illustrated"]
        );
        assert_eq!(run(&d, "string-length(\"abc\")"), vec!["3"]);
        assert_eq!(run(&d, "concat(\"a\", \"b\", \"c\")"), vec!["abc"]);
    }

    #[test]
    fn distinct_values_dedups() {
        let d = bib();
        let out = run(&d, "distinct-values(doc()//price)");
        assert_eq!(out.len(), 3); // 65.95 repeats
    }

    #[test]
    fn empty_and_exists() {
        let d = bib();
        assert_eq!(run(&d, "empty(doc()//nothing)"), vec!["true"]);
        assert_eq!(run(&d, "exists(doc()//book)"), vec!["true"]);
    }

    #[test]
    fn name_function() {
        let d = bib();
        let out = run(
            &d,
            "for $e in doc()//book/* where ends-with(name($e), \"or\") return name($e)",
        );
        // author × 5 (incl. three on one book) and editor × 1
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn disjunctive_name_test_runs() {
        let d = bib();
        let out = run(&d, "for $x in doc()//(author|editor) return $x/last");
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn wildcard_child_step() {
        let d = bib();
        let out = run(
            &d,
            "for $b in doc()//book where $b/year = 1994 return count($b/*)",
        );
        // title, author, publisher, price + the year attribute = 5
        assert_eq!(out, vec!["5"]);
    }

    #[test]
    fn unbound_variable_errors() {
        let d = bib();
        let e = Engine::new(d.clone());
        let err = e.run("for $b in doc()//book return $nope").unwrap_err();
        assert!(matches!(err, EvalError::UnboundVariable(v) if v == "nope"));
    }

    #[test]
    fn path_on_string_errors() {
        let d = bib();
        let e = Engine::new(d.clone());
        let err = e
            .run("for $b in doc()//book let $s := \"x\" where $s/title = 1 return $b")
            .unwrap_err();
        assert!(matches!(err, EvalError::TypeError(_)));
    }

    #[test]
    fn unknown_function_errors() {
        let d = bib();
        let e = Engine::new(d.clone());
        let err = e.run("frobnicate(doc()//book)").unwrap_err();
        assert!(matches!(err, EvalError::UnknownFunction(_)));
    }

    #[test]
    fn wrong_arity_errors() {
        let d = bib();
        let e = Engine::new(d.clone());
        let err = e.run("contains(\"a\")").unwrap_err();
        assert!(matches!(err, EvalError::WrongArity { .. }));
    }

    #[test]
    fn negation() {
        let d = bib();
        let out = run(
            &d,
            "for $b in doc()//book where not($b/publisher = \"Addison-Wesley\") return $b/title",
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn general_comparison_is_existential() {
        let d = bib();
        // book with *some* author whose last name is Buneman
        let out = run(
            &d,
            "for $b in doc()//book where $b/author/last = \"Buneman\" return $b/title",
        );
        assert_eq!(out, vec!["Data on the Web"]);
    }

    #[test]
    fn value_join_across_entries() {
        let d = bib();
        // pairs of books with the same publisher but different titles
        let out = run(
            &d,
            "for $a in doc()//book, $b in doc()//book \
             where $a/publisher = $b/publisher and not($a/title = $b/title) \
             return $a/title",
        );
        assert_eq!(out.len(), 2); // the two Addison-Wesley books, both directions
    }

    #[test]
    fn path_results_deduplicated_in_doc_order() {
        let d = movies();
        // both year elements contain movies; //title from doc visits each once
        let out = run(&d, "for $t in doc()//title return $t");
        let mut dedup = out.clone();
        dedup.dedup();
        assert_eq!(out.len(), dedup.len());
    }
}
