//! The abstract syntax of the supported Schema-Free XQuery subset.
//!
//! The NaLIX translator (crate `nalix`) constructs these trees directly;
//! the [`crate::parser`] builds the same trees from text; the
//! [`crate::pretty`] printer renders them back in the style of the
//! paper's Figure 9.

use std::fmt;

/// Comparison operators of general comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with swapped operands (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`not (a < b)` ⇔ `a >= b` for single values).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Aggregate functions (the targets of NaLIX function tokens).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `count(…)` — "the number of".
    Count,
    /// `sum(…)` — "the total".
    Sum,
    /// `min(…)` — "the lowest/earliest/smallest".
    Min,
    /// `max(…)` — "the highest/latest/greatest".
    Max,
    /// `avg(…)` — "the average".
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        })
    }
}

/// Quantifier kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// `some … satisfies …`
    Some,
    /// `every … satisfies …`
    Every,
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Quantifier::Some => "some",
            Quantifier::Every => "every",
        })
    }
}

/// Sort direction of an `order by` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderDir {
    /// `ascending` (the default).
    #[default]
    Ascending,
    /// `descending`.
    Descending,
}

/// The start of a path expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PathRoot {
    /// `doc("uri")` — the engine's single document (the uri is kept for
    /// display only).
    Doc(Option<String>),
    /// `$var`.
    Var(String),
}

/// Path step axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepAxis {
    /// `/` — children (attributes are treated as children, as in the
    /// xmldb data model).
    Child,
    /// `//` — descendants-or-self then children, i.e. all descendants.
    Descendant,
}

/// A single path step: axis plus name test.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis.
    pub axis: StepAxis,
    /// Accepted labels. A single entry is the ordinary name test; more
    /// than one is a disjunctive test `(a|b)` as produced by NaLIX term
    /// expansion; the empty vector is the wildcard `*`.
    pub names: Vec<String>,
}

impl Step {
    /// Ordinary `axis::name` step.
    pub fn named(axis: StepAxis, name: impl Into<String>) -> Step {
        Step {
            axis,
            names: vec![name.into()],
        }
    }

    /// Wildcard `axis::*` step.
    pub fn wildcard(axis: StepAxis) -> Step {
        Step {
            axis,
            names: Vec::new(),
        }
    }

    /// True when the test is the wildcard.
    pub fn is_wildcard(&self) -> bool {
        self.names.is_empty()
    }
}

/// One `for` or `let` binding inside a FLWOR.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    /// `for $var in expr`
    For {
        /// Variable name, without the `$`.
        var: String,
        /// Source expression.
        source: Expr,
    },
    /// `let $var := expr`
    Let {
        /// Variable name, without the `$`.
        var: String,
        /// Bound expression.
        value: Expr,
    },
}

impl Binding {
    /// The bound variable's name.
    pub fn var(&self) -> &str {
        match self {
            Binding::For { var, .. } | Binding::Let { var, .. } => var,
        }
    }
}

/// An `order by` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Key expression, evaluated per tuple.
    pub expr: Expr,
    /// Sort direction.
    pub dir: OrderDir,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A FLWOR expression.
    Flwor {
        /// `for`/`let` clauses in source order.
        bindings: Vec<Binding>,
        /// Conjoined `where` condition, if any.
        where_clause: Option<Box<Expr>>,
        /// `order by` keys (possibly empty).
        order_by: Vec<OrderKey>,
        /// The `return` expression.
        ret: Box<Expr>,
    },
    /// A path expression.
    Path {
        /// Where the path starts.
        root: PathRoot,
        /// Steps (possibly empty, e.g. bare `$v`).
        steps: Vec<Step>,
    },
    /// String literal.
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// General comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Conjunction (n-ary; `And(vec![])` is `true`).
    And(Vec<Expr>),
    /// Disjunction (n-ary; `Or(vec![])` is `false`).
    Or(Vec<Expr>),
    /// `not(expr)`.
    Not(Box<Expr>),
    /// Aggregate function application.
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// Argument sequence.
        arg: Box<Expr>,
    },
    /// The Schema-Free XQuery `mqf(…)` predicate.
    Mqf(Vec<Expr>),
    /// Quantified expression.
    Quantified {
        /// `some` or `every`.
        quant: Quantifier,
        /// Bound variable (no `$`).
        var: String,
        /// Source sequence.
        source: Box<Expr>,
        /// Predicate.
        satisfies: Box<Expr>,
    },
    /// Comma sequence `(a, b, c)`.
    Seq(Vec<Expr>),
    /// Computed element constructor `element name { content }`.
    Element {
        /// The element name.
        name: String,
        /// Content expressions (concatenated).
        content: Vec<Expr>,
    },
    /// Built-in function call not covered by the dedicated variants
    /// (`contains`, `starts-with`, `ends-with`, `string-length`,
    /// `distinct-values`, `empty`, `exists`, `string`, `number`).
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Shorthand: `$var`.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Path {
            root: PathRoot::Var(name.into()),
            steps: Vec::new(),
        }
    }

    /// Shorthand: `doc()//name`.
    pub fn doc_descendant(name: impl Into<String>) -> Expr {
        Expr::Path {
            root: PathRoot::Doc(None),
            steps: vec![Step::named(StepAxis::Descendant, name)],
        }
    }

    /// Shorthand: `doc()//(a|b|…)` for a disjunctive name test.
    pub fn doc_descendant_any(names: Vec<String>) -> Expr {
        Expr::Path {
            root: PathRoot::Doc(None),
            steps: vec![Step {
                axis: StepAxis::Descendant,
                names,
            }],
        }
    }

    /// Shorthand: a comparison.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Conjoin two expressions, flattening nested `And`s.
    pub fn and(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::And(mut a), Expr::And(b)) => {
                a.extend(b);
                Expr::And(a)
            }
            (Expr::And(mut a), b) => {
                a.push(b);
                Expr::And(a)
            }
            (a, Expr::And(mut b)) => {
                b.insert(0, a);
                Expr::And(b)
            }
            (a, b) => Expr::And(vec![a, b]),
        }
    }

    /// Does this expression (transitively) reference variable `name`?
    pub fn references_var(&self, name: &str) -> bool {
        match self {
            Expr::Path { root, .. } => matches!(root, PathRoot::Var(v) if v == name),
            Expr::Str(_) | Expr::Num(_) => false,
            Expr::Cmp { lhs, rhs, .. } => lhs.references_var(name) || rhs.references_var(name),
            Expr::And(xs) | Expr::Or(xs) | Expr::Seq(xs) | Expr::Mqf(xs) => {
                xs.iter().any(|x| x.references_var(name))
            }
            Expr::Not(x) | Expr::Agg { arg: x, .. } => x.references_var(name),
            Expr::Quantified {
                source, satisfies, ..
            } => source.references_var(name) || satisfies.references_var(name),
            Expr::Element { content, .. } => content.iter().any(|x| x.references_var(name)),
            Expr::Call { args, .. } => args.iter().any(|x| x.references_var(name)),
            Expr::Flwor {
                bindings,
                where_clause,
                order_by,
                ret,
            } => {
                bindings.iter().any(|b| match b {
                    Binding::For { source, .. } => source.references_var(name),
                    Binding::Let { value, .. } => value.references_var(name),
                }) || where_clause
                    .as_deref()
                    .is_some_and(|w| w.references_var(name))
                    || order_by.iter().any(|k| k.expr.references_var(name))
                    || ret.references_var(name)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_flip_and_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
    }

    #[test]
    fn and_flattens() {
        let a = Expr::var("a");
        let b = Expr::var("b");
        let c = Expr::var("c");
        let e = a.and(b).and(c);
        match e {
            Expr::And(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn references_var_sees_through_nesting() {
        let e = Expr::Flwor {
            bindings: vec![Binding::For {
                var: "x".into(),
                source: Expr::doc_descendant("movie"),
            }],
            where_clause: Some(Box::new(Expr::cmp(
                CmpOp::Eq,
                Expr::var("x"),
                Expr::var("outer"),
            ))),
            order_by: vec![],
            ret: Box::new(Expr::var("x")),
        };
        assert!(e.references_var("outer"));
        assert!(e.references_var("x"));
        assert!(!e.references_var("y"));
    }

    #[test]
    fn step_wildcard() {
        let s = Step::wildcard(StepAxis::Child);
        assert!(s.is_wildcard());
        let s = Step::named(StepAxis::Descendant, "movie");
        assert!(!s.is_wildcard());
    }
}
