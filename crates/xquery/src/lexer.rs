//! Tokenizer for the textual XQuery subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `$name` — a variable reference.
    Var(String),
    /// A bare name (keyword or function/element name — the parser
    /// decides from context).
    Name(String),
    /// A string literal (quotes stripped, escapes resolved).
    Str(String),
    /// A numeric literal.
    Num(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `:=`
    Assign,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `|`
    Pipe,
    /// `*`
    Star,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Var(v) => write!(f, "${v}"),
            Token::Name(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Num(n) => write!(f, "{n}"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::LBrace => f.write_str("{"),
            Token::RBrace => f.write_str("}"),
            Token::Comma => f.write_str(","),
            Token::Slash => f.write_str("/"),
            Token::DoubleSlash => f.write_str("//"),
            Token::Assign => f.write_str(":="),
            Token::Eq => f.write_str("="),
            Token::Ne => f.write_str("!="),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
            Token::Pipe => f.write_str("|"),
            Token::Star => f.write_str("*"),
        }
    }
}

/// Lexing error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_name_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.')
}

/// Tokenize a query string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                // `(: comment :)`
                if bytes.get(i + 1) == Some(&b':') {
                    let mut depth = 1;
                    let mut j = i + 2;
                    while j + 1 < bytes.len() && depth > 0 {
                        if bytes[j] == b'(' && bytes[j + 1] == b':' {
                            depth += 1;
                            j += 2;
                        } else if bytes[j] == b':' && bytes[j + 1] == b')' {
                            depth -= 1;
                            j += 2;
                        } else {
                            j += 1;
                        }
                    }
                    if depth > 0 {
                        return Err(LexError {
                            offset: i,
                            message: "unterminated comment".into(),
                        });
                    }
                    i = j;
                } else {
                    tokens.push(Token::LParen);
                    i += 1;
                }
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '|' => {
                tokens.push(Token::Pipe);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    tokens.push(Token::DoubleSlash);
                    i += 2;
                } else {
                    tokens.push(Token::Slash);
                    i += 1;
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Assign);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "expected `:=`".into(),
                    });
                }
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "expected `!=`".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_name_continue(bytes[j] as char) {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        offset: i,
                        message: "expected variable name after `$`".into(),
                    });
                }
                tokens.push(Token::Var(input[start..j].to_owned()));
                i = j;
            }
            '"' | '\'' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(LexError {
                            offset: i,
                            message: "unterminated string literal".into(),
                        });
                    }
                    let cj = bytes[j] as char;
                    if cj == quote {
                        // Doubled quote is an escaped quote in XQuery.
                        if bytes.get(j + 1) == Some(&(quote as u8)) {
                            s.push(quote);
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(cj);
                    j += 1;
                }
                tokens.push(Token::Str(s));
                i = j + 1;
            }
            // Numeric literal, optionally negative (the subset has no
            // arithmetic, so a leading `-` before a digit is always a
            // sign).
            _ if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                let start = i;
                let mut j = if c == '-' { i + 1 } else { i };
                while j < bytes.len() && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.') {
                    j += 1;
                }
                let text = &input[start..j];
                let n: f64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("bad number `{text}`"),
                })?;
                tokens.push(Token::Num(n));
                i = j;
            }
            _ if is_name_start(c) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_name_continue(bytes[j] as char) {
                    j += 1;
                }
                tokens.push(Token::Name(input[start..j].to_owned()));
                i = j;
            }
            _ => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character `{c}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_flwor_skeleton() {
        let t = lex("for $v in doc()//movie return $v").unwrap();
        assert_eq!(t[0], Token::Name("for".into()));
        assert_eq!(t[1], Token::Var("v".into()));
        assert!(t.contains(&Token::DoubleSlash));
    }

    #[test]
    fn lexes_operators() {
        let t = lex("= != < <= > >= := | *").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Eq,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Assign,
                Token::Pipe,
                Token::Star
            ]
        );
    }

    #[test]
    fn lexes_strings_with_both_quotes() {
        let t = lex(r#""Ron Howard" 'abc'"#).unwrap();
        assert_eq!(
            t,
            vec![Token::Str("Ron Howard".into()), Token::Str("abc".into())]
        );
    }

    #[test]
    fn doubled_quote_escapes() {
        let t = lex(r#""say ""hi""""#).unwrap();
        assert_eq!(t, vec![Token::Str("say \"hi\"".into())]);
    }

    #[test]
    fn lexes_numbers() {
        let t = lex("1991 65.95").unwrap();
        assert_eq!(t, vec![Token::Num(1991.0), Token::Num(65.95)]);
    }

    #[test]
    fn lexes_negative_numbers() {
        let t = lex("-5 -0.25").unwrap();
        assert_eq!(t, vec![Token::Num(-5.0), Token::Num(-0.25)]);
    }

    #[test]
    fn bare_minus_is_still_an_error() {
        assert!(lex("a - b").is_err());
    }

    #[test]
    fn skips_comments() {
        let t = lex("for (: a (: nested :) comment :) $v").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn rejects_stray_bang() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn names_allow_hyphen_and_dot() {
        let t = lex("starts-with et-al xs.int").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], Token::Name("starts-with".into()));
    }
}
