//! Pretty-print → re-parse roundtrip over *generated* XQuery ASTs.
//!
//! The translator builds `Expr` trees directly and the golden tests
//! snapshot their pretty-printed text, so the printer and the text
//! parser must agree: parsing printed output must succeed, and printing
//! the re-parsed tree must reach a fixpoint (the parser may normalise —
//! e.g. flatten conjunctions — so the invariant is stated on the
//! printed form, plus AST equality whenever the generated tree is
//! already in canonical form).

use proptest::prelude::*;
use xquery::ast::{
    AggFunc, Binding, CmpOp, Expr, OrderDir, OrderKey, PathRoot, Quantifier, Step, StepAxis,
};
use xquery::{parse, pretty::pretty};

fn name() -> impl Strategy<Value = String> {
    "[a-z]{1,6}"
}

fn path() -> BoxedStrategy<Expr> {
    (
        prop_oneof![Just(PathRoot::Doc(None)), name().prop_map(PathRoot::Var),],
        proptest::collection::vec(
            (
                prop_oneof![Just(StepAxis::Child), Just(StepAxis::Descendant)],
                name(),
            ),
            0..3,
        ),
    )
        .prop_map(|(root, steps)| Expr::Path {
            root,
            steps: steps
                .into_iter()
                .map(|(axis, n)| Step::named(axis, n))
                .collect(),
        })
        .boxed()
}

fn atom() -> BoxedStrategy<Expr> {
    prop_oneof![
        path(),
        "[a-zA-Z0-9 ]{0,8}".prop_map(Expr::Str),
        (0u32..1000).prop_map(|n| Expr::Num(n as f64)),
        (
            prop_oneof![
                Just(AggFunc::Count),
                Just(AggFunc::Sum),
                Just(AggFunc::Min),
                Just(AggFunc::Max),
                Just(AggFunc::Avg)
            ],
            path()
        )
            .prop_map(|(func, arg)| Expr::Agg {
                func,
                arg: Box::new(arg)
            }),
    ]
    .boxed()
}

fn cmp() -> BoxedStrategy<Expr> {
    (
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge)
        ],
        atom(),
        atom(),
    )
        .prop_map(|(op, lhs, rhs)| Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
        .boxed()
}

fn predicate() -> BoxedStrategy<Expr> {
    prop_oneof![
        cmp(),
        proptest::collection::vec(path(), 2..5).prop_map(Expr::Mqf),
        cmp().prop_map(|c| Expr::Not(Box::new(c))),
        proptest::collection::vec(cmp(), 2..4).prop_map(Expr::Or),
        (path(), "[a-zA-Z0-9 ]{1,8}").prop_map(|(p, s)| Expr::Call {
            name: "contains".to_owned(),
            args: vec![p, Expr::Str(s)],
        }),
        (
            prop_oneof![Just(Quantifier::Some), Just(Quantifier::Every)],
            name(),
            path(),
            cmp()
        )
            .prop_map(|(quant, var, source, satisfies)| Expr::Quantified {
                quant,
                var,
                source: Box::new(source),
                satisfies: Box::new(satisfies),
            }),
    ]
    .boxed()
}

fn where_clause() -> BoxedStrategy<Expr> {
    prop_oneof![
        predicate(),
        proptest::collection::vec(predicate(), 2..4).prop_map(Expr::And),
    ]
    .boxed()
}

fn flwor() -> BoxedStrategy<Expr> {
    (
        proptest::collection::vec((name(), name()), 1..4),
        proptest::option::of(where_clause()),
        proptest::collection::vec(
            (
                path(),
                prop_oneof![Just(OrderDir::Ascending), Just(OrderDir::Descending)],
            ),
            0..3,
        ),
        prop_oneof![
            path(),
            (name(), proptest::collection::vec(path(), 1..3))
                .prop_map(|(n, content)| Expr::Element { name: n, content }),
            proptest::collection::vec(path(), 2..4).prop_map(Expr::Seq),
        ],
    )
        .prop_map(|(vars, where_c, order, ret)| Expr::Flwor {
            bindings: vars
                .into_iter()
                .map(|(var, label)| Binding::For {
                    var,
                    source: Expr::Path {
                        root: PathRoot::Doc(None),
                        steps: vec![Step::named(StepAxis::Descendant, label)],
                    },
                })
                .collect(),
            where_clause: where_c.map(Box::new),
            order_by: order
                .into_iter()
                .map(|(expr, dir)| OrderKey { expr, dir })
                .collect(),
            ret: Box::new(ret),
        })
        .boxed()
}

proptest! {
    #[test]
    fn pretty_output_reparses_to_fixpoint(expr in flwor()) {
        let printed = pretty(&expr);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed query does not re-parse: {e}\n{printed}"));
        let reprinted = pretty(&reparsed);
        prop_assert_eq!(&printed, &reprinted, "print→parse→print not a fixpoint");
        // And from the fixpoint, the AST itself must round-trip exactly.
        let reparsed2 = parse(&reprinted).expect("fixpoint text re-parses");
        prop_assert_eq!(reparsed, reparsed2);
    }

    #[test]
    fn standalone_predicates_reparse(pred in where_clause()) {
        let printed = pretty(&pred);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed predicate does not re-parse: {e}\n{printed}"));
        prop_assert_eq!(&printed, &pretty(&reparsed));
    }
}
