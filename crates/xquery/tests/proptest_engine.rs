//! Property tests for the XQuery engine: lexer/parser robustness,
//! comparison algebra, aggregate identities, and the equivalence of the
//! optimised FLWOR evaluation (pushdown + planner + indexes) with
//! declarative semantics expressed as differently-shaped queries.

use proptest::prelude::*;
use xmldb::Document;
use xquery::Engine;

fn numbers_doc(values: &[i32]) -> Document {
    let mut d = Document::new("r");
    let root = d.root();
    for v in values {
        d.add_leaf(root, "n", &v.to_string());
    }
    d.finalize();
    d
}

proptest! {
    /// The lexer/parser must never panic on arbitrary text.
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let _ = xquery::parse(&input);
    }

    /// Aggregates agree with direct computation.
    #[test]
    fn aggregates_match_direct(values in proptest::collection::vec(-1000i32..1000, 1..20)) {
        let d = numbers_doc(&values);
        let e = Engine::new(d.clone());
        let run1 = |q: &str| -> f64 {
            let out = e.run(q).unwrap();
            e.item_string(&out[0]).parse().unwrap()
        };
        prop_assert_eq!(run1("count(doc()//n)") as usize, values.len());
        prop_assert_eq!(run1("sum(doc()//n)") as i64, values.iter().map(|&v| v as i64).sum::<i64>());
        prop_assert_eq!(run1("min(doc()//n)") as i32, *values.iter().min().unwrap());
        prop_assert_eq!(run1("max(doc()//n)") as i32, *values.iter().max().unwrap());
        let avg: f64 = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        let got = run1("avg(doc()//n)");
        prop_assert!((got - avg).abs() < 1e-9);
    }

    /// General comparison is symmetric for `=` and anti-symmetric for
    /// `<`/`>` over single values.
    #[test]
    fn comparison_algebra(a in -100i32..100, b in -100i32..100) {
        let d = numbers_doc(&[a, b]);
        let e = Engine::new(d.clone());
        let truth = |q: String| -> bool {
            let out = e.run(&q).unwrap();
            e.item_string(&out[0]) == "true"
        };
        prop_assert_eq!(truth(format!("{a} = {b}")), a == b);
        prop_assert_eq!(truth(format!("{a} = {b}")), truth(format!("{b} = {a}")));
        prop_assert_eq!(truth(format!("{a} < {b}")), a < b);
        prop_assert_eq!(truth(format!("{a} < {b}")), truth(format!("{b} > {a}")));
        prop_assert_eq!(truth(format!("{a} <= {b}")), !truth(format!("{a} > {b}")));
    }

    /// `order by` produces a sorted permutation of the unordered result.
    #[test]
    fn order_by_sorts(values in proptest::collection::vec(-1000i32..1000, 0..20)) {
        let d = numbers_doc(&values);
        let e = Engine::new(d.clone());
        let sorted = e
            .run("for $n in doc()//n order by $n return $n")
            .unwrap();
        let got: Vec<i32> = sorted.iter().map(|i| e.item_string(i).parse().unwrap()).collect();
        let mut want = values.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Where-filtering equals post-hoc filtering: the pushdown/planner
    /// machinery must not change the answer set.
    #[test]
    fn pushdown_equals_postfilter(
        values in proptest::collection::vec(-50i32..50, 0..15),
        threshold in -50i32..50,
    ) {
        let d = numbers_doc(&values);
        let e = Engine::new(d.clone());
        let filtered = e
            .run(&format!("for $n in doc()//n where $n > {threshold} return $n"))
            .unwrap();
        let expected: Vec<String> = values
            .iter()
            .filter(|&&v| v > threshold)
            .map(|v| v.to_string())
            .collect();
        prop_assert_eq!(e.strings(&filtered), expected);
    }

    /// A two-variable equality self-join equals the quadratic spec,
    /// exercising the value-index join path.
    #[test]
    fn eq_join_matches_nested_loops(values in proptest::collection::vec(0i32..8, 0..10)) {
        let d = numbers_doc(&values);
        let e = Engine::new(d.clone());
        let joined = e
            .run("for $a in doc()//n, $b in doc()//n where $a = $b return ($a, $b)")
            .unwrap();
        let mut expected = 0usize;
        for x in &values {
            for y in &values {
                if x == y {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(joined.len(), expected * 2); // ($a, $b) per match
    }

    /// Quantifiers agree with iterator semantics.
    #[test]
    fn quantifiers_match_iterators(values in proptest::collection::vec(-20i32..20, 0..12)) {
        let d = numbers_doc(&values);
        let e = Engine::new(d.clone());
        let truth = |q: &str| -> bool {
            let out = e.run(q).unwrap();
            e.item_string(&out[0]) == "true"
        };
        prop_assert_eq!(
            truth("some $n in doc()//n satisfies $n > 0"),
            values.iter().any(|&v| v > 0)
        );
        prop_assert_eq!(
            truth("every $n in doc()//n satisfies $n > 0"),
            values.iter().all(|&v| v > 0)
        );
    }
}
