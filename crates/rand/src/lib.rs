//! A vendored, dependency-free stand-in for the subset of the `rand`
//! crate API this workspace uses (`StdRng`, `SeedableRng`, `Rng` with
//! `gen`/`gen_range`/`gen_bool`).
//!
//! The build environment has no network access to crates.io, so the
//! real `rand` cannot be fetched; this crate keeps the public call
//! sites source-compatible. The generator is splitmix64 — deterministic
//! per seed, which is all the user-study simulation and the tests rely
//! on (they assert invariants, not exact streams).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a type with a standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator (splitmix64 under the hood —
    /// not the real `rand` StdRng stream, but the workspace only relies
    /// on per-seed determinism).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so that small seeds don't start with
            // near-zero outputs.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            StdRng { state: rng.state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(2.5..5.5);
            assert!((2.5..5.5).contains(&x));
            let n: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&n));
            let m: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
