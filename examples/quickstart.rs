//! Quickstart: load the paper's Figure 1 movies database and ask it
//! questions in English.
//!
//! ```console
//! $ cargo run --example quickstart
//! ```

use nalix_repro::nalix::{Nalix, Outcome};
use nalix_repro::xmldb::datasets::movies::movies;
use nalix_repro::xquery::pretty::pretty;

fn main() {
    let doc = movies();
    println!("Database: the movies collection of the paper's Figure 1\n");
    println!("{}", doc.to_xml(doc.root()));

    let nalix = Nalix::new(doc.clone());
    let questions = [
        "Find all the movies directed by Ron Howard.",
        "Return the director of the movie, where the title of the movie is \"Traffic\".",
        "Return the total number of movies, where the director of each movie is Ron Howard.",
        "Return every director, where the number of movies directed by the director \
         is the same as the number of movies directed by Ron Howard.",
    ];

    for q in questions {
        println!("──────────────────────────────────────────────────");
        println!("Q: {q}\n");
        match nalix.query(q) {
            Outcome::Translated(t) => {
                println!(
                    "translated to Schema-Free XQuery:\n{}\n",
                    pretty(&t.translation.query)
                );
                for w in &t.warnings {
                    println!("  {w}");
                }
                let results = nalix.execute(&t).expect("evaluation");
                let values = nalix.flatten_values(&results);
                println!("answers ({}):", values.len());
                for v in values {
                    println!("  • {v}");
                }
            }
            Outcome::Rejected(r) => {
                println!("rejected:");
                for e in &r.errors {
                    println!("  {e}");
                }
            }
        }
        println!();
    }
}
