//! The nine XMP-derived search tasks against the DBLP-shaped corpus:
//! NaLIX vs. the Meet-based keyword-search baseline, with per-task
//! precision and recall — a single-user dry run of the paper's study.
//!
//! ```console
//! $ cargo run --release --example bibliography_search
//! ```

use nalix_repro::keyword::KeywordEngine;
use nalix_repro::nalix::{Nalix, Outcome};
use nalix_repro::userstudy::metrics::precision_recall;
use nalix_repro::userstudy::phrasings::{keyword_pool, nl_pool, PoolKind};
use nalix_repro::userstudy::tasks::ALL_TASKS;
use nalix_repro::xmldb::datasets::dblp::{generate, DblpConfig};

fn main() {
    let doc = generate(&DblpConfig::default());
    println!(
        "Corpus: DBLP-shaped, {} nodes ({} books, {} articles)\n",
        doc.stats().total_nodes(),
        doc.nodes_labeled("book").len(),
        doc.nodes_labeled("article").len()
    );
    let nalix = Nalix::new(doc.clone());
    let kw = KeywordEngine::new(&doc);

    println!(
        "{:<5} {:>9} {:>9}   {:>9} {:>9}   task",
        "", "NaLIX P", "NaLIX R", "kw P", "kw R"
    );
    for tid in ALL_TASKS {
        let task = tid.task();
        let gold = task.gold(&doc);

        // NaLIX: the first Good phrasing from the study pool.
        let phrasing = nl_pool(tid)
            .into_iter()
            .find(|p| p.kind == PoolKind::Good)
            .expect("every task has a good phrasing");
        let nalix_score = match nalix.query(phrasing.text) {
            Outcome::Translated(t) => {
                let seq = nalix.execute(&t).expect("evaluation");
                precision_recall(&nalix.flatten_values(&seq), &gold)
            }
            Outcome::Rejected(r) => {
                eprintln!("{}: rejected: {:?}", tid.label(), r.errors);
                continue;
            }
        };

        // Keyword search: the first pool query.
        let kq = keyword_pool(tid)[0];
        let hits = kw.search(kq);
        let kw_score = precision_recall(&kw.answer_values(&hits), &gold);

        println!(
            "{:<5} {:>8.1}% {:>8.1}%   {:>8.1}% {:>8.1}%   {}",
            tid.label(),
            100.0 * nalix_score.precision,
            100.0 * nalix_score.recall,
            100.0 * kw_score.precision,
            100.0 * kw_score.recall,
            task.description
        );
    }

    println!(
        "\n(NL phrasings and keyword queries come from the user-study pools;\n\
         run `cargo run --release -p bench --bin fig12` for the full 18-participant study.)"
    );
}
