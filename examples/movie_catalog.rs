//! The paper's worked example, end to end: Queries 1–3 of Figure 1.
//!
//! Demonstrates the interactive reformulation loop (Query 1 is rejected
//! with a suggestion, exactly as in the paper's Figure 10), the
//! classified parse tree, and the full Figure 9 translation of Query 2.
//!
//! ```console
//! $ cargo run --example movie_catalog
//! ```

use nalix_repro::nalix::{Nalix, Outcome};
use nalix_repro::xmldb::datasets::movies::movies_and_books;
use nalix_repro::xquery::pretty::pretty;

fn main() {
    let doc = movies_and_books();
    let nalix = Nalix::new(doc.clone());

    println!("═══ Query 1 (invalid, paper Fig. 10) ═══");
    let q1 = "Return every director who has directed as many movies as has Ron Howard.";
    println!("Q: {q1}\n");
    match nalix.query(q1) {
        Outcome::Rejected(r) => {
            for e in &r.errors {
                println!("{e}");
            }
        }
        Outcome::Translated(_) => unreachable!("Query 1 must be rejected"),
    }

    println!("\n═══ Query 2 (the suggested rephrasing, paper Figs. 2, 8, 9) ═══");
    let q2 = "Return every director, where the number of movies directed by the \
              director is the same as the number of movies directed by Ron Howard.";
    println!("Q: {q2}\n");
    match nalix.query(q2) {
        Outcome::Translated(t) => {
            println!(
                "classified parse tree (compare with the paper's Figure 2):\n{}",
                t.tree.outline()
            );
            println!(
                "variable bindings (compare with the paper's Table 3):\n{}",
                nalix_repro::nalix::explain::explain(&t.tree).render()
            );
            println!(
                "translation (compare with the paper's Figure 9):\n{}\n",
                pretty(&t.translation.query)
            );
            let out = nalix.execute(&t).expect("evaluation");
            let mut answers = nalix.flatten_values(&out);
            answers.sort();
            answers.dedup();
            println!("answers: {answers:?}");
        }
        Outcome::Rejected(r) => {
            for e in &r.errors {
                eprintln!("{e}");
            }
        }
    }

    println!("\n═══ Query 3 (value join, paper Fig. 3) ═══");
    let q3 = "Return the directors of movies, where the title of each movie is \
              the same as the title of a book.";
    println!("Q: {q3}\n");
    match nalix.query(q3) {
        Outcome::Translated(t) => {
            println!("translation:\n{}\n", pretty(&t.translation.query));
            let out = nalix.execute(&t).expect("evaluation");
            let mut answers = nalix.flatten_values(&out);
            answers.sort();
            answers.dedup();
            println!("answers: {answers:?}");
            println!("(only \"Traffic\" is both a movie and a book title in this data)");
        }
        Outcome::Rejected(r) => {
            for e in &r.errors {
                eprintln!("{e}");
            }
        }
    }
}
