//! A tour of the observability layer over the embedded `bib.xml`
//! sample: run a small batch of questions (some repeated, to show the
//! translation cache at work), then print the per-stage metrics report
//! described in `docs/OBSERVABILITY.md`.
//!
//! ```console
//! $ cargo run --example metrics_report
//! ```

use nalix_repro::nalix::Nalix;
use nalix_repro::xmldb::datasets::bib::bib;

fn main() {
    let doc = bib();
    let nalix = Nalix::new(doc.clone());

    // A mixed batch: six distinct questions, three of them asked twice,
    // plus one that the pipeline rejects. Repeats hit the translation
    // cache and skip parse → translate entirely; the rejection shows up
    // in the query-outcome line rather than as a success.
    let questions = [
        "Return the title of every book.",
        "Return the title of every book published by Addison-Wesley after 1991.",
        "Return the lowest price for each book.",
        "Return the title of every book.",
        "Return the affiliation of the editor of every book.",
        "Return the number of authors of each book.",
        "Return the title of every book published by Addison-Wesley after 1991.",
        "Return the price of every book, sorted by price.",
        "Return the lowest price for each book.",
        "Frobnicate the zzyzx of every book.",
    ];

    for q in questions {
        match nalix.ask(q) {
            Ok(values) => println!("{q}\n  → {} value(s)", values.len()),
            Err(rejected) => println!("{q}\n  → rejected ({} error(s))", rejected.errors.len()),
        }
    }

    // The report: per-stage span counts and latency quantiles, query
    // outcomes, cache hit rate, and the deeper engine counters.
    println!("\n{}", nalix.metrics());
}
