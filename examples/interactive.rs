//! An interactive natural-language query shell.
//!
//! Loads an XML file (or the built-in movies database when no path is
//! given) and answers English queries, showing the translated
//! Schema-Free XQuery, warnings, and the interactive error feedback the
//! paper describes in Sec. 4.
//!
//! ```console
//! $ cargo run --example interactive [path/to/file.xml]
//! > Return the director of the movie, where the title of the movie is "Traffic".
//! ```
//!
//! Commands: `:labels` lists element names, `:xml` dumps the document,
//! `:metrics` prints the session's pipeline metrics snapshot,
//! `:backend [xquery|sql]` shows or switches the translation backend
//! (docs/BACKENDS.md), `:explain <question>` compiles a question and
//! prints the active backend's query text without evaluating it,
//! `:update <edit-json>` applies a node-level edit batch (same JSON
//! shape as `POST /docs/:name/update`, see docs/UPDATES.md) and swaps
//! in the incrementally patched pipeline, `:quit` exits.
//!
//! ```console
//! > :update {"edits": [{"op": "insert_child", "parent": 0, "node": {"kind": "leaf", "label": "note", "text": "hello"}}]}
//! committed 1 edit(s) as Patch: +2 nodes, -0 nodes, 229 live
//! ```

use nalix_repro::nalix::backend::sql;
use nalix_repro::nalix::{BackendKind, Nalix, Outcome, Translated};
use nalix_repro::store::load_dataset;
use nalix_repro::xmldb::{Document, Edit, NewNode};
use nalix_repro::xquery::pretty::pretty;
use server::json::Json;
use std::io::{BufRead, Write};
use std::sync::Arc;

fn main() {
    let source = match std::env::args().nth(1) {
        Some(source) => source,
        None => {
            println!("(no source given — using the built-in movies+books database)");
            "movies".to_string()
        }
    };
    let mut doc = Arc::new(load_dataset(&source).unwrap_or_else(|e| {
        eprintln!("interactive: {e}");
        std::process::exit(1);
    }));
    println!(
        "Loaded {} nodes; element names: {}",
        doc.len(),
        doc.labels().join(", ")
    );
    println!(
        "Type an English query, or :labels / :xml / :metrics / :backend / :explain / :update / :quit.\n"
    );

    let mut nalix = Nalix::new(Arc::clone(&doc));
    let stdin = std::io::stdin();
    loop {
        print!("> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            ":quit" | ":q" => break,
            ":labels" => {
                println!("{}", doc.labels().join(", "));
                continue;
            }
            ":xml" => {
                println!("{}", doc.to_xml(doc.root()));
                continue;
            }
            ":metrics" => {
                println!("{}", nalix.metrics());
                continue;
            }
            _ => {}
        }
        if let Some(rest) = line.strip_prefix(":backend") {
            let rest = rest.trim();
            if rest.is_empty() {
                println!("active backend: {}", nalix.backend());
            } else {
                match BackendKind::parse(rest) {
                    Some(k) => {
                        nalix = nalix.with_backend(k);
                        println!("backend set to {k}");
                    }
                    None => println!("unknown backend {rest:?}; expected xquery or sql"),
                }
            }
            println!();
            continue;
        }
        if let Some(q) = line.strip_prefix(":explain") {
            let q = q.trim();
            if q.is_empty() {
                println!("usage: :explain <question>");
            } else {
                match nalix.query(q) {
                    Outcome::Translated(t) => match compiled_text(&nalix, &t) {
                        Ok((lang, text)) => println!("{lang}:\n{text}"),
                        Err(e) => println!("sql lowering error: {e}"),
                    },
                    Outcome::Rejected(r) => {
                        for e in &r.errors {
                            println!("{e}");
                        }
                    }
                }
            }
            println!();
            continue;
        }
        if let Some(body) = line.strip_prefix(":update") {
            match apply_update(&doc, body.trim()) {
                Ok((next, stats)) => {
                    let next = Arc::new(next);
                    // The patched pipeline, exactly as the store's
                    // write path builds it (docs/UPDATES.md).
                    nalix = Nalix::successor(&nalix, Arc::clone(&next), &stats);
                    doc = next;
                    println!(
                        "committed {} edit(s) as {:?}: +{} nodes, -{} nodes, {} live",
                        stats.edits,
                        stats.strategy,
                        stats.inserted,
                        stats.deleted,
                        doc.len(),
                    );
                }
                Err(e) => println!("update error: {e}"),
            }
            println!();
            continue;
        }
        match nalix.query(line) {
            Outcome::Translated(t) => {
                for w in &t.warnings {
                    println!("{w}");
                }
                match compiled_text(&nalix, &t) {
                    Ok((lang, text)) => println!("{lang}:\n{text}"),
                    Err(e) => {
                        println!("sql lowering error: {e}");
                        println!();
                        continue;
                    }
                }
                match nalix.backend() {
                    BackendKind::Xquery => match nalix.execute(&t) {
                        Ok(seq) => print_values(&nalix.flatten_values(&seq)),
                        Err(e) => println!("evaluation error: {e}"),
                    },
                    BackendKind::Sql => match nalix.answer(line) {
                        Ok(values) => print_values(&values),
                        Err(e) => println!("evaluation error: {e}"),
                    },
                }
            }
            Outcome::Rejected(r) => {
                for e in &r.errors {
                    println!("{e}");
                }
                for w in &r.warnings {
                    println!("{w}");
                }
            }
        }
        println!();
    }
}

/// The active backend's compiled query text for a translated question
/// (what `:explain` prints): the language tag and the pretty-printed
/// query in that language.
fn compiled_text(nalix: &Nalix, t: &Translated) -> Result<(&'static str, String), String> {
    match nalix.backend() {
        BackendKind::Xquery => Ok(("XQuery", pretty(&t.translation.query))),
        BackendKind::Sql => match sql::lower(&t.translation) {
            Ok(q) => Ok(("SQL", nalix_repro::sqlq::pretty(&q))),
            Err(e) => Err(e.message),
        },
    }
}

fn print_values(values: &[String]) {
    println!("── {} value(s):", values.len());
    for v in values.iter().take(50) {
        println!("  • {v}");
    }
    if values.len() > 50 {
        println!("  … and {} more", values.len() - 50);
    }
}

/// Parses a `{"edits": [...]}` batch (the `POST /docs/:name/update`
/// wire shape, docs/UPDATES.md) and applies it to `doc`, returning
/// the committed successor. The batch is atomic: any bad edit aborts
/// before commit.
fn apply_update(
    doc: &Arc<Document>,
    body: &str,
) -> Result<(Document, nalix_repro::xmldb::UpdateStats), String> {
    if body.is_empty() {
        return Err("usage: :update {\"edits\": [...]} (see docs/UPDATES.md)".to_string());
    }
    let json = Json::parse(body).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let edits = json
        .get("edits")
        .and_then(Json::as_array)
        .ok_or("missing \"edits\" array")?;
    if edits.is_empty() {
        return Err("\"edits\" is empty".to_string());
    }
    let mut up = doc.begin_update().map_err(|e| e.to_string())?;
    for (i, spec) in edits.iter().enumerate() {
        let edit = parse_edit(doc, spec).map_err(|e| format!("edit #{i}: {e}"))?;
        up.apply(&edit).map_err(|e| format!("edit #{i}: {e}"))?;
    }
    Ok(up.commit())
}

/// One edit object: `"op"` picks the shape, node positions are
/// pre-order ranks resolved against the current snapshot.
fn parse_edit(doc: &Document, spec: &Json) -> Result<Edit, String> {
    let op = spec
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing \"op\"")?;
    let node_at = |key: &str| {
        let pre = spec
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing numeric \"{key}\""))?;
        let pre = u32::try_from(pre).map_err(|_| format!("\"{key}\" out of range"))?;
        doc.node_at_pre(pre)
            .ok_or_else(|| format!("no node at pre rank {pre}"))
    };
    let string = |key: &str| {
        spec.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string \"{key}\""))
    };
    match op {
        "insert_child" => Ok(Edit::InsertChild {
            parent: node_at("parent")?,
            node: parse_node(spec)?,
        }),
        "insert_sibling" => Ok(Edit::InsertSibling {
            after: node_at("after")?,
            node: parse_node(spec)?,
        }),
        "delete_subtree" => Ok(Edit::DeleteSubtree {
            target: node_at("target")?,
        }),
        "replace_value" => Ok(Edit::ReplaceValue {
            target: node_at("target")?,
            value: string("value")?,
        }),
        "rename_label" => Ok(Edit::RenameLabel {
            target: node_at("target")?,
            label: string("label")?,
        }),
        other => Err(format!("unknown op {other:?}")),
    }
}

fn parse_node(spec: &Json) -> Result<NewNode, String> {
    let node = spec.get("node").ok_or("missing \"node\" object")?;
    let kind = node
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("node: missing \"kind\"")?;
    let field = |key: &str| {
        node.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("node: missing string \"{key}\""))
    };
    match kind {
        "element" => Ok(NewNode::Element {
            label: field("label")?,
        }),
        "leaf" => Ok(NewNode::Leaf {
            label: field("label")?,
            text: field("text")?,
        }),
        "text" => Ok(NewNode::Text {
            text: field("text")?,
        }),
        "attribute" => Ok(NewNode::Attribute {
            name: field("name")?,
            value: field("value")?,
        }),
        other => Err(format!("node: unknown kind {other:?}")),
    }
}
