//! An interactive natural-language query shell.
//!
//! Loads an XML file (or the built-in movies database when no path is
//! given) and answers English queries, showing the translated
//! Schema-Free XQuery, warnings, and the interactive error feedback the
//! paper describes in Sec. 4.
//!
//! ```console
//! $ cargo run --example interactive [path/to/file.xml]
//! > Return the director of the movie, where the title of the movie is "Traffic".
//! ```
//!
//! Commands: `:labels` lists element names, `:xml` dumps the document,
//! `:metrics` prints the session's pipeline metrics snapshot, `:quit`
//! exits.

use nalix_repro::nalix::{Nalix, Outcome};
use nalix_repro::store::load_dataset;
use nalix_repro::xquery::pretty::pretty;
use std::io::{BufRead, Write};

fn main() {
    let source = match std::env::args().nth(1) {
        Some(source) => source,
        None => {
            println!("(no source given — using the built-in movies+books database)");
            "movies".to_string()
        }
    };
    let doc = load_dataset(&source).unwrap_or_else(|e| {
        eprintln!("interactive: {e}");
        std::process::exit(1);
    });
    println!(
        "Loaded {} nodes; element names: {}",
        doc.len(),
        doc.labels().join(", ")
    );
    println!("Type an English query, or :labels / :xml / :metrics / :quit.\n");

    let nalix = Nalix::new(doc.clone());
    let stdin = std::io::stdin();
    loop {
        print!("> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            ":quit" | ":q" => break,
            ":labels" => {
                println!("{}", doc.labels().join(", "));
                continue;
            }
            ":xml" => {
                println!("{}", doc.to_xml(doc.root()));
                continue;
            }
            ":metrics" => {
                println!("{}", nalix.metrics());
                continue;
            }
            _ => {}
        }
        match nalix.query(line) {
            Outcome::Translated(t) => {
                for w in &t.warnings {
                    println!("{w}");
                }
                println!("XQuery:\n{}", pretty(&t.translation.query));
                match nalix.execute(&t) {
                    Ok(seq) => {
                        let values = nalix.flatten_values(&seq);
                        println!("── {} value(s):", values.len());
                        for v in values.iter().take(50) {
                            println!("  • {v}");
                        }
                        if values.len() > 50 {
                            println!("  … and {} more", values.len() - 50);
                        }
                    }
                    Err(e) => println!("evaluation error: {e}"),
                }
            }
            Outcome::Rejected(r) => {
                for e in &r.errors {
                    println!("{e}");
                }
                for w in &r.warnings {
                    println!("{w}");
                }
            }
        }
        println!();
    }
}
