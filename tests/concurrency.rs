//! Thread-safety guarantees of the query path.
//!
//! The whole pipeline shares one `Nalix` (document + catalog + engine +
//! caches) across threads; these tests pin down both the compile-time
//! contract (`Send + Sync`) and the runtime one (parallel evaluation is
//! observationally identical to serial evaluation).

use nalix_repro::nalix::{BatchReply, BatchRunner, Nalix, Rejected};
use nalix_repro::xmldb::datasets::dblp::{generate, DblpConfig};
use nalix_repro::xmldb::Document;
use nalix_repro::xquery::Engine;

/// Compile-time assertion: the shared core is `Send + Sync`.
#[test]
fn query_path_types_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Document>();
    assert_send_sync::<Engine>();
    assert_send_sync::<Nalix>();
    assert_send_sync::<BatchRunner>();
}

fn render(reply: &BatchReply) -> String {
    fn errs(r: &Rejected) -> String {
        r.errors
            .iter()
            .map(|f| f.message())
            .collect::<Vec<_>>()
            .join("|")
    }
    match reply {
        Ok(v) => format!("ok:{}", v.join("|")),
        Err(r) => format!("rejected:{}", errs(r)),
    }
}

/// Eight threads sharing one engine produce, query for query, exactly
/// the replies a serial loop produces — including rejections and the
/// deliberately unparseable sentence.
#[test]
fn eight_thread_batch_is_identical_to_serial() {
    let doc = generate(&DblpConfig {
        books: 30,
        articles: 60,
        seed: 11,
    });
    let nalix = std::sync::Arc::new(Nalix::new(doc.clone()));

    let mut questions: Vec<&str> = vec![
        "Return the title and the authors of every book.",
        "Return the year and title of every book published by Addison-Wesley after 1991.",
        "Return the titles of books, where the author of the book contains \"Suciu\".",
        "Return the title of every book and the lowest year of the title.",
        "Return the title of every book, sorted by title.",
        "Find all titles that contain \"XML\".",
        "Return every director who has directed as many movies as has Ron Howard.",
        "The weather is nice today.",
    ];
    // Duplicate the batch so the translation cache sees hits mid-run.
    let dup = questions.clone();
    questions.extend(dup);

    let serial: Vec<String> = questions.iter().map(|q| render(&nalix.ask(q))).collect();

    for _round in 0..3 {
        let parallel = BatchRunner::new(nalix.clone(), 8).run(&questions);
        let parallel: Vec<String> = parallel.iter().map(render).collect();
        assert_eq!(parallel, serial);
    }

    let stats = nalix.cache_stats();
    assert!(stats.hits > 0, "repeated questions must hit the cache");
    assert_eq!(stats.entries, questions.len() / 2);
}

/// Raw engine sharing (below the NL layer): concurrent `run` calls on
/// one `Engine` agree with serial evaluation.
#[test]
fn shared_engine_concurrent_queries_match_serial() {
    let doc = generate(&DblpConfig {
        books: 20,
        articles: 40,
        seed: 3,
    });
    let engine = Engine::new(doc.clone());
    let queries = [
        "for $b in doc()//book return $b/title",
        "for $t in doc()//title, $a in doc()//author where mqf($t,$a) and contains($a, \"a\") return $t",
        "for $b in doc()//book where count($b/author) > 1 return $b/title",
    ];
    let serial: Vec<Vec<String>> = queries
        .iter()
        .map(|q| engine.strings(&engine.run(q).unwrap()))
        .collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let engine = &engine;
                let serial = &serial;
                s.spawn(move || {
                    let q = queries[i % queries.len()];
                    let got = engine.strings(&engine.run(q).unwrap());
                    assert_eq!(&got, &serial[i % queries.len()]);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}
