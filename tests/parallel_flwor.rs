//! Intra-query parallelism equivalence: a FLWOR evaluated with worker
//! shards must return results *byte-identical* to the serial
//! evaluation — same items, same order — because shards process
//! contiguous chunks of the tuple stream and are stitched back in
//! chunk order. Exercised over every golden XQuery snapshot and the
//! nine XMP bib questions, plus budget semantics: the shared tuple
//! ledger makes `max_tuples` and the deadline *global* caps that trip
//! with typed errors no matter how many shards are running.

use nalix_repro::nalix::{Nalix, Outcome};
use nalix_repro::xmldb::datasets::bib::bib;
use nalix_repro::xmldb::datasets::dblp::{generate, DblpConfig};
use nalix_repro::xquery::{Engine, EvalBudget, EvalError, ExhaustedResource};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn corpus() -> nalix_repro::xmldb::Document {
    generate(&DblpConfig {
        books: 40,
        articles: 80,
        seed: 7,
    })
}

/// Evaluate `query` serially and with an explicit shard count, and
/// assert the sequences are identical (items *and* order). The
/// comparison also goes through the rendered string values so a
/// regression shows up as a readable diff, not an opaque `Item` dump.
fn assert_serial_equals_sharded(engine: &Engine, label: &str, query: &str, shards: usize) {
    let serial = engine
        .run_with_budget(query, &EvalBudget::default().with_shards(1))
        .unwrap_or_else(|e| panic!("{label}: serial evaluation failed: {e}"));
    let sharded = engine
        .run_with_budget(query, &EvalBudget::default().with_shards(shards))
        .unwrap_or_else(|e| panic!("{label}: {shards}-shard evaluation failed: {e}"));
    assert_eq!(
        engine.strings(&serial),
        engine.strings(&sharded),
        "{label}: rendered values diverge at {shards} shards"
    );
    assert_eq!(
        serial, sharded,
        "{label}: item sequences diverge at {shards} shards"
    );
}

#[test]
fn golden_snapshots_evaluate_identically_under_sharding() {
    let engine = Engine::new(Arc::new(corpus()));
    let mut seen = 0;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(golden_dir())
        .expect("golden dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "xq"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("golden file readable");
        let label = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("<golden>")
            .to_owned();
        // The parser treats the leading `(: … :)` banner as a comment,
        // so the snapshot text runs verbatim.
        for shards in [2, 3, 4] {
            assert_serial_equals_sharded(&engine, &label, &text, shards);
        }
        seen += 1;
    }
    assert!(seen >= 9, "expected all golden snapshots, found {seen}");
}

#[test]
fn xmp_bib_questions_evaluate_identically_under_sharding() {
    let doc = bib();
    let nalix = Nalix::new(doc.clone());
    let questions = [
        "Return the title of every book published by Addison-Wesley after 1991.",
        "Return the title of every book, where the price of the book is less than 50.",
        "Return the lowest price for each book.",
        "Return the title of the book with the lowest price.",
        "Return the affiliation of the editor of every book.",
        "Return the number of authors of each book.",
        "Return the price of every book, sorted by price.",
        "Return the company of each book.",
        "Return the title and the author of every book.",
    ];
    for q in questions {
        let t = match nalix.query(q) {
            Outcome::Translated(t) => t,
            Outcome::Rejected(r) => panic!("{q}: rejected: {:?}", r.errors),
        };
        let serial = nalix
            .execute_with_budget(&t, &EvalBudget::default().with_shards(1))
            .unwrap_or_else(|e| panic!("{q}: serial evaluation failed: {e}"));
        for shards in [2, 4] {
            let sharded = nalix
                .execute_with_budget(&t, &EvalBudget::default().with_shards(shards))
                .unwrap_or_else(|e| panic!("{q}: {shards}-shard evaluation failed: {e}"));
            assert_eq!(
                nalix.flatten_values(&serial),
                nalix.flatten_values(&sharded),
                "{q}: values diverge at {shards} shards"
            );
            assert_eq!(serial, sharded, "{q}: sequences diverge at {shards} shards");
        }
    }
}

/// A sharded cross-product still trips the global tuple cap with the
/// typed error: every shard charges the one shared ledger.
#[test]
fn sharded_query_trips_the_global_tuple_cap() {
    let engine = Engine::new(Arc::new(corpus()));
    // title × author × year is far beyond 10k tuples on this corpus.
    let q = "for $t in doc()//title, $a in doc()//author, $y in doc()//year return $t";
    for shards in [1, 4] {
        let tight = EvalBudget::default()
            .with_max_tuples(10_000)
            .with_shards(shards);
        match engine.run_with_budget(q, &tight) {
            Err(EvalError::ResourceExhausted { resource, .. }) => {
                assert_eq!(
                    resource,
                    ExhaustedResource::Tuples,
                    "shards={shards}: wrong resource"
                );
            }
            other => panic!("shards={shards}: expected tuple exhaustion, got {other:?}"),
        }
    }
}

/// The deadline is likewise global: shard guards all observe the same
/// start instant, so a zero time budget trips immediately even when
/// the work is spread across workers.
#[test]
fn sharded_query_trips_the_deadline() {
    let engine = Engine::new(Arc::new(corpus()));
    let q = "for $t in doc()//title, $a in doc()//author return $t";
    let tight = EvalBudget::default()
        .with_time_limit(Duration::ZERO)
        .with_shards(4);
    match engine.run_with_budget(q, &tight) {
        Err(EvalError::ResourceExhausted { resource, .. }) => {
            assert_eq!(resource, ExhaustedResource::Time);
        }
        other => panic!("expected time exhaustion, got {other:?}"),
    }
}

/// `shards: 0` (the default) auto-selects and must stay correct: the
/// tuple stream here is far below the auto-shard threshold, so this
/// pins the serial fallback; an explicit oversized count clamps to the
/// stream length rather than spawning idle workers.
#[test]
fn auto_and_oversized_shard_counts_stay_correct() {
    let engine = Engine::new(Arc::new(corpus()));
    let q = r#"for $b in doc()//book, $t in doc()//title where mqf($b, $t) return $t"#;
    let auto = engine
        .run_with_budget(q, &EvalBudget::default())
        .expect("auto shards");
    let over = engine
        .run_with_budget(q, &EvalBudget::default().with_shards(1_000_000))
        .expect("oversized shard count");
    assert_eq!(auto, over);
}
