//! Dual-backend answer-set equivalence: every user-study phrasing of
//! every XMP task, asked through both translation backends against the
//! same corpus, must produce equivalent answer sets (exact sequences
//! when the question orders its results, multisets otherwise — see
//! `nalix::AnswerSet::equivalent` and docs/BACKENDS.md).
//!
//! Both backends share the planner, so any divergence here is a
//! lowering or executor bug, never a linguistic one. Rejections must
//! agree too: a question one backend answers and the other refuses
//! would make the `backend` knob semantically load-bearing.

use nalix_repro::nalix::{BackendKind, Nalix};
use nalix_repro::userstudy::phrasings::{nl_pool, PoolKind};
use nalix_repro::userstudy::tasks::ALL_TASKS;
use nalix_repro::xmldb::datasets::dblp::{generate, DblpConfig};
use nalix_repro::xquery::EvalBudget;

#[test]
fn all_userstudy_phrasings_are_answer_set_equivalent() {
    let doc = generate(&DblpConfig {
        books: 40,
        articles: 80,
        seed: 7,
    });
    let nalix = Nalix::new(doc);
    let budget = EvalBudget::default();
    let mut compared = 0usize;
    let mut rejected = 0usize;
    let mut failures = Vec::new();

    for task in ALL_TASKS {
        for phrasing in nl_pool(task) {
            let q = phrasing.text;
            let sql = nalix.answer_set(BackendKind::Sql, q, &budget);
            let xq = nalix.answer_set(BackendKind::Xquery, q, &budget);
            match (xq, sql) {
                (Ok(a), Ok(b)) => {
                    compared += 1;
                    if !a.equivalent(&b) {
                        failures.push(format!(
                            "{}: {q:?}\n  xquery ({}): {:?}\n  sql    ({}): {:?}",
                            task.label(),
                            if a.ordered { "ordered" } else { "unordered" },
                            a.values,
                            if b.ordered { "ordered" } else { "unordered" },
                            b.values,
                        ));
                    }
                }
                (Err(ea), Err(eb)) => {
                    rejected += 1;
                    // Same stage-level refusal either way.
                    if ea.code() != eb.code() {
                        failures.push(format!(
                            "{}: {q:?} rejected differently: xquery={} sql={}",
                            task.label(),
                            ea.code(),
                            eb.code()
                        ));
                    }
                }
                (Ok(a), Err(e)) => failures.push(format!(
                    "{}: {q:?} answered by xquery ({} values) but refused by sql: {e}",
                    task.label(),
                    a.values.len()
                )),
                (Err(e), Ok(b)) => failures.push(format!(
                    "{}: {q:?} answered by sql ({} values) but refused by xquery: {e}",
                    task.label(),
                    b.values.len()
                )),
            }
            // Invalid-pool phrasings are rejection fixtures: both
            // backends must refuse them (checked above via Err/Err).
            if phrasing.kind == PoolKind::Invalid {
                assert!(
                    nalix.answer_set(BackendKind::Sql, q, &budget).is_err(),
                    "{}: invalid phrasing accepted: {q:?}",
                    task.label()
                );
            }
        }
    }

    assert!(
        failures.is_empty(),
        "{} of {} phrasings diverged:\n{}",
        failures.len(),
        compared + rejected,
        failures.join("\n\n")
    );
    assert!(
        compared >= ALL_TASKS.len(),
        "expected at least one answered phrasing per task, compared {compared}"
    );
    println!("compared {compared} answered phrasings, {rejected} agreed rejections");
}
