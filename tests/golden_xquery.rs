//! Golden-file tests: the Schema-Free XQuery that NaLIX produces for
//! the canonical phrasing of each of the nine XMP user-study tasks,
//! pretty-printed and snapshotted under `tests/golden/`.
//!
//! A translation change now shows up as a readable diff against the
//! checked-in query text instead of as a silent behaviour shift.
//! Regenerate deliberately with:
//!
//! ```console
//! $ UPDATE_GOLDEN=1 cargo test --test golden_xquery
//! ```

use nalix_repro::nalix::{Nalix, Outcome};
use nalix_repro::userstudy::phrasings::{nl_pool, PoolKind};
use nalix_repro::userstudy::tasks::ALL_TASKS;
use nalix_repro::xmldb::datasets::dblp::{generate, DblpConfig};
use nalix_repro::xquery;
use std::path::PathBuf;

fn golden_path(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{label}.xq"))
}

/// Small DBLP corpus — the catalog (and therefore validation) sees the
/// same labels as the paper-scale document, at a fraction of the build
/// time.
fn corpus() -> nalix_repro::xmldb::Document {
    generate(&DblpConfig {
        books: 40,
        articles: 80,
        seed: 7,
    })
}

#[test]
fn xmp_translations_match_golden_files() {
    let doc = corpus();
    let nalix = Nalix::new(doc.clone());
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();

    for task in ALL_TASKS {
        let label = task.label();
        let question = nl_pool(task)
            .into_iter()
            .find(|p| p.kind == PoolKind::Good)
            .expect("every task has an accepted phrasing")
            .text;
        let translated = match nalix.query(question) {
            Outcome::Translated(t) => t,
            Outcome::Rejected(r) => panic!(
                "{label}: canonical phrasing rejected: {question}\n{:?}",
                r.errors
            ),
        };
        // The snapshot leads with the question so diffs are self-describing.
        let got = format!(
            "(: {label}: {question} :)\n{}\n",
            xquery::pretty::pretty(&translated.translation.query)
        );

        // Whatever we snapshot must actually evaluate.
        nalix
            .execute(&translated)
            .unwrap_or_else(|e| panic!("{label}: golden query fails to evaluate: {e}"));

        let path = golden_path(label);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{label}: missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
                path.display()
            )
        });
        if got != want {
            failures.push(format!(
                "{label}: translation drifted from {}\n--- golden\n{want}\n--- current\n{got}",
                path.display()
            ));
        }
    }

    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

#[test]
fn golden_files_reparse() {
    // The snapshots are genuine XQuery: stripping the leading comment
    // line, each one round-trips through the parser.
    for task in ALL_TASKS {
        let label = task.label();
        let path = golden_path(label);
        let Ok(text) = std::fs::read_to_string(&path) else {
            // xmp_translations_match_golden_files reports missing files.
            continue;
        };
        let body: String = text
            .lines()
            .filter(|l| !l.starts_with("(:"))
            .collect::<Vec<_>>()
            .join("\n");
        xquery::parse(&body)
            .unwrap_or_else(|e| panic!("{label}: golden file does not re-parse: {e}"));
    }
}
