//! Known-answer accounting for the observability layer: the nine XMP
//! questions over the embedded `bib.xml` sample must produce exactly
//! the spans, query outcomes, and cache counts the pipeline structure
//! predicts — one span per stage per cache miss, none per hit, an eval
//! span per execution — and parallel/split runs must sum to the serial
//! totals.

use nalix_repro::nalix::{obs, BatchRunner, Nalix};
use nalix_repro::xmldb::datasets::bib::bib;
use std::sync::Arc;

/// Nine distinct questions that all translate and evaluate cleanly.
const QUESTIONS: [&str; 9] = [
    "Return the title of every book published by Addison-Wesley after 1991.",
    "Return the title of every book, where the price of the book is less than 50.",
    "Return the lowest price for each book.",
    "Return the title of the book with the lowest price.",
    "Return the affiliation of the editor of every book.",
    "Return the number of authors of each book.",
    "Return the price of every book, sorted by price.",
    "Return the company of each book.",
    "Return the title of every book.",
];

fn fresh_nalix(doc: &nalix_repro::xmldb::Document) -> Nalix {
    Nalix::with_metrics(doc.clone(), Arc::new(obs::MetricsRegistry::new()))
}

/// Deterministic counters for cross-run comparison. `ValueIndexBuilds`
/// is excluded: concurrent first touches may each build, so its count
/// is schedule-dependent. Global-only counters (tokenizer, parser,
/// structural axes) read as zero on instance registries either way.
fn comparable_counters(snap: &obs::MetricsSnapshot) -> Vec<(String, u64)> {
    obs::Counter::ALL
        .iter()
        .filter(|c| **c != obs::Counter::ValueIndexBuilds)
        .map(|c| (c.name().to_owned(), snap.counter(*c)))
        .collect()
}

#[test]
fn golden_run_accounts_every_stage_exactly_once() {
    let doc = bib();
    let nalix = fresh_nalix(&doc);

    for q in QUESTIONS {
        assert!(nalix.ask(q).is_ok(), "{q} should translate and evaluate");
    }
    let first = nalix.metrics();

    // One span per pipeline stage per cache miss, all successful.
    for stage in [
        obs::Stage::Parse,
        obs::Stage::Classify,
        obs::Stage::Validate,
        obs::Stage::Translate,
    ] {
        let s = first.stage(stage);
        assert_eq!(s.spans(), 9, "{} spans", stage.name());
        assert_eq!(s.ok(), 9, "{} ok", stage.name());
        assert_eq!(s.errors(), 0, "{} errors", stage.name());
    }
    assert_eq!(first.stage(obs::Stage::Eval).spans(), 9);
    assert_eq!(first.stage(obs::Stage::Eval).ok(), 9);

    // Exactly one query outcome per submission.
    assert_eq!(first.queries_total(), 9);
    assert_eq!(first.queries_with(obs::SpanOutcome::Ok), 9);
    assert_eq!(first.cache_hits, 0);
    assert_eq!(first.cache_misses, 9);
    assert_eq!(first.cache_entries, 9);

    // Histogram sanity: time was recorded and quantiles are ordered.
    let parse = &first.stage(obs::Stage::Parse).latency;
    assert_eq!(parse.count, 9);
    assert!(parse.sum_ns > 0);
    assert!(parse.quantile_ns(0.5) <= parse.quantile_ns(0.99));

    // Second pass: every question hits the cache — zero new
    // parse/classify/validate/translate spans, but execution still
    // runs, so eval spans double.
    for q in QUESTIONS {
        assert!(nalix.ask(q).is_ok());
    }
    let second = nalix.metrics();
    assert_eq!(second.stage(obs::Stage::Translate).spans(), 9);
    assert_eq!(second.stage(obs::Stage::Parse).spans(), 9);
    assert_eq!(second.stage(obs::Stage::Eval).spans(), 18);
    assert_eq!(second.queries_total(), 18);
    assert_eq!(second.queries_with(obs::SpanOutcome::CacheHit), 9);
    assert_eq!(second.cache_hits, 9);
    assert_eq!(second.cache_misses, 9);
    assert_eq!(second.cache_entries, 9);
}

#[test]
fn failed_queries_record_their_failure_class() {
    let doc = bib();
    let nalix = fresh_nalix(&doc);

    // An unknown term rejects in classification.
    let _ = nalix.query("Frobnicate the zzyzx of every book.");
    let snap = nalix.metrics();
    assert_eq!(snap.queries_total(), 1);
    assert_eq!(
        snap.queries_with(obs::SpanOutcome::Ok) + snap.queries_with(obs::SpanOutcome::CacheHit),
        0,
        "a rejected question must not count as successful"
    );
    // Whatever the precise class, it is an error outcome.
    let errors: u64 = obs::SpanOutcome::ALL
        .into_iter()
        .filter(|o| o.is_error())
        .map(|o| snap.queries_with(o))
        .sum();
    assert_eq!(errors, 1);
}

#[test]
fn parallel_batch_totals_equal_serial_totals() {
    let doc = bib();

    let serial_nalix = Arc::new(fresh_nalix(&doc));
    let serial_runner = BatchRunner::new(serial_nalix.clone(), 1);
    let serial_replies = serial_runner.run(&QUESTIONS);
    let serial = serial_nalix.metrics();

    let par_nalix = Arc::new(fresh_nalix(&doc));
    let par_runner = BatchRunner::new(par_nalix.clone(), 8);
    let par_replies = par_runner.run(&QUESTIONS);
    let par = par_nalix.metrics();

    assert_eq!(serial_replies.len(), par_replies.len());
    for stage in obs::Stage::ALL {
        let (s, p) = (serial.stage(stage), par.stage(stage));
        assert_eq!(s.outcomes, p.outcomes, "{} outcomes", stage.name());
        assert_eq!(
            s.latency.count,
            p.latency.count,
            "{} latency count",
            stage.name()
        );
    }
    for outcome in obs::SpanOutcome::ALL {
        assert_eq!(serial.queries_with(outcome), par.queries_with(outcome));
    }
    assert_eq!(
        (serial.cache_hits, serial.cache_misses, serial.cache_entries),
        (par.cache_hits, par.cache_misses, par.cache_entries)
    );
    assert_eq!(comparable_counters(&serial), comparable_counters(&par));
}

#[test]
fn snapshot_merge_across_instances_equals_single_instance() {
    let doc = bib();

    let whole = fresh_nalix(&doc);
    for q in QUESTIONS {
        let _ = whole.ask(q);
    }
    let expected = whole.metrics();

    let left = fresh_nalix(&doc);
    let right = fresh_nalix(&doc);
    for q in &QUESTIONS[..4] {
        let _ = left.ask(q);
    }
    for q in &QUESTIONS[4..] {
        let _ = right.ask(q);
    }
    let mut merged = left.metrics();
    merged.merge(&right.metrics());

    for stage in obs::Stage::ALL {
        assert_eq!(
            merged.stage(stage).outcomes,
            expected.stage(stage).outcomes,
            "{} outcomes",
            stage.name()
        );
        assert_eq!(
            merged.stage(stage).latency.count,
            expected.stage(stage).latency.count
        );
    }
    assert_eq!(merged.queries_total(), expected.queries_total());
    assert_eq!(
        (merged.cache_hits, merged.cache_misses, merged.cache_entries),
        (
            expected.cache_hits,
            expected.cache_misses,
            expected.cache_entries
        )
    );
    assert_eq!(comparable_counters(&merged), comparable_counters(&expected));
}

#[test]
fn disabled_registry_records_nothing_but_answers_stay_correct() {
    let doc = bib();

    let reference = fresh_nalix(&doc);
    let expected: Vec<Vec<String>> = QUESTIONS
        .iter()
        .map(|q| reference.ask(q).expect(q))
        .collect();

    let registry = Arc::new(obs::MetricsRegistry::new());
    registry.set_enabled(false);
    let nalix = Nalix::with_metrics(doc.clone(), Arc::clone(&registry));
    let got: Vec<Vec<String>> = QUESTIONS.iter().map(|q| nalix.ask(q).expect(q)).collect();

    assert_eq!(expected, got, "disabling metrics must not change answers");
    assert_eq!(
        registry.snapshot(),
        obs::MetricsSnapshot::new(),
        "a disabled registry must record nothing"
    );
}
