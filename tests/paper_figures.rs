//! Golden tests against the paper's published artifacts: the parse
//! trees of Figures 2, 3 and 10, the variable bindings of Table 3, the
//! translation of Figure 9, and the worked behaviour claims of
//! Sec. 3.2.3.

use nalix_repro::nalix::{
    binding::bind, catalog::Catalog, classify::classify, validate::validate, Nalix, Outcome,
};
use nalix_repro::nlparser;
use nalix_repro::xmldb::datasets::movies::{movies, movies_and_books};
use nalix_repro::xquery::pretty::pretty;

const QUERY1: &str = "Return every director who has directed as many movies as has Ron Howard.";
const QUERY2: &str = "Return every director, where the number of movies directed by the \
                      director is the same as the number of movies directed by Ron Howard.";
const QUERY3: &str = "Return the directors of movies, where the title of each movie is the \
                      same as the title of a book.";

/// Figure 2: the classified parse tree of Query 2.
#[test]
fn figure2_classified_tree() {
    let doc = movies();
    let catalog = Catalog::build(&doc);
    let v = validate(classify(&nlparser::parse(QUERY2).unwrap()), &catalog);
    assert!(v.is_valid(), "{:?}", v.feedback);
    let outline = v.tree.outline();
    // Structure asserted line-wise: CMT root, QT under director, OT with
    // two FT children, CM chains, implicit NT above "Ron Howard".
    assert!(outline.starts_with("Return [CMT]"), "{outline}");
    assert!(outline.contains("every [QT]"), "{outline}");
    assert!(outline.contains("is the same as [OT:=]"), "{outline}");
    assert_eq!(outline.matches("the number of [FT:count]").count(), 2);
    assert_eq!(outline.matches("directed [CM]").count(), 2);
    assert!(outline.contains("[director] [NT(implicit)]"), "{outline}");
    assert!(outline.contains("Ron Howard [VT]"), "{outline}");
}

/// Figure 10: Query 1 has unclassifiable "as" nodes, and the feedback
/// suggests "the same as".
#[test]
fn figure10_query1_rejected_with_suggestion() {
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    match nalix.query(QUERY1) {
        Outcome::Rejected(r) => {
            let m = r
                .errors
                .iter()
                .map(|e| e.message())
                .collect::<Vec<_>>()
                .join("\n");
            assert!(m.contains("\"as\""), "{m}");
            assert!(m.contains("the same as"), "{m}");
        }
        Outcome::Translated(_) => panic!("Query 1 must be rejected"),
    }
}

/// Table 3: the variable bindings of Query 2 — four variables; the
/// explicit director pair shares one core-token variable; both director
/// variables are cores (the paper's `$v*` mark).
#[test]
fn table3_variable_bindings() {
    let doc = movies();
    let catalog = Catalog::build(&doc);
    let v = validate(classify(&nlparser::parse(QUERY2).unwrap()), &catalog);
    assert!(v.is_valid());
    let b = bind(&v.tree);
    assert_eq!(b.vars.len(), 4, "{:?}", b.vars);
    let directors: Vec<_> = b.vars.iter().filter(|v| v.display == "director").collect();
    let movies_: Vec<_> = b.vars.iter().filter(|v| v.display == "movie").collect();
    assert_eq!(directors.len(), 2);
    assert_eq!(movies_.len(), 2);
    assert!(directors.iter().all(|v| v.core), "directors are $v*");
    assert!(movies_.iter().all(|v| !v.core));
    // $v1 binds NT nodes 2 and 7 of the paper's numbering — i.e. two
    // nodes; $v4 binds the single implicit NT.
    let explicit = directors.iter().find(|v| !v.implicit).unwrap();
    assert_eq!(explicit.nodes.len(), 2);
    let implicit = directors.iter().find(|v| v.implicit).unwrap();
    assert_eq!(implicit.nodes.len(), 1);
    // Table 3's "Related To": each movie variable is related to one
    // director variable (groups of two).
    assert_eq!(b.groups.len(), 2);
    assert!(b.groups.iter().all(|g| g.len() == 2));
}

/// Figure 9: the full translation of Query 2 — two outer director
/// variables, two aggregate lets each containing a movie/director pair
/// with an mqf clause and a value join, a count comparison and the
/// constant predicate, returning the first director.
#[test]
fn figure9_translation_shape_and_answer() {
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    let t = match nalix.query(QUERY2) {
        Outcome::Translated(t) => t,
        Outcome::Rejected(r) => panic!("{:?}", r.errors),
    };
    let text = pretty(&t.translation.query);

    let expected = "\
for $v1 in doc()//director, $v4 in doc()//director
let $vars1 := {
  for $v2 in doc()//movie, $v5 in doc()//director
  where mqf($v2,$v5) and $v5 = $v1
  return $v2
}
let $vars2 := {
  for $v3 in doc()//movie, $v6 in doc()//director
  where mqf($v3,$v6) and $v6 = $v4
  return $v3
}
where count($vars1) = count($vars2) and $v4 = \"Ron Howard\"
return $v1";
    assert_eq!(text.trim(), expected.trim());

    let out = nalix.execute(&t).unwrap();
    let mut names = nalix.flatten_values(&out);
    names.sort();
    names.dedup();
    assert_eq!(names, vec!["Ron Howard", "Steven Soderbergh"]);
}

/// Figure 3 / Sec. 3.2.1: Query 3's related sets are {director, movie,
/// title, movie} and {title, book}, and the answer is the director of
/// the movie whose title is also a book title.
#[test]
fn figure3_query3_related_sets_and_answer() {
    let doc = movies_and_books();
    let catalog = Catalog::build(&doc);
    let v = validate(classify(&nlparser::parse(QUERY3).unwrap()), &catalog);
    assert!(v.is_valid(), "{:?}", v.feedback);
    let b = bind(&v.tree);
    assert_eq!(b.groups.len(), 2);
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = b.groups.iter().map(|g| g.len()).collect();
        s.sort();
        s
    };
    assert_eq!(sizes, vec![2, 3]); // {title,book} and {director,movie,title}

    let nalix = Nalix::new(doc.clone());
    let mut out = nalix.ask(QUERY3).unwrap();
    out.sort();
    out.dedup();
    assert_eq!(out, vec!["Steven Soderbergh"]);
}

/// Sec. 3.2.3's motivating pair: "Return the lowest price for each
/// book" groups per book; "Return the book with the lowest price"
/// aggregates over all books.
#[test]
fn section323_aggregate_scopes() {
    let doc = nalix_repro::xmldb::Document::parse_str(
        "<bib>\
         <book><title>Costly</title><price>90</price></book>\
         <book><title>Cheap</title><price>15</price></book>\
         </bib>",
    )
    .unwrap();
    let nalix = Nalix::new(doc.clone());

    let per_book = nalix.ask("Return the lowest price for each book.").unwrap();
    assert_eq!(per_book, vec!["90", "15"]);

    // `ask` atomizes the returned book node (title+price concatenated).
    let global = nalix.ask("Return the book with the lowest price.").unwrap();
    assert_eq!(global, vec!["Cheap15"]);
}

/// Sec. 3.2.3's other worked example: "Return the total number of
/// movies, where the director of each movie is Ron Howard" — the inner
/// scope keeps the condition inside the count.
#[test]
fn section323_inner_scope_count() {
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    let out = nalix
        .ask(
            "Return the total number of movies, where the director of each movie \
             is Ron Howard.",
        )
        .unwrap();
    assert!(!out.is_empty());
    assert!(out.iter().all(|v| v == "2"), "{out:?}");
}

/// Sec. 4's worked example: "Find all the movies directed by director
/// Ron Howard" — apposition, no implicit NT needed.
#[test]
fn section4_apposition_example() {
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    let out = nalix
        .ask("Find all the movies directed by director Ron Howard.")
        .unwrap();
    assert_eq!(out.len(), 2); // the two Ron Howard movies
}
