-- Q11: Return the title and the affiliation of the editor of every book.
SELECT concat(strval(v1), strval(v2))
FROM node AS v1, node AS v2, node AS v3, node AS v4
WHERE v1.label = 'title'
  AND v2.label = 'affiliation'
  AND v3.label = 'editor'
  AND v4.label = 'book'
  AND mqf(v1, v2, v3, v4)

