(: Q4: Return the author and the titles of all books of the author. :)
for $v1 in doc()//author, $v2 in doc()//title, $v3 in doc()//book
where mqf($v1,$v2,$v3)
return element result { $v1, $v2 }
