-- Q8: Return the titles of books, where the author of the book contains "Suciu".
SELECT strval(v1)
FROM node AS v1, node AS v2, node AS v3
WHERE v1.label = 'title'
  AND v2.label = 'book'
  AND v3.label = 'author'
  AND mqf(v1, v2, v3)
  AND contains(strval(v3), 'Suciu')

