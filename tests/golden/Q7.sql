-- Q7: Return the title and the year of every book published by Addison-Wesley after 1991, sorted by title.
SELECT concat(strval(v1), strval(v2))
FROM node AS v1, node AS v2, node AS v3, node AS v4, node AS v5, node AS v6
WHERE v1.label = 'title'
  AND v2.label = 'year'
  AND v3.label = 'book'
  AND v4.label = 'title'
  AND v5.label = 'publisher'
  AND v6.label = 'year'
  AND mqf(v1, v2, v3, v4, v5, v6)
  AND strval(v5) = 'Addison-Wesley'
  AND strval(v6) > 1991
ORDER BY strval(v4), v1.pre, v2.pre, v3.pre, v4.pre, v5.pre, v6.pre

