(: Q7: Return the title and the year of every book published by Addison-Wesley after 1991, sorted by title. :)
for $v1 in doc()//title, $v2 in doc()//year, $v3 in doc()//book, $v4 in doc()//title, $v5 in doc()//publisher, $v6 in doc()//year
where mqf($v1,$v2,$v3,$v4,$v5,$v6) and $v5 = "Addison-Wesley" and $v6 > 1991
order by $v4
return element result { $v1, $v2 }
