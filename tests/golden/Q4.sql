-- Q4: Return the author and the titles of all books of the author.
SELECT concat(strval(v1), strval(v2))
FROM node AS v1, node AS v2, node AS v3
WHERE v1.label = 'author'
  AND v2.label = 'title'
  AND v3.label = 'book'
  AND mqf(v1, v2, v3)

