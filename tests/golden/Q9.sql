-- Q9: Find all titles that contain "XML".
SELECT strval(v1)
FROM node AS v1
WHERE v1.label = 'title'
  AND contains(strval(v1), 'XML')

