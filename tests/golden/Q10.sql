-- Q10: Return the title of every book and the lowest year of the title.
SELECT concat(strval(v1), (
  SELECT min(strval(v3))
  FROM node AS v3, node AS v4
  WHERE v3.label = 'year'
    AND v4.label = 'title'
    AND mqf(v3, v4)
    AND strval(v4) = strval(v1)
))
FROM node AS v1, node AS v2
WHERE v1.label = 'title'
  AND v2.label = 'book'
  AND mqf(v1, v2)

