(: Q6: Return the title and the authors of every book that has an author. :)
for $v1 in doc()//title, $v2 in doc()//author, $v3 in doc()//book
where mqf($v1,$v2,$v3)
return element result { $v1, $v2 }
