-- Q3: Return the title and the authors of every book.
SELECT concat(strval(v1), strval(v2))
FROM node AS v1, node AS v2, node AS v3
WHERE v1.label = 'title'
  AND v2.label = 'author'
  AND v3.label = 'book'
  AND mqf(v1, v2, v3)

