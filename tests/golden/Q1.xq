(: Q1: Return the year and title of every book published by Addison-Wesley after 1991. :)
for $v1 in doc()//year, $v2 in doc()//title, $v3 in doc()//book, $v4 in doc()//publisher, $v5 in doc()//year
where mqf($v1,$v2,$v3,$v4,$v5) and $v4 = "Addison-Wesley" and $v5 > 1991
return element result { $v1, $v2 }
