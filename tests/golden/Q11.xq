(: Q11: Return the title and the affiliation of the editor of every book. :)
for $v1 in doc()//title, $v2 in doc()//affiliation, $v3 in doc()//editor, $v4 in doc()//book
where mqf($v1,$v2,$v3,$v4)
return element result { $v1, $v2 }
