-- Q1: Return the year and title of every book published by Addison-Wesley after 1991.
SELECT concat(strval(v1), strval(v2))
FROM node AS v1, node AS v2, node AS v3, node AS v4, node AS v5
WHERE v1.label = 'year'
  AND v2.label = 'title'
  AND v3.label = 'book'
  AND v4.label = 'publisher'
  AND v5.label = 'year'
  AND mqf(v1, v2, v3, v4, v5)
  AND strval(v4) = 'Addison-Wesley'
  AND strval(v5) > 1991

