(: Q9: Find all titles that contain "XML". :)
for $v1 in doc()//title
where contains($v1, "XML")
return $v1
