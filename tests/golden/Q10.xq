(: Q10: Return the title of every book and the lowest year of the title. :)
for $v1 in doc()//title, $v2 in doc()//book
let $vars1 := {
  for $v3 in doc()//year, $v4 in doc()//title
  where mqf($v3,$v4) and $v4 = $v1
  return $v3
}
where mqf($v1,$v2)
return element result { $v1, min($vars1) }
