(: Q8: Return the titles of books, where the author of the book contains "Suciu". :)
for $v1 in doc()//title, $v2 in doc()//book, $v3 in doc()//author
where mqf($v1,$v2,$v3) and contains($v3, "Suciu")
return $v1
