//! Property-based tests (proptest) over the core invariants:
//! XML round-tripping, LCA/MLCA algebra, the indexed partner
//! enumeration, parser robustness, metric bounds, and end-to-end
//! no-panic guarantees for template-generated English.

use nalix_repro::nalix::{Nalix, Outcome};
use nalix_repro::nlparser;
use nalix_repro::userstudy::metrics::{harmonic_mean, order_factor, precision_recall};
use nalix_repro::xmldb::{Document, NodeId};
use nalix_repro::xquery::mlca::{
    meaningful_partners, meaningful_partners_indexed, meaningfully_related,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random document generation
// ---------------------------------------------------------------------

/// A recursive tree blueprint: (label index, children).
#[derive(Debug, Clone)]
struct TreeSpec {
    label: usize,
    text: Option<u8>,
    children: Vec<TreeSpec>,
}

const LABELS: [&str; 6] = ["lib", "shelf", "book", "title", "author", "note"];

fn tree_strategy() -> impl Strategy<Value = TreeSpec> {
    let leaf =
        (0..LABELS.len(), proptest::option::of(any::<u8>())).prop_map(|(label, text)| TreeSpec {
            label,
            text,
            children: vec![],
        });
    leaf.prop_recursive(4, 64, 5, |inner| {
        (
            0..LABELS.len(),
            proptest::option::of(any::<u8>()),
            proptest::collection::vec(inner, 0..5),
        )
            .prop_map(|(label, text, children)| TreeSpec {
                label,
                text,
                children,
            })
    })
}

fn build(spec: &TreeSpec) -> Document {
    fn add(doc: &mut Document, parent: NodeId, spec: &TreeSpec) {
        let el = doc.add_element(parent, LABELS[spec.label]);
        if let Some(t) = spec.text {
            doc.add_text(el, &format!("v{t}"));
        }
        for c in &spec.children {
            add(doc, el, c);
        }
    }
    let mut doc = Document::new("root");
    let root = doc.root();
    add(&mut doc, root, spec);
    doc.finalize();
    doc
}

fn elements(doc: &Document) -> Vec<NodeId> {
    (0..doc.len())
        .map(NodeId::from_index)
        .filter(|&n| doc.node(n).is_element())
        .collect()
}

proptest! {
    // -----------------------------------------------------------------
    // XML round-trip
    // -----------------------------------------------------------------

    #[test]
    fn xml_round_trip_preserves_structure(spec in tree_strategy()) {
        let doc = build(&spec);
        let xml = doc.to_xml(doc.root());
        let doc2 = Document::parse_str(&xml).expect("serialized XML re-parses");
        prop_assert_eq!(doc.len(), doc2.len());
        prop_assert_eq!(doc.stats().elements, doc2.stats().elements);
        prop_assert_eq!(doc.stats().text_nodes, doc2.stats().text_nodes);
        // label multiset preserved
        let mut l1: Vec<String> = elements(&doc).iter().map(|&n| doc.label(n).to_owned()).collect();
        let mut l2: Vec<String> = elements(&doc2).iter().map(|&n| doc2.label(n).to_owned()).collect();
        l1.sort();
        l2.sort();
        prop_assert_eq!(l1, l2);
    }

    // -----------------------------------------------------------------
    // LCA algebra
    // -----------------------------------------------------------------

    #[test]
    fn lca_is_common_ancestor_and_symmetric(spec in tree_strategy()) {
        let doc = build(&spec);
        let els = elements(&doc);
        for (i, &a) in els.iter().enumerate().step_by(3) {
            for &b in els.iter().skip(i).step_by(5) {
                let l = doc.lca(a, b);
                prop_assert_eq!(l, doc.lca(b, a));
                prop_assert!(doc.is_ancestor_or_self(l, a));
                prop_assert!(doc.is_ancestor_or_self(l, b));
                // minimality: no child of l on both paths
                for c in doc.children(l) {
                    prop_assert!(
                        !(doc.is_ancestor_or_self(c, a) && doc.is_ancestor_or_self(c, b))
                    );
                }
            }
        }
    }

    #[test]
    fn ancestor_test_matches_walk(spec in tree_strategy()) {
        let doc = build(&spec);
        let els = elements(&doc);
        for &n in els.iter().step_by(4) {
            let walk: Vec<NodeId> = doc.ancestors(n).collect();
            for &a in &walk {
                prop_assert!(doc.is_proper_ancestor(a, n));
            }
            prop_assert!(!doc.is_proper_ancestor(n, n));
        }
    }

    // -----------------------------------------------------------------
    // Structural index vs parent-walk oracles
    //
    // `finalize` builds an Euler-tour RMQ / binary-lifting index that
    // answers LCA and level-ancestor queries without touching parent
    // pointers; the original walks survive as `*_walk` and serve as the
    // oracle here, over every node pair of random trees.
    // -----------------------------------------------------------------

    #[test]
    fn indexed_lca_matches_walk_oracle(spec in tree_strategy()) {
        let doc = build(&spec);
        let all: Vec<NodeId> = (0..doc.len()).map(NodeId::from_index).collect();
        for &a in &all {
            for &b in &all {
                prop_assert_eq!(doc.lca(a, b), doc.lca_walk(a, b), "lca({:?},{:?})", a, b);
            }
        }
    }

    #[test]
    fn indexed_child_toward_matches_walk_oracle(spec in tree_strategy()) {
        let doc = build(&spec);
        let all: Vec<NodeId> = (0..doc.len()).map(NodeId::from_index).collect();
        for &a in &all {
            for &b in &all {
                prop_assert_eq!(
                    doc.child_toward(a, b),
                    doc.child_toward_walk(a, b),
                    "child_toward({:?},{:?})", a, b
                );
            }
        }
    }

    #[test]
    fn ancestor_at_depth_matches_ancestor_walk(spec in tree_strategy()) {
        let doc = build(&spec);
        for n in (0..doc.len()).map(NodeId::from_index) {
            let own = doc.node(n).depth;
            // The ancestor chain, nearest first, gives the oracle for
            // every shallower depth; the node itself covers `own`.
            let mut chain: Vec<NodeId> = vec![n];
            chain.extend(doc.ancestors(n));
            for (steps, &anc) in chain.iter().enumerate() {
                let depth = own - steps as u32;
                prop_assert_eq!(doc.ancestor_at_depth(n, depth), Some(anc));
            }
            prop_assert_eq!(doc.ancestor_at_depth(n, own + 1), None);
        }
    }

    // -----------------------------------------------------------------
    // MLCA algebra
    // -----------------------------------------------------------------

    #[test]
    fn mlca_is_reflexive_and_symmetric(spec in tree_strategy()) {
        let doc = build(&spec);
        let els = elements(&doc);
        for (i, &a) in els.iter().enumerate().step_by(3) {
            prop_assert!(meaningfully_related(&doc, a, a));
            for &b in els.iter().skip(i + 1).step_by(4) {
                prop_assert_eq!(
                    meaningfully_related(&doc, a, b),
                    meaningfully_related(&doc, b, a)
                );
            }
        }
    }

    #[test]
    fn mlca_unique_label_ancestor_pairs_are_meaningful(spec in tree_strategy()) {
        // Ancestor/descendant pairs are meaningful *unless* a same-label
        // node blocks (e.g. an <author> nested inside an <author> blocks
        // its ancestor). When both labels are unique in the document no
        // blocker can exist, so the pair must be meaningful.
        let doc = build(&spec);
        for &n in elements(&doc).iter().step_by(3) {
            if doc.nodes_labeled(doc.label(n)).len() != 1 {
                continue;
            }
            for a in doc.ancestors(n) {
                if doc.nodes_labeled(doc.label(a)).len() != 1 {
                    continue;
                }
                prop_assert!(meaningfully_related(&doc, a, n), "unique-label ancestor pair");
            }
        }
    }

    #[test]
    fn indexed_partners_match_naive(spec in tree_strategy()) {
        let doc = build(&spec);
        let els = elements(&doc);
        for &a in els.iter().step_by(3) {
            for label in LABELS {
                let Some(sym) = doc.lookup(label) else { continue };
                let fast = meaningful_partners_indexed(&doc, a, sym);
                let naive = meaningful_partners(&doc, a, label);
                prop_assert_eq!(&fast, &naive, "anchor {} label {}", a, label);
            }
        }
    }

    // -----------------------------------------------------------------
    // Metrics bounds
    // -----------------------------------------------------------------

    #[test]
    fn precision_recall_bounds(
        returned in proptest::collection::vec("[a-d]{1,2}", 0..8),
        expected in proptest::collection::vec("[a-d]{1,2}", 0..8),
    ) {
        let pr = precision_recall(&returned, &expected);
        prop_assert!((0.0..=1.0).contains(&pr.precision));
        prop_assert!((0.0..=1.0).contains(&pr.recall));
        let h = pr.harmonic();
        prop_assert!((0.0..=1.0).contains(&h));
        prop_assert!(h <= pr.precision.max(pr.recall) + 1e-12);
    }

    #[test]
    fn harmonic_mean_is_bounded_by_min_and_max(p in 0.0f64..=1.0, r in 0.0f64..=1.0) {
        let h = harmonic_mean(p, r);
        prop_assert!(h <= p.max(r) + 1e-12);
        if p > 0.0 && r > 0.0 {
            prop_assert!(h >= 0.0);
            prop_assert!(h <= 2.0 * p.min(r) / (p.min(r) + p.max(r)) * p.max(r) + 1e-9);
        }
    }

    #[test]
    fn order_factor_bounds(
        a in proptest::collection::vec("[a-c]", 0..6),
        b in proptest::collection::vec("[a-c]", 1..6),
    ) {
        let f = order_factor(&a, &b);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    // -----------------------------------------------------------------
    // Parser robustness: word salad must never panic; any tree produced
    // must satisfy the structural invariants.
    // -----------------------------------------------------------------

    #[test]
    fn nl_parser_never_panics_on_word_salad(
        words in proptest::collection::vec(
            prop_oneof![
                Just("Return".to_owned()),
                Just("the".to_owned()),
                Just("of".to_owned()),
                Just("every".to_owned()),
                Just("movie".to_owned()),
                Just("director".to_owned()),
                Just("is".to_owned()),
                Just("not".to_owned()),
                Just("and".to_owned()),
                Just("where".to_owned()),
                Just("1991".to_owned()),
                "[a-z]{1,8}",
            ],
            1..12,
        )
    ) {
        let sentence = words.join(" ");
        // A rejection is fine; panicking is not.
        if let Ok(tree) = nlparser::parse(&sentence) {
            prop_assert!(tree.check_invariants().is_ok(), "{}", tree.outline());
        }
    }

    // -----------------------------------------------------------------
    // XQuery text parser robustness
    // -----------------------------------------------------------------

    #[test]
    fn xquery_parser_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("for".to_owned()),
                Just("$v".to_owned()),
                Just("in".to_owned()),
                Just("doc()".to_owned()),
                Just("//movie".to_owned()),
                Just("where".to_owned()),
                Just("return".to_owned()),
                Just("count".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("=".to_owned()),
                Just("\"x\"".to_owned()),
                Just("1".to_owned()),
            ],
            1..12,
        )
    ) {
        let text = tokens.join(" ");
        let _ = nalix_repro::xquery::parse(&text); // must not panic
    }

    // -----------------------------------------------------------------
    // End-to-end: template-generated English over the movies database
    // never panics; accepted queries evaluate without error.
    // -----------------------------------------------------------------

    #[test]
    fn template_queries_accepted_or_rejected_gracefully(
        noun1 in prop_oneof![
            Just("movie"), Just("director"), Just("title"), Just("year"), Just("film"),
            Just("spaceship")
        ],
        noun2 in prop_oneof![
            Just("movie"), Just("director"), Just("title"), Just("year")
        ],
        value in prop_oneof![Just("Ron Howard"), Just("Traffic"), Just("Nobody")],
        shape in 0u8..4,
    ) {
        let doc = nalix_repro::xmldb::datasets::movies::movies();
        let nalix = Nalix::new(doc.clone());
        let q = match shape {
            0 => format!("Return the {noun1} of each {noun2}."),
            1 => format!("Return every {noun1}, where the {noun2} of the {noun1} is \"{value}\"."),
            2 => format!("Find all the {noun1}s directed by {value}."),
            _ => format!("Return the number of {noun1}s of each {noun2}."),
        };
        match nalix.query(&q) {
            Outcome::Translated(t) => {
                // evaluation must not error or panic
                prop_assert!(nalix.execute(&t).is_ok(), "{}", q);
            }
            Outcome::Rejected(r) => prop_assert!(!r.errors.is_empty(), "{}", q),
        }
    }

    // -----------------------------------------------------------------
    // Panic-free `answer`: arbitrary text — ASCII punctuation, digits,
    // accented Latin, curly quotes, CJK — either answers or returns a
    // typed QueryError whose rephrasing suggestion is non-empty (the
    // paper's Sec. 4 contract: never die, always say how to rephrase).
    // -----------------------------------------------------------------

    #[test]
    fn answer_never_panics_and_always_suggests(
        q in "[ ,.\"'?!a-zA-Z0-9à-ö‘-”一-丏]{0,60}",
    ) {
        let doc = nalix_repro::xmldb::datasets::movies::movies();
        let nalix = Nalix::new(doc.clone());
        match nalix.answer(&q) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(!e.suggestion().is_empty(), "{:?} -> {}", q, e);
                prop_assert!(!e.feedback().is_empty(), "{:?}", q);
                prop_assert!(!e.to_string().is_empty(), "{:?}", q);
            }
        }
    }

    // Near-English word salad drives the deeper pipeline stages the
    // fully-arbitrary generator rarely reaches.
    #[test]
    fn answer_never_panics_on_word_salad(
        words in proptest::collection::vec(
            prop_oneof![
                Just("Return".to_owned()),
                Just("Find".to_owned()),
                Just("the".to_owned()),
                Just("of".to_owned()),
                Just("every".to_owned()),
                Just("movie".to_owned()),
                Just("director".to_owned()),
                Just("is".to_owned()),
                Just("not".to_owned()),
                Just("and".to_owned()),
                Just("where".to_owned()),
                Just("more".to_owned()),
                Just("than".to_owned()),
                Just("1991".to_owned()),
                Just(",".to_owned()),
                Just("\u{201C}Traffic\u{201D}".to_owned()),
                "[a-zà-ö]{1,8}",
            ],
            1..14,
        )
    ) {
        let doc = nalix_repro::xmldb::datasets::movies::movies();
        let nalix = Nalix::new(doc.clone());
        let q = words.join(" ");
        if let Err(e) = nalix.answer(&q) {
            prop_assert!(!e.suggestion().is_empty(), "{:?} -> {}", q, e);
        }
    }

    // Conversational follow-ups: anaphor/ellipsis word salad resolved
    // against a real prior turn must never panic — only answer or fail
    // with a typed, suggestion-carrying error; and the same text with
    // no context must be the typed missing-context error when it is a
    // follow-up at all.
    #[test]
    fn follow_up_resolution_never_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("Of".to_owned()),
                Just("those".to_owned()),
                Just("these".to_owned()),
                Just("them".to_owned()),
                Just("they".to_owned()),
                Just("what".to_owned()),
                Just("about".to_owned()),
                Just("which".to_owned()),
                Just("were".to_owned()),
                Just("directed".to_owned()),
                Just("by".to_owned()),
                Just("before".to_owned()),
                Just("after".to_owned()),
                Just("1991".to_owned()),
                Just(",".to_owned()),
                Just("?".to_owned()),
                "[a-zà-ö]{1,8}",
            ],
            0..12,
        )
    ) {
        let doc = nalix_repro::xmldb::datasets::movies::movies();
        let nalix = Nalix::new(doc.clone());
        let budget = nalix_repro::xquery::EvalBudget::default();
        let prior = nalix
            .answer_turn("Find all the movies directed by Ron Howard.", None, &budget)
            .expect("opening turn")
            .turn;
        let q = words.join(" ");
        if let Err(e) = nalix.answer_turn(&q, Some(&prior), &budget) {
            prop_assert!(!e.suggestion().is_empty(), "{:?} -> {}", q, e);
        }
        if nalix_repro::nalix::detect_follow_up(&q).is_some() {
            let err = nalix
                .answer_turn(&q, None, &budget)
                .expect_err("a follow-up with no context must fail");
            prop_assert_eq!(err.code(), "session.missing_context", "{:?}", q);
        }
    }
}

proptest! {
    // -----------------------------------------------------------------
    // Relational shredding vs. the arena oracle
    // -----------------------------------------------------------------

    /// The SQL backend's interval tables are a lossless re-encoding of
    /// the arena: same row count, and for every node the same parent,
    /// subtree extent (computed here by brute-force walk), label, and
    /// atomized string value.
    #[test]
    fn shredding_matches_the_arena_oracle(spec in tree_strategy()) {
        let doc = build(&spec);
        let shred = nalix_repro::relstore::Shredding::build(&doc);
        prop_assert_eq!(shred.len(), doc.len());
        for idx in 0..doc.len() {
            let n = NodeId::from_index(idx);
            let pre = doc.pre(n);
            match doc.parent(n) {
                Some(p) => prop_assert_eq!(shred.parent_pre(pre), doc.pre(p)),
                None => prop_assert_eq!(shred.parent_pre(pre), nalix_repro::relstore::NIL_PRE),
            }
            // Oracle extent: the largest pre rank in the subtree.
            let mut max_pre = pre;
            let mut stack: Vec<NodeId> = doc.children(n).collect();
            while let Some(c) = stack.pop() {
                max_pre = max_pre.max(doc.pre(c));
                stack.extend(doc.children(c));
            }
            prop_assert_eq!(shred.extent(pre), max_pre);
            if doc.node(n).is_element() {
                prop_assert_eq!(shred.label_of(pre), doc.label(n));
            }
            // Atomization follows the engine's mixed-content rule
            // (`Document::atom_value`), not the raw whole-subtree
            // string value.
            prop_assert_eq!(shred.atomize(pre), doc.atom_value(n).into_owned());
        }
    }
}
