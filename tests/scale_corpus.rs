//! 100×-scale corpus test: builds the ~8M-node DBLP document the
//! `BENCH_EVAL.json` records are measured against, and asserts the
//! columnar arena's memory stays within budget while representative
//! queries complete under the *default* evaluation budget.
//!
//! Ignored by default — corpus construction alone takes tens of
//! seconds — and run by the dedicated `scale` CI job:
//!
//! ```console
//! $ cargo test --release --test scale_corpus -- --ignored
//! ```

use nalix_repro::xmldb::datasets::dblp::{generate, DblpConfig};
use nalix_repro::xquery::{Engine, EvalBudget};
use std::sync::Arc;

/// The mega corpus of `crates/bench/src/bin/eval_perf.rs` — same
/// config, same seed, so this test guards exactly the corpus the
/// committed perf records describe.
fn mega() -> nalix_repro::xmldb::Document {
    generate(&DblpConfig {
        books: 240_000,
        articles: 480_000,
        seed: 0xDB1F,
    })
}

#[test]
#[ignore = "builds a ~8M-node corpus; run with --ignored (scale CI job)"]
fn mega_corpus_fits_memory_budget_and_answers_under_default_budget() {
    let doc = mega();
    let nodes = doc.stats().total_nodes();
    assert!(
        nodes > 7_000_000,
        "mega corpus should exceed 7M nodes, got {nodes}"
    );

    // Arena memory budget: the struct-of-arrays layout costs a known
    // ~56 bytes of column data per node; with the string heap, order
    // table, postings and structural index the whole document must
    // stay within 150 bytes/node — about 1.2 GB here, a fraction of
    // what a pointer-per-node heap representation costs.
    let fp = doc.memory_footprint();
    let per_node = fp.total() as f64 / nodes as f64;
    assert!(
        per_node < 150.0,
        "arena footprint {:.1} bytes/node exceeds the 150 B budget \
         (columns {}, heap {}, order {}, postings {}, index {})",
        per_node,
        fp.node_columns,
        fp.string_heap,
        fp.doc_order,
        fp.label_postings,
        fp.struct_index
    );

    // Representative workloads complete under the *default* budget —
    // the point of the columnar sweeps: a value-index point lookup and
    // the paper's selection query, at 100× the paper's corpus.
    let engine = Engine::new(Arc::new(doc));
    let budget = EvalBudget::default();

    let hits = engine
        .run_with_budget(
            r#"for $t in doc()//title where $t = "Data on the Web" return $t"#,
            &budget,
        )
        .expect("value-scan completes under the default budget");
    assert!(!hits.is_empty(), "the seeded corpus contains the title");

    let selection = engine
        .run_with_budget(
            r#"for $b in doc()//book where $b/publisher = "Addison-Wesley" and $b/year > 1991 return ($b/title, $b/year)"#,
            &budget,
        )
        .expect("selection completes under the default budget");
    assert!(
        selection.len() > 10_000,
        "selection should match a large result set, got {}",
        selection.len()
    );
}

/// Incremental-update benchmark at scale: 1,000 node-level edits
/// against the ~8M-node corpus, committed in small batches, must all
/// take the patch path — on a document this large, a fallback to a
/// from-scratch rebuild on a 20-edit batch would mean the incremental
/// maintenance is not actually incremental. Queries against the final
/// snapshot must see every edit.
#[test]
#[ignore = "builds a ~8M-node corpus; run with --ignored (scale CI job)"]
fn mega_corpus_thousand_edits_never_fall_back_to_rebuild() {
    use nalix_repro::xmldb::{CommitStrategy, Edit, NewNode};

    let mut current = Arc::new(mega());
    const BATCHES: usize = 50;
    const PER_BATCH: usize = 20;
    let mut committed = 0usize;
    for batch in 0..BATCHES {
        let titles = current.nodes_labeled("title");
        let mut up = current.begin_update().expect("corpus is finalized");
        for k in 0..PER_BATCH / 2 {
            // Deterministic scatter over the corpus; 7919 is prime so
            // successive batches touch disjoint regions.
            let pick = ((batch * PER_BATCH + k) * 7919) % titles.len();
            let title = titles[pick];
            let text = current.first_child(title).expect("titles carry text");
            up.apply(&Edit::ReplaceValue {
                target: text,
                value: format!("Edited Title {batch}-{k}"),
            })
            .expect("value rewrite applies");
            up.apply(&Edit::InsertChild {
                parent: current.parent(title).expect("titles have parents"),
                node: NewNode::Leaf {
                    label: "note".to_string(),
                    text: format!("edit {batch}-{k}"),
                },
            })
            .expect("leaf insert applies");
        }
        assert_eq!(
            up.strategy(),
            CommitStrategy::Patch,
            "a {PER_BATCH}-edit batch on an 8M-node corpus must patch"
        );
        let (next, stats) = up.commit();
        assert_eq!(
            stats.strategy,
            CommitStrategy::Patch,
            "batch {batch} fell back to a rebuild"
        );
        committed += stats.edits;
        current = Arc::new(next);
    }
    assert_eq!(committed, BATCHES * PER_BATCH, "all 1k edits committed");

    // The final snapshot answers from its patched indexes: every
    // inserted note is reachable, and a rewritten title is gone from
    // the value index while its replacement is present.
    let engine = Engine::new(Arc::clone(&current));
    let budget = EvalBudget::default();
    let notes = engine
        .run_with_budget(
            r#"for $n in doc()//note where $n = "edit 0-0" return $n"#,
            &budget,
        )
        .expect("note lookup completes");
    assert_eq!(notes.len(), 1, "inserted note is indexed");
    let rewritten = engine
        .run_with_budget(
            r#"for $t in doc()//title where $t = "Edited Title 49-9" return $t"#,
            &budget,
        )
        .expect("rewritten-title lookup completes");
    assert_eq!(rewritten.len(), 1, "rewritten title is indexed");
}
