//! 100×-scale corpus test: builds the ~8M-node DBLP document the
//! `BENCH_EVAL.json` records are measured against, and asserts the
//! columnar arena's memory stays within budget while representative
//! queries complete under the *default* evaluation budget.
//!
//! Ignored by default — corpus construction alone takes tens of
//! seconds — and run by the dedicated `scale` CI job:
//!
//! ```console
//! $ cargo test --release --test scale_corpus -- --ignored
//! ```

use nalix_repro::xmldb::datasets::dblp::{generate, DblpConfig};
use nalix_repro::xquery::{Engine, EvalBudget};
use std::sync::Arc;

/// The mega corpus of `crates/bench/src/bin/eval_perf.rs` — same
/// config, same seed, so this test guards exactly the corpus the
/// committed perf records describe.
fn mega() -> nalix_repro::xmldb::Document {
    generate(&DblpConfig {
        books: 240_000,
        articles: 480_000,
        seed: 0xDB1F,
    })
}

#[test]
#[ignore = "builds a ~8M-node corpus; run with --ignored (scale CI job)"]
fn mega_corpus_fits_memory_budget_and_answers_under_default_budget() {
    let doc = mega();
    let nodes = doc.stats().total_nodes();
    assert!(
        nodes > 7_000_000,
        "mega corpus should exceed 7M nodes, got {nodes}"
    );

    // Arena memory budget: the struct-of-arrays layout costs a known
    // ~56 bytes of column data per node; with the string heap, order
    // table, postings and structural index the whole document must
    // stay within 150 bytes/node — about 1.2 GB here, a fraction of
    // what a pointer-per-node heap representation costs.
    let fp = doc.memory_footprint();
    let per_node = fp.total() as f64 / nodes as f64;
    assert!(
        per_node < 150.0,
        "arena footprint {:.1} bytes/node exceeds the 150 B budget \
         (columns {}, heap {}, order {}, postings {}, index {})",
        per_node,
        fp.node_columns,
        fp.string_heap,
        fp.doc_order,
        fp.label_postings,
        fp.struct_index
    );

    // Representative workloads complete under the *default* budget —
    // the point of the columnar sweeps: a value-index point lookup and
    // the paper's selection query, at 100× the paper's corpus.
    let engine = Engine::new(Arc::new(doc));
    let budget = EvalBudget::default();

    let hits = engine
        .run_with_budget(
            r#"for $t in doc()//title where $t = "Data on the Web" return $t"#,
            &budget,
        )
        .expect("value-scan completes under the default budget");
    assert!(!hits.is_empty(), "the seeded corpus contains the title");

    let selection = engine
        .run_with_budget(
            r#"for $b in doc()//book where $b/publisher = "Addison-Wesley" and $b/year > 1991 return ($b/title, $b/year)"#,
            &budget,
        )
        .expect("selection completes under the default budget");
    assert!(
        selection.len() > 10_000,
        "selection should match a large result set, got {}",
        selection.len()
    );
}
