//! Golden-file tests for the failure path: one snapshot per paper
//! error class (Sec. 4.1 / Table 6), capturing the typed `QueryError`
//! variant, its rendered message, the rephrasing suggestion, and the
//! per-item feedback the user would see. A wording change now shows up
//! as a readable diff instead of a silent UX shift. Regenerate with:
//!
//! ```console
//! $ UPDATE_GOLDEN=1 cargo test --test golden_errors
//! ```

use nalix_repro::nalix::{Nalix, QueryError};
use nalix_repro::xmldb::datasets::movies::movies;
use nalix_repro::xquery::EvalBudget;
use std::path::PathBuf;

fn golden_path(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/errors")
        .join(format!("{label}.txt"))
}

fn variant_name(e: &QueryError) -> &'static str {
    match e {
        QueryError::Parse { .. } => "Parse",
        QueryError::Classify { .. } => "Classify",
        QueryError::Validate { .. } => "Validate",
        QueryError::Translate { .. } => "Translate",
        QueryError::Eval { .. } => "Eval",
        QueryError::ResourceExhausted { .. } => "ResourceExhausted",
        QueryError::MissingContext { .. } => "MissingContext",
        QueryError::ExpiredContext { .. } => "ExpiredContext",
        QueryError::UpdateIntent { .. } => "UpdateIntent",
    }
}

/// Each case: snapshot label, the paper's error class, the question,
/// and the budget to answer under (None = default).
const CASES: &[(&str, &str, &str, Option<u64>)] = &[
    (
        "parse_failure",
        "ungrammatical input",
        "Find movies , , where",
        None,
    ),
    (
        "unterminated_quotation",
        "ungrammatical input (unterminated quotation)",
        "Find the movie, where the title is \"Traffic",
        None,
    ),
    (
        "unknown_term",
        "unknown term (Fig. 10 Query 1: bare \"as\")",
        "Return every director who has directed as many movies as has Ron Howard.",
        None,
    ),
    (
        "no_such_name",
        "no such element or attribute name",
        "Return the spaceship of each movie.",
        None,
    ),
    (
        "no_such_value",
        "no such value",
        "Find all the movies directed by Stanley Kubrick.",
        None,
    ),
    (
        "incomplete_comparison",
        "incomplete comparison",
        "Find all the movies, where the year of the movie is greater than.",
        None,
    ),
    (
        "grammar_violation",
        "unsupported grammar (unrelatable token)",
        "Return and movies.",
        None,
    ),
    (
        "declarative_sentence",
        "unsupported sentence form (not a command or question)",
        "The weather is nice today.",
        None,
    ),
    (
        "resource_exhausted",
        "resource budget exceeded",
        "Find all the movies directed by Ron Howard.",
        Some(1), // max_tuples
    ),
    (
        "update_intent",
        "mutation request (docs/UPDATES.md: natural language never mutates)",
        "Delete all the movies directed by Ron Howard.",
        None,
    ),
];

#[test]
fn failure_feedback_matches_golden_files() {
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();

    for &(label, class, question, max_tuples) in CASES {
        let budget = match max_tuples {
            Some(n) => EvalBudget::default().with_max_tuples(n as usize),
            None => EvalBudget::default(),
        };
        let err = match nalix.answer_with_budget(question, &budget) {
            Err(e) => e,
            Ok(ans) => panic!("{label}: expected an error for {question:?}, got {ans:?}"),
        };
        assert!(
            !err.suggestion().is_empty(),
            "{label}: empty suggestion violates the Sec. 4 contract"
        );
        let mut got = String::new();
        got.push_str(&format!("class: {class}\n"));
        got.push_str(&format!("question: {question}\n"));
        got.push_str(&format!("variant: {}\n", variant_name(&err)));
        got.push_str(&format!("code: {}\n", err.code()));
        got.push_str(&format!("display: {err}\n"));
        got.push_str(&format!("suggestion: {}\n", err.suggestion()));
        got.push_str("feedback:\n");
        for f in err.feedback() {
            got.push_str(&format!("- {}\n", f.message()));
        }

        let path = golden_path(label);
        if update {
            std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
            std::fs::write(&path, &got).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{label}: missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
                path.display()
            )
        });
        if got != want {
            failures.push(format!(
                "{label}: failure feedback drifted from {}\n--- golden\n{want}\n--- current\n{got}",
                path.display()
            ));
        }
    }

    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}
