//! Linguistic-coverage integration tests: one test per supported query
//! construction from the paper's Sec. 7 summary ("comparison
//! predicates, conjunctions, simple negation, quantification, nesting,
//! aggregation, value joins, and sorting") plus the documented feedback
//! paths.

use nalix_repro::nalix::{FeedbackKind, Nalix, Outcome};
use nalix_repro::xmldb::datasets::bib::bib;
use nalix_repro::xmldb::datasets::movies::movies;
use nalix_repro::xmldb::Document;

fn ask(doc: &Document, q: &str) -> Result<Vec<String>, Vec<String>> {
    let nalix = Nalix::new(doc.clone());
    match nalix.query(q) {
        Outcome::Translated(t) => Ok(nalix.flatten_values(&nalix.execute(&t).expect(q))),
        Outcome::Rejected(r) => Err(r.errors.iter().map(|e| e.message()).collect()),
    }
}

#[test]
fn wh_question() {
    let doc = movies();
    let out = ask(&doc, "What is the title of each movie?").unwrap();
    assert_eq!(out.len(), 5);
}

#[test]
fn which_question_with_predicate() {
    let doc = movies();
    let out = ask(
        &doc,
        "Which director, where the title of the movie of the director is \"Tribute\"?",
    );
    // wh-variant may or may not parse smoothly; accepted answers must be
    // correct, rejections must carry feedback.
    match out {
        Ok(v) => assert!(v.contains(&"Steven Soderbergh".to_owned()), "{v:?}"),
        Err(errors) => assert!(!errors.is_empty()),
    }
}

#[test]
fn show_me_discards_the_pronoun() {
    let doc = movies();
    let out = ask(&doc, "Show me the title of every movie.").unwrap();
    assert_eq!(out.len(), 5);
}

#[test]
fn negated_contains() {
    let doc = bib();
    let out = ask(&doc, "Return every title that does not contain \"Unix\".").unwrap();
    assert_eq!(out.len(), 3);
}

#[test]
fn more_than_count() {
    let doc = bib();
    let out = ask(
        &doc,
        "Return the title of every book, where the number of authors of the book \
         is more than 1.",
    )
    .unwrap();
    assert_eq!(out, vec!["Data on the Web"]);
}

#[test]
fn fewer_than_count() {
    let doc = bib();
    let out = ask(
        &doc,
        "Return the title of every book, where the number of authors of the book \
         is less than 1.",
    )
    .unwrap();
    assert_eq!(
        out,
        vec!["The Economics of Technology and Content for Digital TV"]
    );
}

#[test]
fn starts_with_predicate() {
    let doc = bib();
    let out = ask(&doc, "Return every title that starts with \"TCP\".").unwrap();
    assert_eq!(out, vec!["TCP/IP Illustrated"]);
}

#[test]
fn ends_with_predicate() {
    let doc = bib();
    let out = ask(&doc, "Return every title that ends with \"Web\".").unwrap();
    assert_eq!(out, vec!["Data on the Web"]);
}

#[test]
fn descending_sort() {
    let doc = bib();
    let out = ask(&doc, "Return the price of every book, in descending order.").unwrap();
    assert_eq!(out, vec!["129.95", "65.95", "65.95", "39.95"]);
}

#[test]
fn every_quantifier_wraps_condition() {
    // Fig. 7: universal quantification. Books where *every* author is
    // W. — the single-author Stevens books qualify; "Data on the Web"
    // (three authors) does not; the editor-only book qualifies
    // vacuously, as `every` over an empty set does in XQuery.
    let doc = bib();
    let out = ask(
        &doc,
        "Return the title of each book, where every author of the book contains \"W.\".",
    )
    .unwrap();
    assert_eq!(out.len(), 3, "{out:?}");
    assert!(!out.contains(&"Data on the Web".to_owned()));
}

#[test]
fn before_year() {
    let doc = bib();
    let out = ask(
        &doc,
        "Return the title of every book published by Addison-Wesley before 1993.",
    )
    .unwrap();
    assert_eq!(out, vec!["Advanced Programming in the Unix environment"]);
}

#[test]
fn feedback_between_suggestion() {
    let doc = bib();
    let errors = ask(&doc, "Return every book with a price between 50 and 100.").unwrap_err();
    assert!(errors.iter().any(|m| m.contains("between")), "{errors:?}");
}

#[test]
fn feedback_missing_return() {
    let doc = bib();
    let nalix = Nalix::new(doc.clone());
    let out = nalix.query("Return.");
    match out {
        Outcome::Rejected(r) => assert!(r
            .errors
            .iter()
            .any(|e| matches!(&e.kind, FeedbackKind::GrammarViolation { .. }))),
        Outcome::Translated(_) => panic!("bare command must be rejected"),
    }
}

#[test]
fn feedback_incomplete_comparison() {
    let doc = bib();
    let errors = ask(
        &doc,
        "Return every book, where the price of the book is greater than.",
    )
    .unwrap_err();
    assert!(
        errors.iter().any(|m| m.contains("missing a value")),
        "{errors:?}"
    );
}

#[test]
fn conjunction_of_three_returns() {
    let doc = bib();
    let out = ask(
        &doc,
        "Return the title, the publisher and the price of every book.",
    )
    .unwrap();
    // 4 books × 3 values
    assert_eq!(out.len(), 12);
}

#[test]
fn count_with_implicit_name_token() {
    // FT + participle + value: the count groups per implicit director.
    let doc = movies();
    let out = ask(&doc, "Return the number of movies directed by Ron Howard.").unwrap();
    assert!(!out.is_empty());
    assert!(out.iter().all(|v| v == "2"), "{out:?}");
}

#[test]
fn some_quantifier_is_existential() {
    let doc = movies();
    let out = ask(
        &doc,
        "Return the titles of movies, where any director of the movie is \"Ron Howard\".",
    )
    .unwrap();
    assert_eq!(out.len(), 2);
}

#[test]
fn wh_question_with_aggregate() {
    let doc = movies();
    let out = ask(&doc, "What is the number of movies of each director?").unwrap();
    // one count per director node: 2,2,2,2,1 (Figure 1 has five
    // director elements; Jackson directed one film)
    assert_eq!(out, vec!["2", "2", "2", "2", "1"]);
}

#[test]
fn value_join_across_books() {
    // Two books share the price 65.95.
    let doc = bib();
    let out = ask(
        &doc,
        "Return the titles of books, where the price of the book is the same as \
         the price of a different book.",
    );
    match out {
        Ok(v) => {
            // Both Stevens books (and possibly self-joins, depending on
            // how "different" is resolved).
            assert!(v.iter().any(|t| t.contains("TCP/IP")), "{v:?}");
        }
        Err(errors) => panic!("{errors:?}"),
    }
}
