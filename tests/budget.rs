//! Evaluator resource budgets: pathological queries hit a typed
//! `ResourceExhausted` error quickly instead of hanging or crashing,
//! and the default budget is generous enough that all nine golden XMP
//! queries evaluate unchanged.

use nalix_repro::nalix::{Nalix, QueryError};
use nalix_repro::xmldb::datasets::dblp::{generate, DblpConfig};
use nalix_repro::xmldb::datasets::movies::movies;
use nalix_repro::xquery::{self, Engine, EvalBudget, EvalError, ExhaustedResource, Expr};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn assert_exhausted(r: Result<xquery::Sequence, EvalError>, want: ExhaustedResource) {
    match r {
        Err(EvalError::ResourceExhausted { resource, .. }) if resource == want => {}
        other => panic!("expected ResourceExhausted({want:?}), got {other:?}"),
    }
}

#[test]
fn deep_nesting_exhausts_the_depth_budget_quickly() {
    let doc = movies();
    let engine = Engine::new(doc.clone());
    // not(not(...not(1)...)) nested far beyond any real translation.
    let mut expr = Expr::Num(1.0);
    for _ in 0..5_000 {
        expr = Expr::Not(Box::new(expr));
    }
    let start = Instant::now();
    let got = engine.eval_expr_with_budget(&expr, &EvalBudget::default());
    assert_exhausted(got, ExhaustedResource::Depth);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "budget must trip fast, took {:?}",
        start.elapsed()
    );
}

#[test]
fn custom_depth_limit_is_respected() {
    let doc = movies();
    let engine = Engine::new(doc.clone());
    let mut expr = Expr::Num(1.0);
    for _ in 0..40 {
        expr = Expr::Not(Box::new(expr));
    }
    let tight = EvalBudget::default().with_max_depth(8);
    assert_exhausted(
        engine.eval_expr_with_budget(&expr, &tight),
        ExhaustedResource::Depth,
    );
    // The default limit is far above 40 levels.
    assert!(engine
        .eval_expr_with_budget(&expr, &EvalBudget::default())
        .is_ok());
}

#[test]
fn zero_time_limit_trips_at_the_first_iteration_boundary() {
    let doc = movies();
    let engine = Engine::new(doc.clone());
    let budget = EvalBudget::default().with_time_limit(Duration::ZERO);
    let got = engine.run_with_budget("for $m in doc()//movie return $m", &budget);
    assert_exhausted(got, ExhaustedResource::Time);
}

#[test]
fn cartesian_blowup_exhausts_the_tuple_budget() {
    let doc = movies();
    let engine = Engine::new(doc.clone());
    let q = "for $a in doc()//movie for $b in doc()//movie for $c in doc()//movie return $a";
    let budget = EvalBudget::default().with_max_tuples(50);
    let start = Instant::now();
    assert_exhausted(
        engine.run_with_budget(q, &budget),
        ExhaustedResource::Tuples,
    );
    assert!(start.elapsed() < Duration::from_secs(5));
    // The same query fits comfortably in the default budget.
    assert!(engine.run(q).is_ok());
}

#[test]
fn exhaustion_surfaces_as_a_typed_query_error_with_suggestion() {
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    let question = "Find all the movies directed by Ron Howard.";
    // Generous budget: the question answers normally.
    assert!(nalix.answer(question).is_ok());
    // One-tuple budget: the same question reports exhaustion, typed,
    // with a rephrasing suggestion — never a panic or a hang.
    let tight = EvalBudget::default().with_max_tuples(1);
    match nalix.answer_with_budget(question, &tight) {
        Err(QueryError::ResourceExhausted {
            resource,
            suggestion,
            ..
        }) => {
            assert_eq!(resource, ExhaustedResource::Tuples);
            assert!(!suggestion.is_empty());
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
}

#[test]
fn all_nine_golden_queries_fit_the_default_budget() {
    // The budget guards must not change any paper-study answer: every
    // checked-in golden XMP query evaluates under the default budget
    // and returns the same sequence as the unbudgeted entry point.
    let doc = generate(&DblpConfig {
        books: 40,
        articles: 80,
        seed: 7,
    });
    let engine = Engine::new(doc.clone());
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("golden dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("xq") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("golden file");
        let body: String = text
            .lines()
            .filter(|l| !l.starts_with("(:"))
            .collect::<Vec<_>>()
            .join("\n");
        let budgeted = engine
            .run_with_budget(&body, &EvalBudget::default())
            .unwrap_or_else(|e| panic!("{}: exceeds default budget: {e}", path.display()));
        let plain = engine
            .run(&body)
            .unwrap_or_else(|e| panic!("{}: fails unbudgeted: {e}", path.display()));
        assert_eq!(
            engine.strings(&budgeted),
            engine.strings(&plain),
            "{}: budget changed the answer",
            path.display()
        );
        seen += 1;
    }
    assert_eq!(seen, 9, "expected the nine XMP golden queries");
}
