//! The original W3C XMP use-case shapes against the embedded `bib.xml`
//! sample — including `price`, which the paper's DBLP adaptation
//! replaced with `year`. These exercise the pipeline on the attribute
//! year (`<book year="1994">`), nested author name parts (`last`,
//! `first`) and decimal values.

use nalix_repro::nalix::{Nalix, Outcome};
use nalix_repro::xmldb::datasets::bib::bib;

fn ask(q: &str) -> Vec<String> {
    let doc = bib();
    let nalix = Nalix::new(doc.clone());
    match nalix.query(q) {
        Outcome::Translated(t) => {
            let seq = nalix.execute(&t).expect(q);
            nalix.flatten_values(&seq)
        }
        Outcome::Rejected(r) => panic!(
            "{q}\n{}",
            r.errors
                .iter()
                .map(|e| e.message())
                .collect::<Vec<_>>()
                .join("\n")
        ),
    }
}

#[test]
fn xmp_q1_year_attribute_comparison() {
    // "List books published by Addison-Wesley after 1991" — year is an
    // *attribute* in bib.xml; the pipeline must treat it uniformly.
    let out = ask("Return the title of every book published by Addison-Wesley after 1991.");
    let mut titles = out;
    titles.sort();
    titles.dedup();
    assert_eq!(
        titles,
        vec![
            "Advanced Programming in the Unix environment",
            "TCP/IP Illustrated"
        ]
    );
}

#[test]
fn xmp_q5_style_price_comparison() {
    let out = ask("Return the title of every book, where the price of the book is less than 50.");
    assert_eq!(out, vec!["Data on the Web"]);
}

#[test]
fn xmp_q10_min_price() {
    let out = ask("Return the lowest price for each book.");
    assert_eq!(out.len(), 4);
    assert!(out.contains(&"39.95".to_owned()));
    assert!(out.contains(&"129.95".to_owned()));
}

#[test]
fn global_cheapest_book() {
    let out = ask("Return the title of the book with the lowest price.");
    assert_eq!(out, vec!["Data on the Web"]);
}

#[test]
fn author_last_name_lookup() {
    // Nested author structure: author/last, author/first.
    let out = ask(
        "Return the title of every book, where the last of the author of the book is \"Suciu\".",
    );
    assert_eq!(out, vec!["Data on the Web"]);
}

#[test]
fn editor_affiliation() {
    let out = ask("Return the affiliation of the editor of every book.");
    assert_eq!(out, vec!["CITI"]);
}

#[test]
fn count_authors_per_book() {
    let out = ask("Return the number of authors of each book.");
    // books in document order: 1, 1, 3, 0 authors
    assert_eq!(out, vec!["1", "1", "3", "0"]);
}

#[test]
fn price_disjunction() {
    let out = ask(
        "Return the title of each book, where the price of the book is \"39.95\" or \"129.95\".",
    );
    let mut titles = out;
    titles.sort();
    assert_eq!(
        titles,
        vec![
            "Data on the Web",
            "The Economics of Technology and Content for Digital TV"
        ]
    );
}

#[test]
fn sorting_by_price() {
    let doc = bib();
    let nalix = Nalix::new(doc.clone());
    let out = nalix
        .ask("Return the price of every book, sorted by price.")
        .unwrap();
    assert_eq!(out, vec!["39.95", "65.95", "65.95", "129.95"]);
}

#[test]
fn publisher_thesaurus_company() {
    // "company" resolves to publisher through the WordNet-substitute.
    let out = ask("Return the company of each book.");
    assert_eq!(out.len(), 4);
    assert!(out.contains(&"Addison-Wesley".to_owned()));
}
