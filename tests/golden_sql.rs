//! Golden-file tests for the SQL backend: the SQL that the second
//! translation backend compiles for the canonical phrasing of each of
//! the nine XMP user-study tasks, pretty-printed and snapshotted as
//! `tests/golden/<label>.sql` (next to the `.xq` snapshots the XQuery
//! backend pins).
//!
//! A lowering change now shows up as a readable diff against the
//! checked-in query text instead of as a silent behaviour shift.
//! Regenerate deliberately with:
//!
//! ```console
//! $ UPDATE_GOLDEN=1 cargo test --test golden_sql
//! ```

use nalix_repro::nalix::backend::sql;
use nalix_repro::nalix::{BackendKind, Nalix, Outcome};
use nalix_repro::userstudy::phrasings::{nl_pool, PoolKind};
use nalix_repro::userstudy::tasks::ALL_TASKS;
use nalix_repro::xmldb::datasets::dblp::{generate, DblpConfig};
use nalix_repro::xquery::EvalBudget;
use std::path::PathBuf;

fn golden_path(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{label}.sql"))
}

/// Same corpus as `golden_xquery.rs`: the catalog sees the paper-scale
/// labels at a fraction of the build time.
fn corpus() -> nalix_repro::xmldb::Document {
    generate(&DblpConfig {
        books: 40,
        articles: 80,
        seed: 7,
    })
}

#[test]
fn xmp_sql_lowerings_match_golden_files() {
    let doc = corpus();
    let nalix = Nalix::new(doc.clone());
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let budget = EvalBudget::default();
    let mut failures = Vec::new();

    for task in ALL_TASKS {
        let label = task.label();
        let question = nl_pool(task)
            .into_iter()
            .find(|p| p.kind == PoolKind::Good)
            .expect("every task has an accepted phrasing")
            .text;
        let translated = match nalix.query(question) {
            Outcome::Translated(t) => t,
            Outcome::Rejected(r) => panic!(
                "{label}: canonical phrasing rejected: {question}\n{:?}",
                r.errors
            ),
        };
        let query = sql::lower(&translated.translation)
            .unwrap_or_else(|e| panic!("{label}: SQL lowering failed: {}", e.message));
        // The snapshot leads with the question so diffs are
        // self-describing (`--` is the SQL comment prefix).
        let got = format!(
            "-- {label}: {question}\n{}\n",
            nalix_repro::sqlq::pretty(&query)
        );

        // Whatever we snapshot must actually run, and must agree with
        // the XQuery backend on the answer set.
        let via_sql = nalix
            .answer_set(BackendKind::Sql, question, &budget)
            .unwrap_or_else(|e| panic!("{label}: golden SQL fails to run: {e}"));
        let via_xq = nalix
            .answer_set(BackendKind::Xquery, question, &budget)
            .unwrap_or_else(|e| panic!("{label}: XQuery baseline fails: {e}"));
        assert!(
            via_sql.equivalent(&via_xq),
            "{label}: backends disagree\n  sql: {:?}\n  xq:  {:?}",
            via_sql.values,
            via_xq.values
        );

        let path = golden_path(label);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{label}: missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
                path.display()
            )
        });
        if got != want {
            failures.push(format!(
                "{label}: SQL lowering drifted from {}\n--- golden\n{want}\n--- current\n{got}",
                path.display()
            ));
        }
    }

    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}
