//! Integration tests: the full pipeline (nlparser → nalix → xquery →
//! xmldb) across crates, exercising the public API exactly as the
//! examples do.

use nalix_repro::nalix::{Nalix, Outcome};
use nalix_repro::xmldb::datasets::dblp::{generate, DblpConfig};
use nalix_repro::xmldb::datasets::movies::{movies, movies_and_books};
use nalix_repro::xmldb::Document;

#[test]
fn movies_quickstart_flow() {
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    let out = nalix
        .ask("Find all the movies directed by Ron Howard.")
        .unwrap();
    assert_eq!(out.len(), 2);
}

#[test]
fn reformulation_loop_as_in_the_paper() {
    // Query 1 → rejection with "the same as" → Query 2 → answer.
    let doc = movies();
    let nalix = Nalix::new(doc.clone());

    let rejected = nalix
        .ask("Return every director who has directed as many movies as has Ron Howard.")
        .unwrap_err();
    let suggestion = rejected
        .errors
        .iter()
        .map(|e| e.message())
        .find(|m| m.contains("the same as"))
        .expect("the paper's suggestion");
    assert!(suggestion.contains("\"as\""));

    let mut answers = nalix
        .ask(
            "Return every director, where the number of movies directed by the \
             director is the same as the number of movies directed by Ron Howard.",
        )
        .unwrap();
    answers.sort();
    answers.dedup();
    assert_eq!(answers, vec!["Ron Howard", "Steven Soderbergh"]);
}

#[test]
fn query3_needs_the_books_branch() {
    // Without books in the database, the title join finds nothing…
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    let q = "Return the directors of movies, where the title of each movie is \
             the same as the title of a book.";
    // "book" does not exist in the movies-only database → term expansion
    // error.
    assert!(nalix.ask(q).is_err());

    // …with the books branch, Steven Soderbergh ("Traffic").
    let doc = movies_and_books();
    let nalix = Nalix::new(doc.clone());
    let mut answers = nalix.ask(q).unwrap();
    answers.sort();
    answers.dedup();
    assert_eq!(answers, vec!["Steven Soderbergh"]);
}

#[test]
fn dblp_selection_with_implicit_name_tokens() {
    let doc = generate(&DblpConfig::small());
    let nalix = Nalix::new(doc.clone());
    let answers = nalix
        .ask("Return the title of every book published by Addison-Wesley after 1991.")
        .unwrap();
    assert!(answers.contains(&"TCP/IP Illustrated".to_owned()));
    assert!(!answers.contains(&"Smalltalk-80: The Language".to_owned()));
}

#[test]
fn aggregation_nesting_grouping() {
    let doc = Document::parse_str(
        "<bib>\
         <book><title>A</title><price>10</price></book>\
         <book><title>B</title><price>30</price></book>\
         <book><title>C</title><price>20</price></book>\
         </bib>",
    )
    .unwrap();
    let nalix = Nalix::new(doc.clone());
    // global minimum — flatten the returned book subtree into its
    // element values
    let out = match nalix.query("Return the book with the lowest price.") {
        Outcome::Translated(t) => nalix.flatten_values(&nalix.execute(&t).unwrap()),
        Outcome::Rejected(r) => panic!("{:?}", r.errors),
    };
    assert_eq!(out, vec!["A", "10"]);
    // per-book minimum (trivially each book's own price)
    let out = nalix.ask("Return the lowest price for each book.").unwrap();
    assert_eq!(out, vec!["10", "30", "20"]);
}

#[test]
fn sorting_is_applied() {
    let doc = generate(&DblpConfig::small());
    let nalix = Nalix::new(doc.clone());
    let out = nalix
        .ask("Return the title of every book, sorted by title.")
        .unwrap();
    let mut sorted = out.clone();
    sorted.sort_by_key(|a| a.to_lowercase());
    assert_eq!(out.len(), sorted.len());
    // case-insensitive compare: engine sorts by string value
    let lower: Vec<String> = out.iter().map(|s| s.to_lowercase()).collect();
    let mut lower_sorted = lower.clone();
    lower_sorted.sort();
    assert_eq!(lower, lower_sorted);
}

#[test]
fn warnings_surface_but_do_not_block() {
    let doc = generate(&DblpConfig::small());
    let nalix = Nalix::new(doc.clone());
    match nalix.query("Return all books and their titles.") {
        Outcome::Translated(t) => assert!(
            t.warnings.iter().any(|w| w.message().contains("pronoun")),
            "{:?}",
            t.warnings
        ),
        Outcome::Rejected(r) => panic!("{:?}", r.errors),
    }
}

#[test]
fn thesaurus_bridges_vocabulary() {
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    // "film" is not an element name; WordNet-style expansion maps it to
    // movie.
    let out = nalix
        .ask("Return the title of each film, where the director of the film is \"Peter Jackson\".")
        .unwrap();
    assert_eq!(out, vec!["The Lord of the Rings"]);
}

#[test]
fn no_such_value_feedback() {
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    let err = nalix
        .ask("Find all the movies directed by Stanley Kubrick.")
        .unwrap_err();
    assert!(err
        .errors
        .iter()
        .any(|e| e.message().contains("Stanley Kubrick")));
}

#[test]
fn schema_free_query_survives_schema_inversion() {
    // The same English question answered over two opposite schemas —
    // the core promise of Schema-Free XQuery (paper Sec. 2).
    let q = "Return the title of the movie, where the director of the movie is \"Kira\".";

    let normal = Document::parse_str(
        "<movies><movie><title>Alpha</title><director>Kira</director></movie>\
         <movie><title>Beta</title><director>Lee</director></movie></movies>",
    )
    .unwrap();
    let inverted = Document::parse_str(
        "<movies><director>Kira<movie><title>Alpha</title></movie></director>\
         <director>Lee<movie><title>Beta</title></movie></director></movies>",
    )
    .unwrap();

    for doc in [normal, inverted] {
        let nalix = Nalix::new(doc.clone());
        let out = nalix.ask(q).unwrap();
        assert_eq!(out, vec!["Alpha"], "schema variant failed");
    }
}

#[test]
fn extension_value_disjunction() {
    // Paper Sec. 7 lists disjunction as future work; supported here.
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    let out = nalix
        .ask("Find all the movies directed by \"Peter Jackson\" or \"Steven Soderbergh\".")
        .unwrap();
    assert_eq!(out.len(), 3);
}

#[test]
fn extension_name_disjunction() {
    let doc = generate(&DblpConfig::small());
    let nalix = Nalix::new(doc.clone());
    let out = nalix
        .ask("Return the title of every book or article.")
        .unwrap();
    assert_eq!(out.len(), doc.nodes_labeled("title").len());
}

#[test]
fn extension_multi_sentence_query() {
    // Paper Sec. 7 lists multi-sentence queries as future work.
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    let out = nalix
        .ask("Return the director of the movie. The title of the movie is \"Traffic\".")
        .unwrap();
    assert_eq!(out, vec!["Steven Soderbergh"]);
}

#[test]
fn execute_after_translate_is_idempotent() {
    let doc = movies();
    let nalix = Nalix::new(doc.clone());
    match nalix.query("Return the title of each movie.") {
        Outcome::Translated(t) => {
            let a = nalix.execute(&t).unwrap();
            let b = nalix.execute(&t).unwrap();
            assert_eq!(a.len(), b.len());
            assert_eq!(a.len(), 5);
        }
        Outcome::Rejected(r) => panic!("{:?}", r.errors),
    }
}
