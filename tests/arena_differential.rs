//! Differential tests for the columnar node arena: the linked-node
//! semantics (parent / first-child / next-sibling chains, walked one
//! link at a time) are the *oracle*, and every derived columnar
//! structure — preorder/postorder/depth columns, the document-order
//! table behind `descendants`, per-label postings, subtree extents,
//! string-heap-backed values — must agree with it bit for bit on
//! proptest-generated random documents.
//!
//! The linked view is trivially correct by construction (`add_element`
//! writes exactly those links); everything the `finalize` pass derives
//! from it is re-checked here against a fresh link walk.

use std::collections::BTreeSet;

use nalix_repro::xmldb::{Document, NodeId, NodeKind, SubtreeProbeCursor};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random document generation: elements, attributes, text and *mixed*
// content (direct text next to element children), since atomization
// treats those shapes differently.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct TreeSpec {
    label: usize,
    attr: Option<u8>,
    text: Option<u8>,
    children: Vec<TreeSpec>,
}

const LABELS: [&str; 6] = ["lib", "shelf", "book", "title", "author", "note"];

fn tree_strategy() -> impl Strategy<Value = TreeSpec> {
    let leaf = (
        0..LABELS.len(),
        proptest::option::of(any::<u8>()),
        proptest::option::of(any::<u8>()),
    )
        .prop_map(|(label, attr, text)| TreeSpec {
            label,
            attr,
            text,
            children: vec![],
        });
    leaf.prop_recursive(4, 64, 5, |inner| {
        (
            0..LABELS.len(),
            proptest::option::of(any::<u8>()),
            proptest::option::of(any::<u8>()),
            proptest::collection::vec(inner, 0..5),
        )
            .prop_map(|(label, attr, text, children)| TreeSpec {
                label,
                attr,
                text,
                children,
            })
    })
}

fn build(spec: &TreeSpec) -> Document {
    fn add(doc: &mut Document, parent: NodeId, spec: &TreeSpec) {
        let el = doc.add_element(parent, LABELS[spec.label]);
        if let Some(a) = spec.attr {
            doc.add_attribute(el, "id", &format!("a{a}"));
        }
        // Text *before* the children: produces mixed content whenever
        // the node also has element children.
        if let Some(t) = spec.text {
            doc.add_text(el, &format!("v{t}"));
        }
        for c in &spec.children {
            add(doc, el, c);
        }
    }
    let mut doc = Document::new("root");
    let root = doc.root();
    add(&mut doc, root, spec);
    doc.finalize();
    doc
}

// ---------------------------------------------------------------------
// The linked-node oracle
// ---------------------------------------------------------------------

/// Every node reachable from `root` through first-child/next-sibling
/// links, in document order, with the depth the link walk observed.
/// Pure link chasing — no derived column is consulted.
fn oracle_preorder(doc: &Document, root: NodeId) -> Vec<(NodeId, u32)> {
    let mut out = Vec::new();
    let mut stack = vec![(root, 0u32)];
    while let Some((n, d)) = stack.pop() {
        out.push((n, d));
        // Children pushed in reverse so the stack pops them in order.
        let mut kids = Vec::new();
        let mut c = doc.first_child(n);
        while let Some(k) = c {
            kids.push(k);
            c = doc.next_sibling(k);
        }
        for &k in kids.iter().rev() {
            stack.push((k, d + 1));
        }
    }
    out
}

/// Whole-subtree text concatenation via links only.
fn oracle_subtree_text(doc: &Document, id: NodeId) -> String {
    oracle_preorder(doc, id)
        .iter()
        .filter(|&&(n, _)| doc.kind(n) == NodeKind::Text)
        .map(|&(n, _)| doc.value(n).unwrap_or_default())
        .collect()
}

/// Atomization oracle: text/attribute nodes carry their own value; an
/// element with non-whitespace direct text atomizes to that text
/// trimmed; any other element to its whole-subtree text.
fn oracle_atom(doc: &Document, id: NodeId) -> String {
    match doc.kind(id) {
        NodeKind::Text | NodeKind::Attribute => doc.value(id).unwrap_or_default().to_owned(),
        NodeKind::Element => {
            let mut direct = String::new();
            let mut c = doc.first_child(id);
            while let Some(k) = c {
                if doc.kind(k) == NodeKind::Text {
                    direct.push_str(doc.value(k).unwrap_or_default());
                }
                c = doc.next_sibling(k);
            }
            if !direct.trim().is_empty() {
                direct.trim().to_owned()
            } else {
                oracle_subtree_text(doc, id)
            }
        }
    }
}

fn all_nodes(doc: &Document) -> Vec<NodeId> {
    (0..doc.len()).map(NodeId::from_index).collect()
}

proptest! {
    // -----------------------------------------------------------------
    // Document order: the pre column and the order table behind
    // `descendants` both reproduce the link walk exactly.
    // -----------------------------------------------------------------

    #[test]
    fn preorder_column_matches_link_walk(spec in tree_strategy()) {
        let doc = build(&spec);
        let oracle = oracle_preorder(&doc, doc.root());
        prop_assert_eq!(oracle.len(), doc.len(), "link walk reaches every arena node");
        for (rank, &(n, depth)) in oracle.iter().enumerate() {
            prop_assert_eq!(doc.pre(n) as usize, rank, "pre[{n}]");
            prop_assert_eq!(doc.depth(n), depth, "depth[{n}]");
        }
        // descendants(root) is the same sequence, minus the root itself
        // (the axis is exclusive of its origin).
        let via_table: Vec<NodeId> = doc.descendants(doc.root()).collect();
        let via_links: Vec<NodeId> = oracle.iter().skip(1).map(|&(n, _)| n).collect();
        prop_assert_eq!(via_table, via_links);
    }

    #[test]
    fn postorder_column_encodes_subtree_containment(spec in tree_strategy()) {
        let doc = build(&spec);
        // Oracle containment: walk the parent chain.
        let contains = |anc: NodeId, desc: NodeId| {
            let mut cur = Some(desc);
            while let Some(n) = cur {
                if n == anc { return true; }
                cur = doc.parent(n);
            }
            false
        };
        let nodes = all_nodes(&doc);
        for &a in nodes.iter().step_by(3) {
            for &d in nodes.iter().step_by(5) {
                let by_numbers =
                    doc.pre(a) <= doc.pre(d) && doc.post(a) >= doc.post(d);
                prop_assert_eq!(by_numbers, contains(a, d), "pre/post vs links for {a},{d}");
                prop_assert_eq!(doc.is_ancestor_or_self(a, d), contains(a, d));
            }
        }
    }

    // -----------------------------------------------------------------
    // Axes: children / ancestors / descendants against raw link chains.
    // -----------------------------------------------------------------

    #[test]
    fn axis_iterators_match_link_chains(spec in tree_strategy()) {
        let doc = build(&spec);
        for n in all_nodes(&doc) {
            let mut chain = Vec::new();
            let mut c = doc.first_child(n);
            while let Some(k) = c {
                chain.push(k);
                c = doc.next_sibling(k);
            }
            let via_axis: Vec<NodeId> = doc.children(n).collect();
            prop_assert_eq!(via_axis, chain, "children({n})");

            let mut parents = Vec::new();
            let mut p = doc.parent(n);
            while let Some(a) = p {
                parents.push(a);
                p = doc.parent(a);
            }
            let via_axis: Vec<NodeId> = doc.ancestors(n).collect();
            prop_assert_eq!(via_axis, parents, "ancestors({n})");

            let via_links: Vec<NodeId> = oracle_preorder(&doc, n)
                .iter()
                .skip(1)
                .map(|&(d, _)| d)
                .collect();
            let via_extent: Vec<NodeId> = doc.descendants(n).collect();
            prop_assert_eq!(via_extent, via_links, "descendants({n})");
        }
    }

    // -----------------------------------------------------------------
    // Subtree extents and per-label postings: `labeled_in_subtree` (and
    // its cursor-hinted variant) equals a filtered link walk.
    // -----------------------------------------------------------------

    #[test]
    fn label_postings_match_filtered_link_walk(spec in tree_strategy()) {
        let doc = build(&spec);
        let mut cursors: Vec<SubtreeProbeCursor> =
            LABELS.iter().map(|_| SubtreeProbeCursor::default()).collect();
        for n in all_nodes(&doc) {
            for (li, label) in LABELS.iter().enumerate() {
                let Some(sym) = doc.lookup(label) else { continue };
                let expect: Vec<NodeId> = oracle_preorder(&doc, n)
                    .iter()
                    .map(|&(d, _)| d)
                    .filter(|&d| doc.kind(d) == NodeKind::Element && doc.label(d) == *label)
                    .collect();
                let plain: Vec<NodeId> = doc.labeled_in_subtree(sym, n).to_vec();
                prop_assert_eq!(&plain, &expect, "labeled_in_subtree({label}, {n})");
                // The cursor variant must agree for *any* hint state; here
                // the cursors carry whatever the previous probes left.
                let hinted: Vec<NodeId> =
                    doc.labeled_in_subtree_from(sym, n, &mut cursors[li]).to_vec();
                prop_assert_eq!(&hinted, &expect, "labeled_in_subtree_from({label}, {n})");
                prop_assert_eq!(
                    doc.count_label_in_subtree(sym, n),
                    expect.len(),
                    "count_label_in_subtree({label}, {n})"
                );
            }
        }
        // The global per-label postings are the document-order filter.
        for label in LABELS {
            let expect: Vec<NodeId> = oracle_preorder(&doc, doc.root())
                .iter()
                .map(|&(d, _)| d)
                .filter(|&d| doc.kind(d) == NodeKind::Element && doc.label(d) == label)
                .collect();
            prop_assert_eq!(doc.nodes_labeled(label).to_vec(), expect, "nodes_labeled({label})");
        }
    }

    // -----------------------------------------------------------------
    // Values: string_value / atom_value against link-walk oracles.
    // -----------------------------------------------------------------

    #[test]
    fn values_match_link_walk_oracles(spec in tree_strategy()) {
        let doc = build(&spec);
        for n in all_nodes(&doc) {
            match doc.kind(n) {
                NodeKind::Text | NodeKind::Attribute => {
                    prop_assert_eq!(
                        doc.string_value(n),
                        doc.value(n).unwrap_or_default().to_owned()
                    );
                }
                NodeKind::Element => {
                    prop_assert_eq!(
                        doc.string_value(n),
                        oracle_subtree_text(&doc, n),
                        "string_value({n})"
                    );
                }
            }
            prop_assert_eq!(doc.atom_value(n).into_owned(), oracle_atom(&doc, n), "atom_value({n})");
        }
    }

    // -----------------------------------------------------------------
    // LCA: the indexed (Euler-tour RMQ) answer equals the link walk.
    // -----------------------------------------------------------------

    #[test]
    fn indexed_lca_matches_link_walk(spec in tree_strategy()) {
        let doc = build(&spec);
        let nodes = all_nodes(&doc);
        for &a in nodes.iter().step_by(2) {
            for &b in nodes.iter().step_by(3) {
                prop_assert_eq!(doc.lca(a, b), doc.lca_walk(a, b), "lca({a},{b})");
            }
        }
    }

    // -----------------------------------------------------------------
    // Serialization round-trip: the rebuilt document derives identical
    // columns for an isomorphic tree (labels + kinds + order).
    // -----------------------------------------------------------------

    #[test]
    fn reparse_preserves_document_order_signature(spec in tree_strategy()) {
        let doc = build(&spec);
        let xml = doc.to_xml(doc.root());
        let doc2 = Document::parse_str(&xml).expect("round-trip parse");
        let sig = |d: &Document| -> Vec<(String, u8, u32)> {
            let mut rows: Vec<(String, u8, u32)> = (0..d.len())
                .map(NodeId::from_index)
                .map(|n| (d.label(n).to_owned(), d.kind(n) as u8, d.depth(n)))
                .collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(sig(&doc), sig(&doc2));
        // Element labels in document order survive exactly.
        let ordered = |d: &Document| -> Vec<String> {
            d.descendants(d.root())
                .filter(|&n| d.kind(n) == NodeKind::Element)
                .map(|n| d.label(n).to_owned())
                .collect()
        };
        prop_assert_eq!(ordered(&doc), ordered(&doc2));
    }
}

/// The subtree sets implied by pre/post extents partition correctly:
/// each node's descendant set is exactly the contiguous pre-range —
/// checked on a fixed document with attributes and mixed content, where
/// the extent boundaries are easy to get wrong.
#[test]
fn extents_are_contiguous_pre_ranges() {
    let doc = Document::parse_str(
        "<bib><book id=\"b1\"><title>T1</title><author>A</author></book>\
         <year>2000 <note>mixed</note></year><book><title>T2</title></book></bib>",
    )
    .expect("parse");
    for n in all_nodes(&doc) {
        // The axis excludes `n` itself, so the set starts at pre(n)+1.
        let set: BTreeSet<u32> = doc.descendants(n).map(|d| doc.pre(d)).collect();
        let lo = doc.pre(n) + 1;
        let hi = *set.iter().next_back().unwrap_or(&doc.pre(n));
        let expect: BTreeSet<u32> = (lo..=hi).collect();
        assert_eq!(set, expect, "descendant pre-set of {n} is contiguous");
    }
}
