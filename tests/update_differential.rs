//! Differential tests for incremental index maintenance: a patched
//! pipeline (`Nalix::successor` over an update's delta) must be
//! indistinguishable from a pipeline rebuilt from scratch over the
//! *same* committed document.
//!
//! The from-scratch rebuild is the oracle. For proptest-generated
//! random edit scripts against the `bib` and `movies` datasets we
//! assert, on the successor document both pipelines share:
//!
//! * the incrementally patched catalog equals `Catalog::build` output
//!   bit for bit (labels, value index, numeric ranges — `Catalog`
//!   derives `PartialEq` for exactly this comparison);
//! * a battery of natural-language questions — chosen to exercise the
//!   carried value-index shards, numeric ranges, and label postings —
//!   answers identically through both pipelines.
//!
//! Scripts large enough to trip the rebuild threshold exercise the
//! `CommitStrategy::Rebuild` path of `Nalix::successor`; small scripts
//! exercise `Patch`. Both must agree with the oracle.

use nalix_repro::nalix::Nalix;
use nalix_repro::xmldb::datasets::{bib::bib, movies::movies};
use nalix_repro::xmldb::{Document, Edit, NewNode, NodeId, NodeKind};
use proptest::prelude::*;
use std::sync::Arc;

/// One abstract edit: resolved against the live nodes of the snapshot
/// being edited, so any `(op, sel, payload)` triple is meaningful for
/// any document. Resolution can still produce an invalid edit (kind
/// mismatch, duplicate attribute, root deletion); those are *applied
/// and rejected*, which is part of the surface under test — a rejected
/// edit must leave the overlay untouched.
#[derive(Debug, Clone)]
struct Op {
    kind: u8,
    sel: u32,
    payload: u8,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..5, any::<u32>(), any::<u8>()).prop_map(|(kind, sel, payload)| Op { kind, sel, payload })
}

/// Picks the live node an op addresses: pre-order rank `sel`, modulo
/// the snapshot's live-node count.
fn pick(doc: &Document, sel: u32) -> NodeId {
    let live = doc.stats().total_nodes() as u32;
    doc.node_at_pre(sel % live).expect("rank is in range")
}

/// Nearest element at-or-above `id` (insert ops need element parents).
fn element_at_or_above(doc: &Document, mut id: NodeId) -> NodeId {
    while doc.kind(id) != NodeKind::Element {
        id = doc.parent(id).expect("non-element nodes have parents");
    }
    id
}

fn new_node(payload: u8) -> NewNode {
    match payload % 4 {
        0 => NewNode::Leaf {
            label: "note".to_string(),
            text: format!("n{payload}"),
        },
        1 => NewNode::Element {
            label: "extra".to_string(),
        },
        2 => NewNode::Text {
            text: format!("t{payload}"),
        },
        _ => NewNode::Attribute {
            name: format!("a{}", payload % 8),
            value: format!("v{payload}"),
        },
    }
}

fn resolve(doc: &Document, op: &Op) -> Edit {
    let target = pick(doc, op.sel);
    match op.kind {
        0 => Edit::InsertChild {
            parent: element_at_or_above(doc, target),
            node: new_node(op.payload),
        },
        1 => Edit::InsertSibling {
            after: target,
            node: new_node(op.payload),
        },
        2 => Edit::DeleteSubtree { target },
        3 => Edit::ReplaceValue {
            target,
            value: format!("r{}", op.payload),
        },
        _ => Edit::RenameLabel {
            target,
            label: format!("tag{}", op.payload % 8),
        },
    }
}

/// Applies the script to `base`, commits, and asserts the patched
/// pipeline is indistinguishable from a from-scratch rebuild over the
/// committed document. Returns how many edits were accepted.
fn assert_differential(base: Document, ops: &[Op], questions: &[&str]) -> usize {
    let base = Arc::new(base);
    let prior = Nalix::new(Arc::clone(&base));
    let mut up = base.begin_update().expect("dataset is finalized");
    let mut accepted = 0;
    for op in ops {
        // Targets resolve against the base snapshot (node ids are
        // stable into the overlay), so a later op can address a node
        // an earlier op already detached. Rejected edits (kind
        // mismatch, duplicate attribute, root deletion, detached
        // target) must leave the overlay unchanged.
        if up.apply(&resolve(&base, op)).is_ok() {
            accepted += 1;
        }
    }
    let (next, stats) = up.commit();
    assert_eq!(stats.edits, accepted);
    let next = Arc::new(next);

    let patched = Nalix::successor(&prior, Arc::clone(&next), &stats);
    let oracle = Nalix::new(Arc::clone(&next));

    assert_eq!(
        patched.catalog(),
        oracle.catalog(),
        "patched catalog diverged from a from-scratch build \
         (strategy {:?}, {} edits)",
        stats.strategy,
        stats.edits
    );
    for q in questions {
        let a = patched.ask(q).ok();
        let b = oracle.ask(q).ok();
        assert_eq!(a, b, "answers diverged for {q:?} ({:?})", stats.strategy);
    }
    accepted
}

/// Questions that route through every index a patch carries or
/// repairs: value-index equality probes, numeric range classification,
/// and plain label postings.
const BIB_QUESTIONS: &[&str] = &[
    "Find all the titles of books.",
    "Return the title of every book published by Addison-Wesley after 1991.",
    "Return the lowest price for each book.",
];
const MOVIE_QUESTIONS: &[&str] = &[
    "Find all the movies directed by Ron Howard.",
    "Return every director who has directed as many movies as has Ron Howard.",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32),
    ))]

    /// Small scripts: the patch path (spot-checked below; tiny bib
    /// documents can still tip into rebuild when deletes dominate).
    #[test]
    fn bib_patched_pipeline_matches_rebuild(ops in proptest::collection::vec(op_strategy(), 1..12)) {
        assert_differential(bib(), &ops, BIB_QUESTIONS);
    }

    #[test]
    fn movies_patched_pipeline_matches_rebuild(ops in proptest::collection::vec(op_strategy(), 1..12)) {
        assert_differential(movies(), &ops, MOVIE_QUESTIONS);
    }

    /// Long scripts tip `PendingUpdate::strategy` into `Rebuild` on
    /// these small datasets, exercising the successor's rebuild arm.
    #[test]
    fn long_scripts_agree_through_either_strategy(ops in proptest::collection::vec(op_strategy(), 24..64)) {
        assert_differential(bib(), &ops, BIB_QUESTIONS);
    }
}

/// Deterministic guard that the *patch* arm (not just rebuild) is what
/// the proptest exercises for small scripts: a handful of edits on bib
/// must commit as `Patch` and still match the oracle.
#[test]
fn small_edit_commits_as_patch_and_matches() {
    let base = Arc::new(bib());
    let prior = Nalix::new(Arc::clone(&base));
    let mut up = base.begin_update().unwrap();
    let book = base.nodes_labeled("book")[0];
    up.apply(&Edit::InsertChild {
        parent: book,
        node: NewNode::Leaf {
            label: "note".to_string(),
            text: "checked".to_string(),
        },
    })
    .unwrap();
    let (next, stats) = up.commit();
    assert_eq!(stats.strategy, nalix_repro::xmldb::CommitStrategy::Patch);
    let next = Arc::new(next);
    let patched = Nalix::successor(&prior, Arc::clone(&next), &stats);
    let oracle = Nalix::new(next);
    assert_eq!(patched.catalog(), oracle.catalog());
    for q in BIB_QUESTIONS {
        assert_eq!(patched.ask(q).ok(), oracle.ask(q).ok());
    }
}
