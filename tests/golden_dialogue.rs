//! Golden transcripts for conversational sessions (docs/SESSIONS.md):
//! each dialogue file captures every turn — the question, how an
//! anaphoric or elliptical follow-up was resolved, the translated
//! XQuery, the warnings, and the answers — so a change to resolution
//! or wording shows up as a readable diff. A separate snapshot pins
//! the typed errors for missing and expired conversation context.
//! Regenerate with:
//!
//! ```console
//! $ UPDATE_GOLDEN=1 cargo test --test golden_dialogue
//! ```

use nalix_repro::nalix::{Nalix, QueryError, Session, SessionCheckout, SessionStore};
use nalix_repro::xmldb::datasets::bib::bib;
use nalix_repro::xquery::EvalBudget;
use std::path::PathBuf;
use std::time::Duration;

fn golden_path(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/dialogue")
        .join(format!("{label}.txt"))
}

/// Compares `got` against the snapshot (or rewrites it under
/// `UPDATE_GOLDEN=1`), collecting a readable diff on drift.
fn check(label: &str, got: &str, failures: &mut Vec<String>) {
    let path = golden_path(label);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{label}: missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    if got != want {
        failures.push(format!(
            "{label}: transcript drifted from {}\n--- golden\n{want}\n--- current\n{got}",
            path.display()
        ));
    }
}

/// Each dialogue: snapshot label, then the turns in order. Turn 1 is
/// self-contained; later turns are follow-ups resolved against it.
const DIALOGUES: &[(&str, &[&str])] = &[
    (
        "stevens_refinement_then_ellipsis",
        &[
            "List all the books written by Stevens.",
            "Of those, which were published after 1993?",
            "What about by Suciu?",
        ],
    ),
    (
        "year_then_author_refinement",
        &[
            "Find all the books published after 1991.",
            "Which of them were written by Buneman?",
        ],
    ),
];

#[test]
fn dialogue_transcripts_match_golden_files() {
    let nalix = Nalix::new(bib());
    let budget = EvalBudget::default();
    let mut failures = Vec::new();

    for &(label, turns) in DIALOGUES {
        let mut got = String::new();
        let mut prior = None;
        for (i, question) in turns.iter().enumerate() {
            let turn = nalix
                .answer_turn(question, prior.as_ref(), &budget)
                .unwrap_or_else(|e| panic!("{label} turn {}: {e}", i + 1));
            got.push_str(&format!("turn {}\n", i + 1));
            got.push_str(&format!("question: {question}\n"));
            match &turn.resolution {
                Some(r) => got.push_str(&format!(
                    "resolved: \"{}\" against {}\n",
                    r.phrase, r.referent
                )),
                None => got.push_str("resolved: (self-contained)\n"),
            }
            got.push_str(&format!("xquery: {}\n", turn.answer.xquery));
            got.push_str("warnings:\n");
            for w in &turn.answer.warnings {
                got.push_str(&format!("- {}\n", w.message()));
            }
            got.push_str(&format!("answers ({}):\n", turn.answer.values.len()));
            for v in &turn.answer.values {
                got.push_str(&format!("- {}\n", v.replace('\n', "\\n")));
            }
            got.push('\n');
            prior = Some(turn.turn);
        }
        check(label, &got, &mut failures);
    }

    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

/// The typed errors a dialogue can end in: a follow-up with no prior
/// turn (missing context) and a follow-up whose session idled past the
/// TTL (expired context). Both must carry a rephrasing suggestion
/// (the Sec. 4 feedback contract extends to the session layer).
#[test]
fn context_error_transcripts_match_golden_files() {
    let nalix = Nalix::new(bib());
    let budget = EvalBudget::default();
    let mut failures = Vec::new();

    let missing = nalix
        .answer_turn("Of those, which were published after 1993?", None, &budget)
        .expect_err("a follow-up with no context must fail");

    // Drive the expiry through the store, exactly as the server does:
    // an idle session past the TTL checks out as Expired, and the
    // server answers the follow-up with this error.
    let store = SessionStore::new(4, Duration::ZERO);
    store.commit("dlg", Session::new("bib", 1));
    std::thread::sleep(Duration::from_millis(2));
    assert!(matches!(store.checkout("dlg"), SessionCheckout::Expired));
    let expired = QueryError::expired_context(
        "session \"dlg\" sat idle past the server's session time-to-live",
    );

    let mut got = String::new();
    for (class, err) in [("missing context", &missing), ("expired context", &expired)] {
        assert!(!err.suggestion().is_empty(), "{class}: empty suggestion");
        got.push_str(&format!("class: {class}\n"));
        got.push_str(&format!("code: {}\n", err.code()));
        got.push_str(&format!("display: {err}\n"));
        got.push_str(&format!("suggestion: {}\n", err.suggestion()));
        got.push('\n');
    }
    check("context_errors", &got, &mut failures);

    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}
