//! Umbrella crate for the NaLIX reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use
//! a single dependency. See `README.md` for the architecture overview and
//! `DESIGN.md` for the system inventory and experiment index.

pub use keyword;
pub use nalix;
pub use nlparser;
pub use relstore;
pub use sqlq;
pub use store;
pub use userstudy;
pub use xmldb;
pub use xquery;
